package faultstudy_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"faultstudy"
)

// TestPublicSurface exercises every capability group of the facade the way a
// downstream user would.
func TestPublicSurface(t *testing.T) {
	// Corpus access.
	corpus := faultstudy.Corpus()
	if len(corpus) != 139 {
		t.Fatalf("corpus has %d faults", len(corpus))
	}
	if len(faultstudy.CorpusByApp(faultstudy.AppApache)) != 50 {
		t.Error("apache corpus wrong size")
	}

	// Classification.
	classifier := faultstudy.NewClassifier(faultstudy.ClassifierOptions{})
	decision := classifier.Classify(&faultstudy.Report{
		ID:          "x",
		App:         faultstudy.AppMySQL,
		Synopsis:    "server dies",
		Description: "race condition between threads; works on a retry",
	})
	if decision.Class != faultstudy.ClassEnvDependentTransient {
		t.Errorf("class = %v", decision.Class)
	}

	// Tables, figures, aggregate.
	for _, app := range []faultstudy.Application{faultstudy.AppApache, faultstudy.AppGnome, faultstudy.AppMySQL} {
		if res := faultstudy.Table(app); !res.Matches() {
			t.Errorf("%s table diverges:\n%s", app, res)
		}
	}
	if agg := faultstudy.Aggregate(); agg.Total != 139 {
		t.Errorf("aggregate total = %d", agg.Total)
	}
	for _, fig := range []*faultstudy.FigureSeries{
		faultstudy.Figure1Apache(), faultstudy.Figure2Gnome(), faultstudy.Figure3MySQL(),
	} {
		if fig.Render() == "" {
			t.Error("empty figure")
		}
	}

	// Single-fault recovery run.
	mgr := faultstudy.NewRecoveryManager(faultstudy.RecoveryPolicy{})
	app, sc, err := faultstudy.BuildScenario("httpd/dns-error", 42)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mgr.Run(app, sc, faultstudy.StrategyProcessPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Survived {
		t.Errorf("dns-error under process pairs: %v", out.Err)
	}
}

// TestPublicMiningRoundTrip mines one simulated source through the facade.
func TestPublicMiningRoundTrip(t *testing.T) {
	site := httptest.NewServer(faultstudy.NewGnomeTrackerSite(faultstudy.SiteConfig{Seed: 4}))
	defer site.Close()
	raw, err := faultstudy.MineGnome(context.Background(), site.URL)
	if err != nil {
		t.Fatal(err)
	}
	res := faultstudy.ClassifyReports(raw, faultstudy.StudyOptions{})
	if res.Unique != 45 {
		t.Errorf("unique = %d, want 45", res.Unique)
	}
}

// TestPublicStudy runs the whole pipeline through the facade.
func TestPublicStudy(t *testing.T) {
	cfg := faultstudy.SiteConfig{Seed: 11}
	apache := httptest.NewServer(faultstudy.NewApacheTrackerSite(cfg))
	defer apache.Close()
	gnome := httptest.NewServer(faultstudy.NewGnomeTrackerSite(cfg))
	defer gnome.Close()
	mysql := httptest.NewServer(faultstudy.NewMySQLArchiveSite(cfg))
	defer mysql.Close()

	res, err := faultstudy.RunStudy(context.Background(), faultstudy.StudySources{
		ApacheBase: apache.URL, GnomeBase: gnome.URL, MySQLBase: mysql.URL,
	}, faultstudy.StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, total := res.Totals(); total != 139 {
		t.Errorf("total = %d", total)
	}
}

// TestPublicRecoveryMatrixAndLee93 runs the recovery experiments through the
// facade.
func TestPublicRecoveryMatrixAndLee93(t *testing.T) {
	m, err := faultstudy.RunRecoveryMatrix(faultstudy.RecoveryPolicy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	generic := m.Rate(faultstudy.StrategyProcessPairs, faultstudy.ClassEnvDependentTransient)
	if generic.Value() < 0.9 {
		t.Errorf("EDT survival %v", generic)
	}
	l := faultstudy.CompareLee93(m)
	if l.OurGenericRate.N != 139 {
		t.Errorf("lee93 N = %d", l.OurGenericRate.N)
	}
}

func TestCorpusJSON(t *testing.T) {
	data, err := faultstudy.CorpusJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []*faultstudy.Fault
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 139 {
		t.Fatalf("decoded %d faults", len(decoded))
	}
	if decoded[0].Class != faultstudy.Corpus()[0].Class {
		t.Error("class did not round-trip")
	}
	if !strings.Contains(string(data), `"environment-dependent-transient"`) {
		t.Error("classes should serialize by name")
	}
}

// TestPublicTelemetry exercises the observability surface the way a
// downstream user would: attach a Telemetry to a soak, export the trace,
// re-read it through the validating parser, and summarize per class.
func TestPublicTelemetry(t *testing.T) {
	tel := faultstudy.NewTelemetry()
	if _, err := faultstudy.RunSoak(faultstudy.SoakConfig{
		Ops: 60, Faults: 2, Seed: 7, Telemetry: tel,
	}); err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	var trace strings.Builder
	if err := tel.WriteTrace(&trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	eps, err := faultstudy.ReadEpisodeTrace(strings.NewReader(trace.String()))
	if err != nil {
		t.Fatalf("ReadEpisodeTrace: %v", err)
	}
	if len(eps) == 0 {
		t.Fatal("soak produced no episodes")
	}
	sums := faultstudy.SummarizeEpisodes(eps)
	if len(sums) == 0 {
		t.Fatal("no per-class summaries")
	}
	if out := faultstudy.RenderEpisodeSummary(sums); !strings.Contains(out, "episodes") {
		t.Errorf("summary table missing header:\n%s", out)
	}
	var prom strings.Builder
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(prom.String(), "faultstudy_episodes_total") {
		t.Error("metrics dump missing the episodes counter")
	}
}
