package chaoshttp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"faultstudy/internal/taxonomy"
)

// okHandler serves a fixed body on every path.
func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	})
}

// get performs one GET through the injector-backed client stack.
func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestTargetedIsPureAndRateShaped(t *testing.T) {
	f := Fault{Name: "edt/503-once", Rate: 0.25}
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/bugdb/pr/%d", i)
		a := targeted(42, f, path)
		if b := targeted(42, f, path); a != b {
			t.Fatalf("targeted(42, %s) not deterministic", path)
		}
		if a {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("rate 0.25 targeted %.3f of %d URLs", frac, n)
	}
	if targeted(42, Fault{Name: "x", Rate: 0}, "/a") {
		t.Error("rate 0 must target nothing")
	}
	if !targeted(42, Fault{Name: "x", Rate: 1}, "/a") {
		t.Error("rate 1 must target everything")
	}
	// Different seeds disagree on at least some URLs.
	diff := 0
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/bugdb/pr/%d", i)
		if targeted(42, f, path) != targeted(43, f, path) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 42 and 43 target identical URL sets")
	}
}

func TestInjectorTransientFiresOnceThenHeals(t *testing.T) {
	clock := NewVirtualClock()
	inj := NewInjector(Config{Seed: 1, Faults: []Fault{
		{Name: "edt/503-once", Class: taxonomy.ClassEnvDependentTransient, Kind: KindStatusOnce,
			Rate: 1, Status: 503, RetryAfter: 2 * time.Second},
	}}, HandlerTransport{Handler: okHandler("fine")}, clock)

	resp, err := get(t, inj, "http://chaos.test/a")
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("first request: %v %v, want injected 503", resp, err)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want 2", ra)
	}
	clock.Advance(time.Second)
	resp, err = get(t, inj, "http://chaos.test/a")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("second request: %v %v, want healed 200", resp, err)
	}
	outs := inj.Outcomes()
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(outs))
	}
	o := outs[0]
	if !o.Recovered || o.Injections != 1 || o.RecoveredAt != time.Second {
		t.Errorf("outcome = %+v, want recovered at 1s after 1 injection", o)
	}
}

func TestInjectorPersistentNeverHeals(t *testing.T) {
	clock := NewVirtualClock()
	inj := NewInjector(Config{Seed: 1, Faults: []Fault{
		{Name: "edn/persistent-500", Class: taxonomy.ClassEnvDependentNonTransient,
			Kind: KindStatusAlways, Rate: 1, Status: 500},
	}}, HandlerTransport{Handler: okHandler("fine")}, clock)
	for i := 0; i < 3; i++ {
		resp, err := get(t, inj, "http://chaos.test/a")
		if err != nil || resp.StatusCode != 500 {
			t.Fatalf("request %d: %v %v, want persistent 500", i, resp, err)
		}
	}
	o := inj.Outcomes()[0]
	if o.Recovered || o.Injections != 3 {
		t.Errorf("outcome = %+v, want 3 injections and no recovery", o)
	}
}

func TestInjectorTransportErrors(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want error
	}{
		{KindConnResetOnce, ErrInjectedReset},
		{KindDNSOnce, ErrInjectedDNS},
	} {
		clock := NewVirtualClock()
		inj := NewInjector(Config{Seed: 1, Faults: []Fault{
			{Name: "f", Class: taxonomy.ClassEnvDependentTransient, Kind: tc.kind, Rate: 1},
		}}, HandlerTransport{Handler: okHandler("fine")}, clock)
		if _, err := get(t, inj, "http://chaos.test/a"); !errors.Is(err, tc.want) {
			t.Errorf("kind %d: err = %v, want %v", tc.kind, err, tc.want)
		}
		if resp, err := get(t, inj, "http://chaos.test/a"); err != nil || resp.StatusCode != 200 {
			t.Errorf("kind %d: did not heal: %v %v", tc.kind, resp, err)
		}
	}
}

func TestInjectorHostExhaust(t *testing.T) {
	clock := NewVirtualClock()
	inj := NewInjector(Config{Seed: 1, Faults: []Fault{
		{Name: "edn/fd-exhausted", Class: taxonomy.ClassEnvDependentNonTransient,
			Kind: KindHostExhaust, TriggerAfter: 2},
	}}, HandlerTransport{Handler: okHandler("fine")}, clock)
	for i := 0; i < 2; i++ {
		if resp, err := get(t, inj, fmt.Sprintf("http://chaos.test/%d", i)); err != nil || resp.StatusCode != 200 {
			t.Fatalf("pre-trigger request %d failed: %v %v", i, resp, err)
		}
	}
	for i := 2; i < 5; i++ {
		if _, err := get(t, inj, fmt.Sprintf("http://chaos.test/%d", i)); !errors.Is(err, ErrInjectedExhaust) {
			t.Errorf("post-trigger request %d: err = %v, want exhaustion", i, err)
		}
	}
}

func TestInjectorLatencyAdvancesClock(t *testing.T) {
	clock := NewVirtualClock()
	inj := NewInjector(Config{Seed: 1, Faults: []Fault{
		{Name: "edt/latency-spike", Class: taxonomy.ClassEnvDependentTransient,
			Kind: KindLatencyOnce, Rate: 1, Latency: 15 * time.Second},
	}}, HandlerTransport{Handler: okHandler("fine")}, clock)
	resp, err := get(t, inj, "http://chaos.test/a")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("latency fault should still serve: %v %v", resp, err)
	}
	if clock.Now() != 15*time.Second {
		t.Errorf("clock advanced %v, want 15s", clock.Now())
	}
}

func TestInjectorTruncation(t *testing.T) {
	clock := NewVirtualClock()
	inj := NewInjector(Config{Seed: 1, Faults: []Fault{
		{Name: "edt/truncated-body", Class: taxonomy.ClassEnvDependentTransient,
			Kind: KindTruncateOnce, Rate: 1},
	}}, HandlerTransport{Handler: okHandler("0123456789")}, clock)
	resp, err := get(t, inj, "http://chaos.test/a")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "01234" || resp.ContentLength != 10 {
		t.Errorf("body %q with Content-Length %d, want half body under full length", body, resp.ContentLength)
	}
}

func TestInjectorDeterministicLog(t *testing.T) {
	run := func() []Injection {
		clock := NewVirtualClock()
		inj := NewInjector(Config{Seed: 99, Faults: CatalogEDT()},
			HandlerTransport{Handler: okHandler("fine")}, clock)
		for i := 0; i < 50; i++ {
			resp, err := get(t, inj, fmt.Sprintf("http://chaos.test/bugdb/pr/%d", i))
			if err == nil {
				resp.Body.Close()
			}
			clock.Advance(time.Millisecond)
		}
		return inj.Injections()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("catalogue injected nothing over 50 URLs")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("two identical runs logged different injections:\n%v\n%v", a, b)
	}
}

func TestHandlerTransportSetsContentLength(t *testing.T) {
	resp, err := get(t, HandlerTransport{Handler: okHandler("hello")}, "http://chaos.test/a")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength != 5 {
		t.Errorf("ContentLength = %d, want 5", resp.ContentLength)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Errorf("body = %q", body)
	}
}

func TestMiddlewareOverRealServer(t *testing.T) {
	mw := NewMiddleware(Config{Seed: 1, Faults: []Fault{
		{Name: "edt/503-once", Class: taxonomy.ClassEnvDependentTransient, Kind: KindStatusOnce,
			Rate: 1, Status: 503, RetryAfter: 1 * time.Second},
	}}, nil, okHandler("fine"))
	srv := httptest.NewServer(mw)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("first response %d %q, want 503 with Retry-After 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(srv.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("second response %d, want healed 200", resp.StatusCode)
	}
	if got := mw.Injections(); len(got) != 1 {
		t.Errorf("middleware logged %d injections, want 1", len(got))
	}
}

func TestMiddlewareConnectionDrop(t *testing.T) {
	mw := NewMiddleware(Config{Seed: 1, Faults: []Fault{
		{Name: "edt/conn-reset", Class: taxonomy.ClassEnvDependentTransient, Kind: KindConnResetOnce, Rate: 1},
	}}, nil, okHandler("fine"))
	srv := httptest.NewServer(mw)
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/a"); err == nil {
		t.Fatal("dropped connection should surface as a client error")
	}
	resp, err := http.Get(srv.URL + "/a")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("second request should heal: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestMiddlewareTruncation(t *testing.T) {
	mw := NewMiddleware(Config{Seed: 1, Faults: []Fault{
		{Name: "edt/truncated-body", Class: taxonomy.ClassEnvDependentTransient, Kind: KindTruncateOnce, Rate: 1},
	}}, nil, okHandler("0123456789"))
	srv := httptest.NewServer(mw)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The abort may surface as a read error or a short body; either way the
	// full declared length must not arrive.
	if readErr == nil && int64(len(body)) == resp.ContentLength {
		t.Errorf("truncation delivered the full %d-byte body", len(body))
	}
	if !strings.HasPrefix("0123456789", string(body)) {
		t.Errorf("body %q is not a prefix of the payload", body)
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(3 * time.Second)
	c.Advance(-time.Second) // ignored
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", c.Now())
	}
	if err := c.Sleep(context.Background(), 2*time.Second); err != nil || c.Now() != 5*time.Second {
		t.Errorf("Sleep: err=%v now=%v, want nil/5s", err, c.Now())
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(canceled, time.Second); err == nil {
		t.Error("Sleep under a canceled context must fail")
	}
	ctx, cancelT := c.WithTimeout(context.Background(), time.Second)
	defer cancelT()
	if ctx.Err() != nil {
		t.Error("virtual WithTimeout must not expire the context for real")
	}
}

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 9 {
		t.Fatalf("catalogue has %d faults, want 9", len(cat))
	}
	seen := make(map[string]bool)
	for i, f := range cat {
		if seen[f.Name] {
			t.Errorf("duplicate fault name %q", f.Name)
		}
		seen[f.Name] = true
		wantEDT := i < 6
		if got := f.Class == taxonomy.ClassEnvDependentTransient; got != wantEDT {
			t.Errorf("fault %q: class %v out of catalogue order", f.Name, f.Class)
		}
		if f.Transient() != wantEDT {
			t.Errorf("fault %q: Transient() = %v", f.Name, f.Transient())
		}
		if !strings.HasPrefix(f.Name, "edt/") && !strings.HasPrefix(f.Name, "edn/") {
			t.Errorf("fault %q: name lacks a class prefix", f.Name)
		}
	}
}
