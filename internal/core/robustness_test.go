package core

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"faultstudy/internal/debbugs"
	"faultstudy/internal/gnats"
	"faultstudy/internal/mbox"
)

// TestMinerSkipsBrokenPages injects server-side failures into the tracker:
// 500s and non-PR garbage pages must be skipped or surfaced cleanly, never
// panic.
func TestMinerSkipsBrokenPages(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/bugdb/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/bugdb/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<a href="/bugdb/pr/1">one</a> <a href="/bugdb/pr/2">two</a> <a href="/bugdb/pr/3">three</a>`)
	})
	mux.HandleFunc("/bugdb/pr/1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<pre>"+strings.ReplaceAll(`>Number:         1
>Category:       general
>Synopsis:       server crashes on demand
>Severity:       critical
>Class:          sw-bug
>Release:        1.3.4
>Environment:
linux
>Description:
It crashes every time.
>How-To-Repeat:
Run it.
>Fix:
unknown
`, ">", "&gt;")+"</pre>")
	})
	mux.HandleFunc("/bugdb/pr/2", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "database on fire", http.StatusInternalServerError)
	})
	mux.HandleFunc("/bugdb/pr/3", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<p>this page has no problem report on it at all</p>")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	reports, err := MineApache(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("mined %d reports, want 1 (only the valid page)", len(reports))
	}
	if reports[0].ID != "PR-1" {
		t.Errorf("mined %s", reports[0].ID)
	}
}

// TestMinerSurfacesUnreachableSite ensures connection failures become
// errors, not empty results.
func TestMinerSurfacesUnreachableSite(t *testing.T) {
	if _, err := MineApache(context.Background(), "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable tracker should error")
	}
	if _, err := MineGnome(context.Background(), "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable tracker should error")
	}
	if _, err := MineMySQL(context.Background(), "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable archive should error")
	}
}

// Property: the three parsers never panic on arbitrary small inputs — they
// either parse or return an error.
func TestParsersNeverPanicProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := string(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("gnats.Parse panicked on %q: %v", s, r)
				}
			}()
			_, _ = gnats.Parse(strings.NewReader(s))
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("debbugs.Parse panicked on %q: %v", s, r)
				}
			}()
			_, _ = debbugs.Parse(strings.NewReader(s))
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mbox.Parse panicked on %q: %v", s, r)
				}
			}()
			_, _ = mbox.Parse(strings.NewReader(s))
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: prefixing valid GNATS text with arbitrary junk lines does not
// panic and the section parser still finds the number.
func TestGnatsJunkToleranceProperty(t *testing.T) {
	valid := `>Number: 7
>Synopsis: something fails
>Severity: critical
>Release: 1.0
>Description:
body
`
	f := func(junk []byte) bool {
		s := strings.ReplaceAll(string(junk), ">", " ") + "\n" + valid
		pr, err := gnats.Parse(strings.NewReader(s))
		return err == nil && pr.Number == 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
