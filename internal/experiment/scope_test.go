package experiment

import (
	"bytes"
	"strings"
	"testing"

	"faultstudy/internal/recoveryscope"
	"faultstudy/internal/taxonomy"
)

// scopeDump renders everything a SCOPE run produces: the report and the
// telemetry trace, timeline, and metric dumps.
func scopeDump(t *testing.T, workers int) string {
	t.Helper()
	tel := NewTelemetry()
	rep, err := RunScope(ScopeConfig{Seed: 42, Telemetry: tel, Workers: workers})
	if err != nil {
		t.Fatalf("RunScope(workers=%d): %v", workers, err)
	}
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := tel.WriteTrace(&b); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := tel.WriteTimeline(&b); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestScopeWorkerInvariance is the determinism contract: every report,
// trace, timeline, and metrics dump of the SCOPE experiment is
// byte-identical at 1, 2, and 8 workers.
func TestScopeWorkerInvariance(t *testing.T) {
	serial := scopeDump(t, 1)
	for _, workers := range []int{2, 8} {
		if got := scopeDump(t, workers); got != serial {
			t.Fatalf("SCOPE output at %d workers differs from serial run", workers)
		}
	}
}

// TestScopeGate runs the experiment once with telemetry attached and asserts
// the CI gate plus the mechanics behind it: one scorecard per registered
// mechanism, one probe arm per (mechanism, rung) cell, the documented metric
// family, and planned-rung stamping on the recorded episodes.
func TestScopeGate(t *testing.T) {
	tel := NewTelemetry()
	rep, err := RunScope(ScopeConfig{Seed: 42, Telemetry: tel, Workers: 0})
	if err != nil {
		t.Fatalf("RunScope: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	keys := Registry().Keys()
	if len(rep.Mechs) != len(keys) {
		t.Fatalf("scorecards = %d, want one per mechanism (%d)", len(rep.Mechs), len(keys))
	}
	if len(rep.Arms) != len(keys)*len(recoveryscope.Rungs()) {
		t.Fatalf("arms = %d, want mechanisms x rungs", len(rep.Arms))
	}
	if rep.Sites == 0 {
		t.Fatal("no static fault-raise sites analyzed")
	}

	recall := rep.ClassRecall(taxonomy.ClassEnvIndependent, true)
	if float64(recall.Hits) < scopeClassRecallFloor*float64(recall.N) {
		t.Fatalf("class recall %d/%d below gate floor", recall.Hits, recall.N)
	}
	var cured, probed int
	for _, a := range rep.Arms {
		probed += a.Episodes
		if a.Cured {
			cured++
		}
	}
	if probed == 0 {
		t.Fatal("probe arms saw no fault episodes")
	}
	if cured == 0 {
		t.Fatal("no probe arm cured its mechanism — ground truth degenerate")
	}
	for _, m := range rep.Mechs {
		if m.Curable && m.TruthRung == recoveryscope.RungNone {
			t.Fatalf("%s: curable with no truth rung", m.Mechanism)
		}
	}

	s := rep.String()
	for _, want := range []string{"SCOPE experiment", "class recall", "rung exact", "Headline"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}

	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, metric := range []string{
		MetricScopeSites, MetricScopeClassVerdicts,
		MetricScopeRungVerdicts, MetricScopeProbeEpisodes,
	} {
		if !strings.Contains(prom.String(), metric) {
			t.Fatalf("metrics dump missing %s", metric)
		}
	}
	if len(tel.Episodes()) == 0 {
		t.Fatal("no episodes recorded")
	}
	var planned bool
	for _, ep := range tel.Episodes() {
		if ep.PlannedRung != "" {
			planned = true
		}
	}
	if !planned {
		t.Fatal("no recorded episode carries the statically planned rung")
	}
	if sum := tel.Summary(); !strings.Contains(sum, "planned rungs") {
		t.Fatalf("telemetry summary missing the planned-rungs column:\n%s", sum)
	}
}

// TestScopeRungVerdict pins the verdict semantics: exact on agreement, over
// when the prediction pays more than measured, under when it pays less.
func TestScopeRungVerdict(t *testing.T) {
	cases := []struct {
		static, truth recoveryscope.Rung
		want          string
	}{
		{recoveryscope.RungRetry, recoveryscope.RungRetry, "exact"},
		{recoveryscope.RungRestart, recoveryscope.RungMicroreboot, "over"},
		{recoveryscope.RungRetry, recoveryscope.RungRestore, "under"},
		{recoveryscope.RungNone, recoveryscope.RungRetry, "under"},
	}
	for _, c := range cases {
		m := ScopeMech{StaticRung: c.static, TruthRung: c.truth}
		if got := m.RungVerdict(); got != c.want {
			t.Errorf("RungVerdict(%s vs %s) = %q, want %q", c.static, c.truth, got, c.want)
		}
	}
}

// TestScopeCheckFails exercises the gate's failure paths on synthetic
// scorecards.
func TestScopeCheckFails(t *testing.T) {
	mech := func(classOK bool, verdict string) ScopeMech {
		m := ScopeMech{TruthClass: taxonomy.ClassEnvIndependent,
			StaticClass: taxonomy.ClassEnvIndependent,
			StaticRung:  recoveryscope.RungRetry, TruthRung: recoveryscope.RungRetry}
		if !classOK {
			m.StaticClass = taxonomy.ClassEnvDependentTransient
		}
		if verdict == "under" {
			m.TruthRung = recoveryscope.RungRestart
		}
		return m
	}

	empty := &ScopeReport{}
	if err := empty.Check(); err == nil {
		t.Error("Check on empty report passed, want failure")
	}

	badRecall := &ScopeReport{Mechs: []ScopeMech{
		mech(false, "exact"), mech(false, "exact"), mech(true, "exact")}}
	if err := badRecall.Check(); err == nil || !strings.Contains(err.Error(), "class recall") {
		t.Errorf("Check with 1/3 recall = %v, want class-recall failure", err)
	}

	badUnder := &ScopeReport{Mechs: []ScopeMech{
		mech(true, "under"), mech(true, "exact"), mech(true, "exact")}}
	if err := badUnder.Check(); err == nil || !strings.Contains(err.Error(), "under-scoped") {
		t.Errorf("Check with 1/3 EI under-scoping = %v, want under-scope failure", err)
	}

	good := &ScopeReport{Mechs: []ScopeMech{
		mech(true, "exact"), mech(true, "exact"), mech(true, "exact")}}
	if err := good.Check(); err != nil {
		t.Errorf("Check on clean report: %v", err)
	}
}
