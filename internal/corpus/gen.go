package corpus

import (
	"fmt"
	"strings"
	"time"

	"faultstudy/internal/taxonomy"
)

// eiTemplate is a defect-type template for synthesizing the
// environment-independent faults the paper counts but does not individually
// describe. Placeholders: {component} and {input} substitute per instance.
type eiTemplate struct {
	synopsis    string
	description string
	howto       string
	fix         string
	symptom     taxonomy.Symptom
	mechanism   string
	severity    taxonomy.Severity
}

// reporter-detail pools: per-fault discriminating text so that two faults
// sharing a defect template still read as distinct reports (as real reports
// of distinct bugs do). The function-name pool is generic-by-design; the
// surrounding template text carries the application flavor.
var (
	genFunctions = []string{
		"handle_request", "parse_args", "flush_buffers", "do_command",
		"update_state", "read_config", "emit_reply", "walk_tree",
		"copy_fields", "check_limits", "init_context", "free_slot",
		"scan_input",
	}
	genPlatforms = []string{
		"Linux 2.0.36 (libc5)", "Linux 2.2.5 (glibc 2.1)", "Solaris 2.6 sparc",
		"FreeBSD 3.1", "Digital Unix 4.0", "HP-UX 10.20",
	}
	genVoices = []string{
		"We first noticed this on our production machine.",
		"A colleague reported the same behaviour independently.",
		"This started after we upgraded from the previous release.",
		"Support asked us to file this upstream.",
		"Found while stress-testing before deployment.",
		"This bit us twice this week.",
		"Our nightly run trips over this.",
	}
)

// expandEI synthesizes n environment-independent faults for app by
// enumerating distinct (template, input) pairs and decorating each record
// with per-fault reporter detail. Generation is a pure function of its
// arguments: the corpus is identical on every run.
func expandEI(app taxonomy.Application, idPrefix string, templates []eiTemplate, components, inputs []string, n int) []*Fault {
	if n > len(templates)*len(inputs) {
		panic(fmt.Sprintf("corpus: cannot synthesize %d distinct faults from %d templates x %d inputs",
			n, len(templates), len(inputs)))
	}
	faults := make([]*Fault, 0, n)
	for i := 0; i < n; i++ {
		// Distinct (template, input) pairs: no two synthesized faults share
		// both their defect template and their triggering input — otherwise
		// the mining pipeline would rightly merge them.
		tpl := templates[i%len(templates)]
		comp := components[i%len(components)]
		input := inputs[(i/len(templates))%len(inputs)]
		fn := genFunctions[(i*5+1)%len(genFunctions)]
		platform := genPlatforms[(i*3+2)%len(genPlatforms)]
		voice := genVoices[(i*2+3)%len(genVoices)]
		sub := func(s string) string {
			s = strings.ReplaceAll(s, "{component}", comp)
			return strings.ReplaceAll(s, "{input}", input)
		}
		sev := tpl.severity
		if sev == taxonomy.SeverityUnknown {
			sev = taxonomy.SeverityCritical
		}
		faults = append(faults, &Fault{
			ID:        fmt.Sprintf("%s/ei-%02d", idPrefix, i+1),
			App:       app,
			Class:     taxonomy.ClassEnvIndependent,
			Trigger:   taxonomy.TriggerWorkloadOnly,
			Component: comp,
			Synopsis:  sub(tpl.synopsis),
			Description: voice + " " + sub(tpl.description) +
				fmt.Sprintf(" The first bad frame in the trace is %s() on %s.", fn, platform),
			HowToRepeat: sub(tpl.howto) +
				fmt.Sprintf(" Verified on %s; the backtrace always ends in %s().", platform, fn),
			Fix:       sub(tpl.fix) + fmt.Sprintf(" (patch touches %s().)", fn),
			Severity:  sev,
			Symptom:   tpl.symptom,
			Mechanism: tpl.mechanism,
		})
	}
	return faults
}

// releaseBucket pairs a release label with its nominal date and per-class
// quota for the figure distributions.
type releaseBucket struct {
	release string
	date    time.Time
	ei      int
	edn     int
	edt     int
}

// assignSchedule distributes each class list across the buckets according to
// the per-bucket quotas, setting Release and Filed. Within a bucket, faults
// file on successive days so the time series is strictly ordered. It panics
// if the quotas do not sum to the list lengths — a programming error in the
// corpus tables, caught by the package tests.
func assignSchedule(buckets []releaseBucket, ei, edn, edt []*Fault) {
	assign := func(faults []*Fault, quota func(releaseBucket) int) {
		idx := 0
		for _, b := range buckets {
			for k := 0; k < quota(b); k++ {
				if idx >= len(faults) {
					panic(fmt.Sprintf("corpus: quota exceeds faults (%d)", len(faults)))
				}
				f := faults[idx]
				f.Release = b.release
				f.Filed = b.date.AddDate(0, 0, 3*k+1)
				idx++
			}
		}
		if idx != len(faults) {
			panic(fmt.Sprintf("corpus: quota %d != faults %d", idx, len(faults)))
		}
	}
	assign(ei, func(b releaseBucket) int { return b.ei })
	assign(edn, func(b releaseBucket) int { return b.edn })
	assign(edt, func(b releaseBucket) int { return b.edt })
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

func filterClass(faults []*Fault, c taxonomy.FaultClass) []*Fault {
	var out []*Fault
	for _, f := range faults {
		if f.Class == c {
			out = append(out, f)
		}
	}
	return out
}
