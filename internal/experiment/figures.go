package experiment

import (
	"fmt"
	"sort"
	"strings"

	"faultstudy/internal/corpus"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// FigureSeries is a regenerated distribution figure: fault counts per bucket
// (release or time period), stacked by class.
type FigureSeries struct {
	// App is the application.
	App taxonomy.Application
	// Buckets labels the x axis (releases for Apache/MySQL, quarters for
	// GNOME), in order.
	Buckets []string
	// PerClass maps each class to its per-bucket counts.
	PerClass map[taxonomy.FaultClass][]int
}

// Totals returns the per-bucket totals.
func (f *FigureSeries) Totals() []int {
	totals := make([]int, len(f.Buckets))
	for _, counts := range f.PerClass {
		for i, n := range counts {
			totals[i] += n
		}
	}
	return totals
}

// EIShare returns the environment-independent share per bucket.
func (f *FigureSeries) EIShare() []float64 {
	totals := f.Totals()
	shares := make([]float64, len(f.Buckets))
	for i, total := range totals {
		if total > 0 {
			shares[i] = float64(f.PerClass[taxonomy.ClassEnvIndependent][i]) / float64(total)
		}
	}
	return shares
}

// Render draws the figure as an ASCII stacked bar chart.
func (f *FigureSeries) Render() string {
	series := []stats.StackedSeries{
		{Label: "EI", Glyph: '#', Counts: f.PerClass[taxonomy.ClassEnvIndependent]},
		{Label: "EDN", Glyph: 'o', Counts: f.PerClass[taxonomy.ClassEnvDependentNonTransient]},
		{Label: "EDT", Glyph: '+', Counts: f.PerClass[taxonomy.ClassEnvDependentTransient]},
	}
	return fmt.Sprintf("Distribution of faults for %s:\n%s", f.App,
		stats.StackedBars(f.Buckets, series))
}

// Figure1Apache regenerates Figure 1: Apache faults per release, stacked by
// class.
func Figure1Apache() *FigureSeries {
	return byRelease(taxonomy.AppApache, apacheReleaseOrder())
}

// Figure3MySQL regenerates Figure 3: MySQL faults per release.
func Figure3MySQL() *FigureSeries {
	return byRelease(taxonomy.AppMySQL, mysqlReleaseOrder())
}

// Figure2Gnome regenerates Figure 2: GNOME faults over time (quarterly
// buckets), stacked by class.
func Figure2Gnome() *FigureSeries {
	faults := corpus.Gnome()
	bucketOf := func(f *corpus.Fault) string {
		q := (int(f.Filed.Month()) - 1) / 3
		return fmt.Sprintf("%dQ%d", f.Filed.Year(), q+1)
	}
	seen := make(map[string]bool)
	var buckets []string
	for _, f := range faults {
		b := bucketOf(f)
		if !seen[b] {
			seen[b] = true
			buckets = append(buckets, b)
		}
	}
	sort.Strings(buckets)
	fig := newFigure(taxonomy.AppGnome, buckets)
	idx := indexOfBuckets(buckets)
	for _, f := range faults {
		fig.PerClass[f.Class][idx[bucketOf(f)]]++
	}
	return fig
}

func byRelease(app taxonomy.Application, order []string) *FigureSeries {
	fig := newFigure(app, order)
	idx := indexOfBuckets(order)
	for _, f := range corpus.ByApp(app) {
		i, ok := idx[f.Release]
		if !ok {
			continue
		}
		fig.PerClass[f.Class][i]++
	}
	return fig
}

func newFigure(app taxonomy.Application, buckets []string) *FigureSeries {
	fig := &FigureSeries{
		App:      app,
		Buckets:  buckets,
		PerClass: make(map[taxonomy.FaultClass][]int, 3),
	}
	for _, c := range taxonomy.Classes() {
		fig.PerClass[c] = make([]int, len(buckets))
	}
	return fig
}

func indexOfBuckets(buckets []string) map[string]int {
	idx := make(map[string]int, len(buckets))
	for i, b := range buckets {
		idx[b] = i
	}
	return idx
}

// apacheReleaseOrder returns the Apache releases covered by the corpus in
// version order.
func apacheReleaseOrder() []string {
	return releasesOf(taxonomy.AppApache)
}

// mysqlReleaseOrder returns the MySQL releases covered by the corpus in
// version order.
func mysqlReleaseOrder() []string {
	return releasesOf(taxonomy.AppMySQL)
}

func releasesOf(app taxonomy.Application) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range corpus.ByApp(app) {
		if !seen[f.Release] {
			seen[f.Release] = true
			out = append(out, f.Release)
		}
	}
	sort.Slice(out, func(i, j int) bool { return versionLess(out[i], out[j]) })
	return out
}

// versionLess orders dotted version strings numerically.
func versionLess(a, b string) bool {
	as := strings.Split(a, ".")
	bs := strings.Split(b, ".")
	for i := 0; i < len(as) && i < len(bs); i++ {
		if as[i] == bs[i] {
			continue
		}
		var ai, bi int
		fmt.Sscanf(as[i], "%d", &ai)
		fmt.Sscanf(bs[i], "%d", &bi)
		if ai != bi {
			return ai < bi
		}
		return as[i] < bs[i]
	}
	return len(as) < len(bs)
}

// ClassReleaseIndependence computes the chi-square statistic of the figure's
// class-by-bucket contingency table against independence. The paper reads
// Figures 1 and 3 as "the relative proportion of environment-independent
// bugs stays about the same even for new releases" — a low statistic
// relative to its degrees of freedom is that claim, quantified.
func ClassReleaseIndependence(fig *FigureSeries) (chi2 float64, dof int) {
	table := make([][]float64, 0, 3)
	for _, c := range taxonomy.Classes() {
		row := make([]float64, len(fig.Buckets))
		for i, n := range fig.PerClass[c] {
			row[i] = float64(n)
		}
		table = append(table, row)
	}
	return stats.ChiSquare(table)
}
