// Package envcheck is a fixture: discarded errors from environment-dependent
// acquire operations, plus the release and checked shapes that must not fire.
package envcheck

import (
	"net"
	"os"
)

type fds struct{}

func (fds) Open(name string) (int, error) { return 0, nil }
func (fds) Close(fd int) error            { return nil }

type sim struct{}

func (sim) FDs() fds { return fds{} }

func leak(env sim) {
	_, _ = env.FDs().Open("sock") // want EDN
}

func fine(env sim) error {
	fd, err := env.FDs().Open("sock")
	if err != nil {
		return err
	}
	_ = env.FDs().Close(fd) // release op: idiomatic cleanup, not flagged
	return nil
}

func stdlib() {
	_, _ = os.Open("config")        // want EDN
	_, _ = net.Listen("tcp", ":80") // want EDN
}

func checked() error {
	f, err := os.Open("config")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
