// Resource governor: the paper's §6.2 mitigation, live.
//
// Nontransient faults defeat generic recovery because the environmental
// condition persists across failover. The paper's first suggested fix is to
// "detect the problem and automatically increase the resources available to
// the application". This example runs a descriptor-exhaustion fault and a
// full-file-system fault under plain process pairs (both lost), then again
// with the resource governor widening the exhausted limit before each retry
// (both survived) — and finally a changed-hostname fault, which no amount of
// resource growth can fix.
//
//	go run ./examples/resource-governor
package main

import (
	"fmt"
	"log"

	"faultstudy"
)

func main() {
	demos := []struct {
		title     string
		mechanism string
	}{
		{"descriptor exhaustion (growable)", "httpd/fd-exhaustion"},
		{"full file system (growable)", "httpd/fs-full"},
		{"changed hostname (not a resource)", "desktop/hostname-change"},
	}

	for _, d := range demos {
		fmt.Printf("== %s\n", d.title)
		for _, governed := range []bool{false, true} {
			policy := faultstudy.RecoveryPolicy{GrowResources: governed}
			mgr := faultstudy.NewRecoveryManager(policy)
			app, sc, err := faultstudy.BuildScenario(d.mechanism, 42)
			if err != nil {
				log.Fatal(err)
			}
			out, err := mgr.Run(app, sc, faultstudy.StrategyProcessPairs)
			if err != nil {
				log.Fatal(err)
			}
			label := "plain process pairs   "
			if governed {
				label = "with resource governor"
			}
			verdict := "LOST"
			if out.Survived {
				verdict = "survived"
			}
			fmt.Printf("   %s : %-8s (attempts %d)\n", label, verdict, out.Attempts)
		}
		fmt.Println()
	}

	fmt.Println("Growable limits can be governed; configuration and application-internal")
	fmt.Println("state cannot — which is why §6.2's mitigations only cover part of the")
	fmt.Println("nontransient class.")
}
