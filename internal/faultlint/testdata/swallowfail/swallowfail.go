// Package swallowfail is a fixture: caught FailureErrors dropped without
// reclassification, against the propagating handlers that must not fire.
package swallowfail

import (
	"errors"
	"fmt"

	"sim/faultinject"
)

// swallow catches and returns success: the failure's class is erased.
func swallow(err error) error {
	if fe, ok := faultinject.AsFailure(err); ok { // want EDN
		_ = fe
		return nil
	}
	return err
}

// swallowAs blanks the error through the errors.As shape.
func swallowAs(err error) error {
	var fe *faultinject.FailureError
	if errors.As(err, &fe) { // want EDN
		err = nil
	}
	return err
}

// reclassify wraps the failure into a new error: propagation, not flagged.
func reclassify(err error) error {
	if fe, ok := faultinject.AsFailure(err); ok {
		return fmt.Errorf("shutting down: %w", fe)
	}
	return err
}

// rethrow returns the failure unchanged: propagation, not flagged.
func rethrow(err error) error {
	if fe, ok := faultinject.AsFailure(err); ok {
		return fe
	}
	return nil
}
