package faultlint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree authors a package tree under a temp root: each entry maps a
// relative path to file content.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadMissingStubPackage: an import with no package on disk must load via
// the stub importer — the tolerated member-lookup failures land in TypeErrors
// while package-local objects stay resolved.
func TestLoadMissingStubPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app/app.go": `package app

import "no/such/dep"

const key = "app/fault"

func use() string { return dep.Value(key) }
`,
	})
	pkg, err := LoadDir(token.NewFileSet(), filepath.Join(root, "app"))
	if err != nil {
		t.Fatalf("LoadDir with missing import: %v", err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Error("no tolerated type errors recorded for the unresolvable member lookup")
	}
	if got := pkg.consts["key"]; got != "app/fault" {
		t.Errorf("package-local const lost under stub imports: %q", got)
	}
}

// TestStubImporterVersionedPath: "…/v2"-style import paths must stub to the
// parent element's package name, and repeated imports must share one stub.
func TestStubImporterVersionedPath(t *testing.T) {
	si := &stubImporter{}
	for path, want := range map[string]string{
		"math/rand/v2":    "rand",
		"example.com/mod": "mod",
		"v8":              "v8", // bare version-shaped path has no parent to name it
		"plain":           "plain",
	} {
		p, err := si.Import(path)
		if err != nil {
			t.Fatalf("Import(%s): %v", path, err)
		}
		if p.Name() != want {
			t.Errorf("Import(%s).Name() = %q, want %q", path, p.Name(), want)
		}
		again, _ := si.Import(path)
		if again != p {
			t.Errorf("Import(%s) not cached", path)
		}
	}
}

// TestLoadCyclicImport: two packages importing each other must both load —
// the stub importer breaks the cycle by never reading the other directory.
func TestLoadCyclicImport(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": `package a

import "cycle/b"

func A() { b.B() }
`,
		"b/b.go": `package b

import "cycle/a"

func B() { a.A() }
`,
	})
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Load over a cyclic pair: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want both halves of the cycle", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.Files) != 1 {
			t.Errorf("%s: %d files parsed", pkg.Name, len(pkg.Files))
		}
	}
}

// TestLoadParseErrorInMultiFilePackage: a parse error in one file of a
// multi-file package is a hard error naming the broken file — syntax errors
// are the author's to fix, not the loader's to tolerate.
func TestLoadParseErrorInMultiFilePackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app/good.go":   "package app\n\nfunc ok() {}\n",
		"app/broken.go": "package app\n\nfunc oops( {\n",
		"app/tail.go":   "package app\n\nfunc also() {}\n",
	})
	_, err := LoadDir(token.NewFileSet(), filepath.Join(root, "app"))
	if err == nil {
		t.Fatal("LoadDir tolerated a syntax error")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error does not name the broken file: %v", err)
	}
	// The same failure must surface through pattern expansion.
	if _, err := Load(root, []string{"./..."}); err == nil {
		t.Error("Load(./...) tolerated the syntax error")
	}
}

// TestLoadDirMissing: an unreadable directory is a hard error, both directly
// and through a non-recursive pattern.
func TestLoadDirMissing(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := LoadDir(token.NewFileSet(), missing); err == nil {
		t.Error("LoadDir on a missing directory did not fail")
	}
	if _, err := Load(t.TempDir(), []string{"nope"}); err == nil {
		t.Error("Load with a missing pattern directory did not fail")
	}
}

// TestLoadMixedPackageDir: files whose package clause disagrees with the
// directory majority (first clause wins) are skipped, not fatal.
func TestLoadMixedPackageDir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app/a.go":     "package app\n\nfunc a() {}\n",
		"app/stray.go": "package other\n\nfunc s() {}\n",
	})
	pkg, err := LoadDir(token.NewFileSet(), filepath.Join(root, "app"))
	if err != nil {
		t.Fatalf("LoadDir over a mixed-package dir: %v", err)
	}
	if pkg.Name != "app" || len(pkg.Files) != 1 {
		t.Errorf("kept package %q with %d files, want app with 1", pkg.Name, len(pkg.Files))
	}
}

// TestLoadEmptyDir: a directory with no Go files loads as (nil, nil).
func TestLoadEmptyDir(t *testing.T) {
	root := writeTree(t, map[string]string{"app/README.md": "no go here\n"})
	pkg, err := LoadDir(token.NewFileSet(), filepath.Join(root, "app"))
	if err != nil || pkg != nil {
		t.Errorf("LoadDir on a Go-less dir = (%v, %v), want (nil, nil)", pkg, err)
	}
}
