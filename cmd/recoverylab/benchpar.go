package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"faultstudy"
	"faultstudy/internal/parallel"
)

// BenchArm is one measured worker count of one experiment.
type BenchArm struct {
	// Workers is the pool size measured.
	Workers int `json:"workers"`
	// WallMS is the best-of-reps wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Speedup is the serial arm's wall time divided by this arm's.
	Speedup float64 `json:"speedup"`
	// IdenticalToSerial reports whether the arm's full output (report,
	// episode trace, Prometheus dump) is byte-identical to the workers=1
	// arm — the engine's determinism contract, checked on every bench run.
	IdenticalToSerial bool `json:"identical_to_serial"`
}

// BenchExperiment is one experiment's sweep over worker counts.
type BenchExperiment struct {
	// Name identifies the experiment ("supervised-matrix", "soak").
	Name string `json:"name"`
	// Shards is how many independent shards the experiment decomposes into
	// (the parallelism ceiling).
	Shards int `json:"shards"`
	// Arms holds one entry per measured worker count, serial first.
	Arms []BenchArm `json:"arms"`
	// BestSpeedup is the largest speedup across arms.
	BestSpeedup float64 `json:"best_speedup"`
}

// BenchReport is the BENCH_parallel.json artifact schema.
type BenchReport struct {
	// Experiment names the benchmark family.
	Experiment string `json:"experiment"`
	// Seed is the root seed every run used.
	Seed int64 `json:"seed"`
	// NumCPU and GoMaxProcs describe the hardware the numbers were taken
	// on — a 1-processor container cannot show wall-clock speedup no matter
	// how well the engine shards, so readers must interpret Speedup
	// against these.
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"go_max_procs"`
	// SpeedupUnverified is true when the run had fewer than 2 schedulable
	// processors: the determinism contract is still fully checked, but every
	// Speedup number is meaningless (parallel arms cannot beat serial on one
	// CPU) and must not be quoted.
	SpeedupUnverified bool `json:"speedup_unverified"`
	// Reps is the repetitions per arm (best wall time is reported).
	Reps int `json:"reps"`
	// Target documents the acceptance bar for this artifact.
	Target string `json:"target"`
	// Experiments holds the measured sweeps.
	Experiments []BenchExperiment `json:"experiments"`
}

// benchOutput is one run's complete observable output, used both for timing
// and for the byte-identity check.
type benchOutput struct {
	report []byte
	trace  []byte
	prom   []byte
}

// equal compares two outputs byte-for-byte.
func (o benchOutput) equal(other benchOutput) bool {
	return bytes.Equal(o.report, other.report) &&
		bytes.Equal(o.trace, other.trace) &&
		bytes.Equal(o.prom, other.prom)
}

// runSupervisedArm runs the telemetry-instrumented supervised matrix at one
// worker count and returns its full output.
func runSupervisedArm(seed int64, workers int) (benchOutput, error) {
	tel := faultstudy.NewTelemetry()
	matrix, err := faultstudy.RunRecoveryMatrixWorkers(faultstudy.RecoveryPolicy{}, seed, workers)
	if err != nil {
		return benchOutput{}, err
	}
	cfg := faultstudy.SupervisorConfig{GrowResources: true}
	if err := matrix.AddSupervisedWorkers(seed, cfg, tel, workers); err != nil {
		return benchOutput{}, err
	}
	return collectOutput(tel, []byte(matrix.String()))
}

// runSoakArm runs the telemetry-instrumented soak at one worker count.
func runSoakArm(seed int64, workers int) (benchOutput, error) {
	tel := faultstudy.NewTelemetry()
	results, err := faultstudy.RunSoak(faultstudy.SoakConfig{
		Ops: 600, Faults: 3, Seed: seed,
		Supervise: faultstudy.SupervisorConfig{GrowResources: true},
		Telemetry: tel,
		Workers:   workers,
	})
	if err != nil {
		return benchOutput{}, err
	}
	return collectOutput(tel, []byte(faultstudy.RenderSoak(results)))
}

// collectOutput bundles a run's report with its trace and metric dumps.
func collectOutput(tel *faultstudy.Telemetry, report []byte) (benchOutput, error) {
	var trace, prom bytes.Buffer
	if err := tel.WriteTrace(&trace); err != nil {
		return benchOutput{}, err
	}
	if err := tel.WritePrometheus(&prom); err != nil {
		return benchOutput{}, err
	}
	return benchOutput{report: report, trace: trace.Bytes(), prom: prom.Bytes()}, nil
}

// benchArms are the worker counts measured, serial first; the engine's
// default pool size (one worker per processor, parallel.Workers' rule for 0)
// is appended when it is not already an arm.
func benchArms() []int {
	arms := []int{1, 2, 4, 8}
	n := parallel.Workers(0)
	for _, a := range arms {
		if a == n {
			return arms
		}
	}
	return append(arms, n)
}

// measureExperiment sweeps one experiment over the bench arms.
func measureExperiment(name string, shards, reps int, seed int64,
	run func(seed int64, workers int) (benchOutput, error)) (BenchExperiment, error) {
	exp := BenchExperiment{Name: name, Shards: shards}
	var serial benchOutput
	var serialMS float64
	for _, workers := range benchArms() {
		var best time.Duration
		var out benchOutput
		for r := 0; r < reps; r++ {
			start := time.Now() //faultlint:ignore wallclock the bench measures real wall-clock speedup; determinism is checked on the outputs, not the timings
			o, err := run(seed, workers)
			elapsed := time.Since(start) //faultlint:ignore wallclock see above

			if err != nil {
				return exp, fmt.Errorf("%s workers=%d: %w", name, workers, err)
			}
			if r == 0 || elapsed < best {
				best = elapsed
			}
			out = o
		}
		arm := BenchArm{Workers: workers, WallMS: float64(best.Microseconds()) / 1000}
		if workers == 1 {
			serial, serialMS = out, arm.WallMS
			arm.Speedup = 1
			arm.IdenticalToSerial = true
		} else {
			if arm.WallMS > 0 {
				arm.Speedup = serialMS / arm.WallMS
			}
			arm.IdenticalToSerial = out.equal(serial)
			if !arm.IdenticalToSerial {
				return exp, fmt.Errorf("%s workers=%d: output differs from serial run — determinism contract broken", name, workers)
			}
		}
		if arm.Speedup > exp.BestSpeedup {
			exp.BestSpeedup = arm.Speedup
		}
		exp.Arms = append(exp.Arms, arm)
	}
	return exp, nil
}

// runBenchParallel measures the parallel engine's wall-clock speedup over
// the supervised-matrix and soak sweeps, verifies the worker-count
// determinism contract on every arm, and writes the BENCH_parallel.json
// artifact. It fails hard when any arm's output differs from the serial run.
func runBenchParallel(path string, seed int64) error {
	const reps = 3
	rep := BenchReport{
		Experiment:        "parallel-engine",
		Seed:              seed,
		NumCPU:            runtime.NumCPU(),
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		SpeedupUnverified: runtime.GOMAXPROCS(0) < 2,
		Reps:              reps,
		Target:            ">=3x wall-clock speedup at 8 workers on 4+ cores; byte-identical output at every worker count",
	}
	supervised, err := measureExperiment("supervised-matrix", len(faultstudy.Corpus()), reps, seed, runSupervisedArm)
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, supervised)
	soak, err := measureExperiment("soak", 3, reps, seed, runSoakArm)
	if err != nil {
		return err
	}
	rep.Experiments = append(rep.Experiments, soak)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	for _, e := range rep.Experiments {
		fmt.Printf("%s: %d shards, best speedup %.2fx on %d procs (outputs identical at every worker count)\n",
			e.Name, e.Shards, e.BestSpeedup, rep.GoMaxProcs)
	}
	if rep.SpeedupUnverified {
		fmt.Fprintf(os.Stderr,
			"WARNING: speedup unverified: measured on %d CPU (GOMAXPROCS=%d) — the byte-identity\n"+
				"contract was checked, but the wall-clock speedup numbers in %s are\n"+
				"meaningless on a single processor and must not be quoted.\n",
			rep.NumCPU, rep.GoMaxProcs, path)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
