package faultstudy_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestBinariesEndToEnd runs every command and example the way a user would
// (`go run ...`) and checks each produces its expected headline output.
// Skipped under -short: each run compiles and executes a binary.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real binaries; skipped with -short")
	}
	runs := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "cmd/faultstudy",
			args: []string{"run", "./cmd/faultstudy", "-figures=false"},
			want: []string{"apache: 347 raw", "50 unique", "45 unique", "44 unique", "aggregate: 139 unique faults"},
		},
		{
			name: "cmd/faultstudy -app",
			args: []string{"run", "./cmd/faultstudy", "-app", "gnome"},
			want: []string{"gnome:", "45 unique", "environment-independent              39"},
		},
		{
			name: "cmd/bugminer",
			args: []string{"run", "./cmd/bugminer", "-source", "mysql", "-simulate"},
			want: []string{"44 unique", "environment-dependent-transient      2"},
		},
		{
			name: "cmd/recoverylab matrix",
			args: []string{"run", "./cmd/recoverylab"},
			want: []string{"process-pairs", "12/12 (100%)", "0/113 (0%)"},
		},
		{
			name: "cmd/recoverylab single",
			args: []string{"run", "./cmd/recoverylab", "-mechanism", "httpd/dns-error"},
			want: []string{"process-pairs", "survived"},
		},
		{
			name: "cmd/recoverylab telemetry",
			args: []string{"run", "./cmd/recoverylab", "-mechanism", "httpd/dns-error", "-metrics", "-timeline"},
			want: []string{"Recovery telemetry by fault class", "EDT", "activated", "recovered after"},
		},
		{
			name: "cmd/doccheck",
			args: []string{"run", "./cmd/doccheck", "./internal/obsv", "./internal/supervise", "./internal/recovery"},
			want: []string{"3 packages clean"},
		},
		{
			name: "examples/quickstart",
			args: []string{"run", "./examples/quickstart"},
			want: []string{"environment-dependent-transient", "139 bugs"},
		},
		{
			name: "examples/mining-pipeline",
			args: []string{"run", "./examples/mining-pipeline"},
			want: []string{"50 unique faults", "environment-independent              36"},
		},
		{
			name: "examples/webserver-recovery",
			args: []string{"run", "./examples/webserver-recovery"},
			want: []string{"SURVIVED", "LOST"},
		},
		{
			name: "examples/resource-governor",
			args: []string{"run", "./examples/resource-governor"},
			want: []string{"with resource governor : survived", "LOST"},
		},
		{
			name: "examples/paper-tables",
			args: []string{"run", "./examples/paper-tables"},
			want: []string{"matches the paper exactly", "Tandem", "12/12 (100%)"},
		},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", r.args...)
			cmd.Dir = "."
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				defer close(done)
				out, err = cmd.CombinedOutput()
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				<-done
				t.Fatal("binary timed out")
			}
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", r.args, err, out)
			}
			for _, want := range r.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestTraceArtifactRoundTrip is the CI telemetry gate in test form: a soak
// writes trace and metrics artifacts, and -checktrace validates the trace.
// Skipped under -short: it compiles and executes recoverylab twice.
func TestTraceArtifactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real binaries; skipped with -short")
	}
	dir := t.TempDir()
	trace := dir + "/soak.jsonl"
	prom := dir + "/soak.prom"
	out, err := exec.Command("go", "run", "./cmd/recoverylab",
		"-soak", "-ops", "60", "-faults", "2",
		"-trace", trace, "-prom", prom).CombinedOutput()
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	out, err = exec.Command("go", "run", "./cmd/recoverylab", "-checktrace", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("checktrace failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "trace OK") {
		t.Errorf("checktrace output missing verdict:\n%s", out)
	}
}
