package taxonomy

import (
	"encoding/json"
	"fmt"
)

// The taxonomy enums marshal as their canonical names, not integers: the
// serialized corpus is a data contract for downstream consumers, and names
// survive reordering of the constants.

// MarshalJSON encodes the class as its canonical name.
func (c FaultClass) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes a class name (any accepted spelling).
func (c *FaultClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("taxonomy: fault class: %w", err)
	}
	v, err := ParseClass(s)
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// MarshalJSON encodes the trigger as its canonical name.
func (k TriggerKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a trigger name.
func (k *TriggerKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("taxonomy: trigger kind: %w", err)
	}
	v, err := ParseTrigger(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalJSON encodes the symptom as its canonical name.
func (s Symptom) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a symptom name.
func (s *Symptom) UnmarshalJSON(data []byte) error {
	var raw string
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("taxonomy: symptom: %w", err)
	}
	v, err := ParseSymptom(raw)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// MarshalJSON encodes the severity as its canonical name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a severity name (any accepted spelling).
func (s *Severity) UnmarshalJSON(data []byte) error {
	var raw string
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("taxonomy: severity: %w", err)
	}
	v, err := ParseSeverity(raw)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// MarshalJSON encodes the application as its canonical name.
func (a Application) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.String())
}

// UnmarshalJSON decodes an application name.
func (a *Application) UnmarshalJSON(data []byte) error {
	var raw string
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("taxonomy: application: %w", err)
	}
	v, err := ParseApplication(raw)
	if err != nil {
		return err
	}
	*a = v
	return nil
}
