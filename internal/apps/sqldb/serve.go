package sqldb

import (
	"errors"
	"fmt"

	"faultstudy/internal/component"
)

// Serving-tier category names for the SQL operation mix.
const (
	ServeSelect = "select"
	ServeInsert = "insert"
	ServeCount  = "count"
	ServeUpdate = "update"
)

// ServeTable is the table the serving tier reads and writes. ServeWarm
// creates it; the restart rung re-runs ServeWarm after Reset, the way a
// process restart re-runs a database's init script.
const ServeTable = "serve"

// ServeWarm brings the database to steady state before traffic: a warmup
// session creates the serve table and seeds enough rows that the first
// selects have something to read.
func (c *Componentized) ServeWarm() error {
	if err := c.Connect("warmup", "10.0.0.1"); err != nil {
		return err
	}
	if _, err := c.Exec("warmup", "CREATE TABLE "+ServeTable+" (k INT, payload TEXT)"); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Exec("warmup", fmt.Sprintf("INSERT INTO %s VALUES (%d, 'seed%d')", ServeTable, i, i)); err != nil {
			return err
		}
	}
	return nil
}

// ServeArrival serves one open-loop arrival: u in [0, 1) picks the
// statement kind from a 55/20/15/10 select/insert/count/update mix, seq
// individualizes keys, and user names the client session. Sessions connect
// lazily and survive in the externalized store, so a rebooted listener does
// not force every user back through Connect. It returns the category
// served, the down component's name when the request was refused
// mid-reboot, and the execution error.
func (c *Componentized) ServeArrival(seq, user int, u float64) (category, comp string, err error) {
	session := fmt.Sprintf("u%05d", user)
	if !c.SessionAlive(session) {
		if err = c.Connect(session, fmt.Sprintf("10.1.%d.%d", user/256, user%256)); err != nil {
			var de *component.DownError
			if errors.As(err, &de) {
				comp = de.Component
			}
			return "connect", comp, err
		}
	}
	var stmt string
	switch {
	case u < 0.55:
		category = ServeSelect
		stmt = fmt.Sprintf("SELECT * FROM %s WHERE k <= %d ORDER BY k LIMIT 10", ServeTable, seq%64)
	case u < 0.75:
		category = ServeInsert
		stmt = fmt.Sprintf("INSERT INTO %s VALUES (%d, 'p%d')", ServeTable, 8+seq, seq)
	case u < 0.90:
		category = ServeCount
		stmt = "SELECT COUNT(*) FROM " + ServeTable
	default:
		category = ServeUpdate
		stmt = fmt.Sprintf("UPDATE %s SET payload = 'u%d' WHERE k = %d", ServeTable, seq, seq%8)
	}
	_, err = c.Exec(session, stmt)
	var de *component.DownError
	if errors.As(err, &de) {
		comp = de.Component
	}
	return category, comp, err
}
