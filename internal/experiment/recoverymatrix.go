package experiment

import (
	"fmt"

	"faultstudy/internal/recovery"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// FaultOutcome records whether each strategy survived one corpus fault's
// executable reproduction.
type FaultOutcome struct {
	// FaultID is the corpus fault.
	FaultID string
	// Mechanism is the seeded bug exercised.
	Mechanism string
	// Class is the fault's oracle class.
	Class taxonomy.FaultClass
	// Survived maps each strategy to its outcome.
	Survived map[recovery.Strategy]bool
	// Supervised is the supervision-layer verdict, when AddSupervised has
	// been run (VerdictNone otherwise).
	Supervised SupervisorVerdict
}

// Matrix is the full recovery-verification experiment: every corpus fault run
// under every strategy.
type Matrix struct {
	// PerFault holds the individual outcomes in corpus order.
	PerFault []FaultOutcome
	// Strategies lists the strategies run, in presentation order.
	Strategies []recovery.Strategy
}

// Rate returns the survival proportion of one strategy over faults of one
// class (all classes when class is ClassUnknown).
func (m *Matrix) Rate(strat recovery.Strategy, class taxonomy.FaultClass) stats.Proportion {
	p := stats.Proportion{}
	for _, fo := range m.PerFault {
		if class != taxonomy.ClassUnknown && fo.Class != class {
			continue
		}
		p.N++
		if fo.Survived[strat] {
			p.Hits++
		}
	}
	return p
}

// AppRate returns one strategy's survival proportion over one application's
// faults.
func (m *Matrix) AppRate(strat recovery.Strategy, app taxonomy.Application) stats.Proportion {
	prefix := map[taxonomy.Application]string{
		taxonomy.AppApache: "apache/",
		taxonomy.AppGnome:  "gnome/",
		taxonomy.AppMySQL:  "mysql/",
	}[app]
	p := stats.Proportion{}
	for _, fo := range m.PerFault {
		if len(fo.FaultID) < len(prefix) || fo.FaultID[:len(prefix)] != prefix {
			continue
		}
		p.N++
		if fo.Survived[strat] {
			p.Hits++
		}
	}
	return p
}

// String renders the class-by-strategy survival table.
func (m *Matrix) String() string {
	tbl := &stats.Table{Header: []string{"class", "faults"}}
	for _, s := range m.Strategies {
		tbl.Header = append(tbl.Header, s.String())
	}
	supervised := m.HasSupervised()
	if supervised {
		tbl.Header = append(tbl.Header, "supervised")
	}
	for _, c := range taxonomy.Classes() {
		row := []string{c.String(), fmt.Sprint(m.Rate(m.Strategies[0], c).N)}
		for _, s := range m.Strategies {
			r := m.Rate(s, c)
			row = append(row, fmt.Sprintf("%d/%d (%s)", r.Hits, r.N, r.Percent()))
		}
		if supervised {
			r, degraded := m.SupervisedRate(c)
			cell := fmt.Sprintf("%d/%d (%s)", r.Hits, r.N, r.Percent())
			if degraded > 0 {
				cell += fmt.Sprintf(" [%d degr]", degraded)
			}
			row = append(row, cell)
		}
		tbl.Add(row...)
	}
	return "Recovery survival by fault class and strategy:\n" + tbl.String()
}

// RunMatrix executes every corpus fault's scenario under every strategy.
// Each (fault, strategy) run gets its own freshly seeded environment and
// application instance, so runs are independent and deterministic. It is the
// single-worker case of RunMatrixWorkers.
func RunMatrix(policy recovery.Policy, seed int64) (*Matrix, error) {
	return RunMatrixWorkers(policy, seed, 1)
}

// Lee93 holds the §7 reconciliation with Lee & Iyer's Tandem GUARDIAN study.
type Lee93 struct {
	// TandemReported is the process-pair recovery rate Lee & Iyer report
	// (82%).
	TandemReported float64
	// TandemAdjusted is the rate after removing recoveries that relied on
	// backup state divergence, tasks that were never re-executed, and
	// faults that only affected the backup (29%).
	TandemAdjusted float64
	// OurGenericRate is this study's measured process-pair survival rate
	// over all 139 faults.
	OurGenericRate stats.Proportion
	// OurTransientShare is the corpus share of transient faults (the
	// theoretical ceiling for generic recovery under our model).
	OurTransientShare stats.Proportion
	// PerApp is the measured per-application generic survival rate.
	PerApp map[taxonomy.Application]stats.Proportion
}

// ComputeLee93 reconciles the matrix with the published Tandem numbers.
func ComputeLee93(m *Matrix) *Lee93 {
	l := &Lee93{
		TandemReported: 0.82,
		TandemAdjusted: 0.29,
		OurGenericRate: m.Rate(recovery.StrategyProcessPairs, taxonomy.ClassUnknown),
		PerApp:         make(map[taxonomy.Application]stats.Proportion, 3),
	}
	share := stats.Proportion{}
	for _, fo := range m.PerFault {
		share.N++
		if fo.Class == taxonomy.ClassEnvDependentTransient {
			share.Hits++
		}
	}
	l.OurTransientShare = share
	for _, app := range taxonomy.Applications() {
		l.PerApp[app] = m.AppRate(recovery.StrategyProcessPairs, app)
	}
	return l
}

// String renders the reconciliation.
func (l *Lee93) String() string {
	tbl := &stats.Table{Header: []string{"quantity", "value"}}
	tbl.Add("Tandem process pairs, as reported [Lee93]", fmt.Sprintf("%.0f%%", 100*l.TandemReported))
	tbl.Add("  after removing backup-state, unexecuted-task,", "")
	tbl.Add("  and backup-only recoveries (paper §7)", fmt.Sprintf("%.0f%%", 100*l.TandemAdjusted))
	tbl.Add("this study: pure generic recovery, measured", l.OurGenericRate.Percent())
	tbl.Add("this study: transient share of faults", l.OurTransientShare.Percent())
	for _, app := range taxonomy.Applications() {
		tbl.Add("  measured for "+app.String(), l.PerApp[app].Percent())
	}
	return "Reconciliation with Lee & Iyer (Tandem GUARDIAN):\n" + tbl.String()
}
