package scrape

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordSleeper satisfies Sleeper and records every pause instead of
// sleeping, so Retry-After tests assert on exact waits in zero time.
type recordSleeper struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (s *recordSleeper) Sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.slept = append(s.slept, d)
	s.mu.Unlock()
	return ctx.Err()
}

func (s *recordSleeper) total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t time.Duration
	for _, d := range s.slept {
		t += d
	}
	return t
}

// newFlakySite serves an index linking three pages; /bugs/doomed drops every
// connection, the others serve normally. The regression target: one
// unrecoverable page must cost exactly itself, not the crawl.
func newFlakySite(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<a href="/bugs/1">1</a> <a href="/bugs/doomed">d</a> <a href="/bugs/2">2</a>`)
	})
	mux.HandleFunc("/bugs/1", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "bug one") })
	mux.HandleFunc("/bugs/2", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "bug two") })
	mux.HandleFunc("/bugs/doomed", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // drop the connection, every time
	})
	return httptest.NewServer(mux)
}

func TestCrawlRecordsGapAndContinues(t *testing.T) {
	srv := newFlakySite(t)
	defer srv.Close()
	c := NewCrawler()
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	byPath := make(map[string]*Page)
	for _, p := range pages {
		byPath[strings.TrimPrefix(p.URL, srv.URL)] = p
	}
	for _, path := range []string{"/bugs/1", "/bugs/2"} {
		p, ok := byPath[path]
		if !ok || p.Err != nil || p.Status != 200 {
			t.Errorf("healthy page %s not fetched cleanly: %+v", path, p)
		}
	}
	doomed, ok := byPath["/bugs/doomed"]
	if !ok {
		t.Fatal("doomed page not recorded at all")
	}
	if doomed.Err == nil || doomed.Status != 0 {
		t.Errorf("doomed page should be a gap (Status 0, Err set), got %+v", doomed)
	}

	cov := CoverageOf(pages)
	if cov.Attempted != 4 || cov.Fetched != 3 || cov.Gaps != 1 {
		t.Errorf("coverage = %+v, want 4 attempted / 3 fetched / 1 gap", cov)
	}
	gaps := GapsOf(pages)
	if len(gaps) != 1 || !strings.HasSuffix(gaps[0].URL, "/bugs/doomed") {
		t.Errorf("gaps = %+v", gaps)
	}
	report := RenderGaps(pages)
	if !strings.Contains(report, "3/4 pages fetched") || !strings.Contains(report, "/bugs/doomed") {
		t.Errorf("gap report missing expected lines:\n%s", report)
	}
}

func TestRenderGapsClean(t *testing.T) {
	pages := []*Page{{URL: "http://x/a", Status: 200}, {URL: "http://x/b", Status: 404}}
	got := RenderGaps(pages)
	if !strings.Contains(got, "no gaps") || !strings.Contains(got, "1/2 pages fetched") {
		t.Errorf("clean report wrong:\n%s", got)
	}
}

// throttleOnce serves 429 + Retry-After on the first request to each path,
// then 200.
type throttleOnce struct {
	mu         sync.Mutex
	seen       map[string]int
	retryAfter string
}

func (h *throttleOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.seen[r.URL.Path]++
	first := h.seen[r.URL.Path] == 1
	h.mu.Unlock()
	if first {
		w.Header().Set("Retry-After", h.retryAfter)
		http.Error(w, "throttled", http.StatusTooManyRequests)
		return
	}
	fmt.Fprint(w, "served")
}

func TestCrawlHonorsRetryAfter(t *testing.T) {
	srv := httptest.NewServer(&throttleOnce{seen: make(map[string]int), retryAfter: "1"})
	defer srv.Close()
	sl := &recordSleeper{}
	c := NewCrawler(WithSleeper(sl))
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(pages) != 1 || pages[0].Status != 200 {
		t.Fatalf("throttled page not retried to success: %+v", pages)
	}
	if got := sl.total(); got != 1*time.Second {
		t.Errorf("slept %v honoring Retry-After, want 1s", got)
	}
}

func TestCrawlRetryAfterCapped(t *testing.T) {
	srv := httptest.NewServer(&throttleOnce{seen: make(map[string]int), retryAfter: "3600"})
	defer srv.Close()
	sl := &recordSleeper{}
	c := NewCrawler(WithSleeper(sl), WithRetryAfterCap(500*time.Millisecond))
	if _, err := c.Crawl(context.Background(), srv.URL+"/"); err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if got := sl.total(); got != 500*time.Millisecond {
		t.Errorf("slept %v, want the 500ms cap", got)
	}
}

func TestCrawlRetryAfterDisabled(t *testing.T) {
	srv := httptest.NewServer(&throttleOnce{seen: make(map[string]int), retryAfter: "1"})
	defer srv.Close()
	sl := &recordSleeper{}
	c := NewCrawler(WithSleeper(sl), WithRetryAfterCap(0))
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(pages) != 1 || pages[0].Status != http.StatusTooManyRequests {
		t.Fatalf("naive crawl should record the 429 as-is: %+v", pages)
	}
	if got := sl.total(); got != 0 {
		t.Errorf("naive crawl slept %v, want nothing", got)
	}
}

// alwaysThrottled serves 429 + Retry-After forever: the wait budget must
// bound how long one fetch chases the hint.
func TestCrawlRetryAfterWaitBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "throttled", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	sl := &recordSleeper{}
	c := NewCrawler(WithSleeper(sl))
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(pages) != 1 || pages[0].Status != http.StatusTooManyRequests {
		t.Fatalf("exhausted waits should return the throttled page: %+v", pages)
	}
	if len(sl.slept) != maxRetryAfterWaits {
		t.Errorf("honored %d waits, want at most %d", len(sl.slept), maxRetryAfterWaits)
	}
}

func TestCrawlBodyTooLarge(t *testing.T) {
	big := strings.Repeat("x", MaxBodyBytes+1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, big)
	}))
	defer srv.Close()
	c := NewCrawler()
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(pages) != 1 {
		t.Fatalf("got %d pages, want 1", len(pages))
	}
	if pages[0].Err == nil || !errors.Is(pages[0].Err, ErrBodyTooLarge) {
		t.Errorf("oversized body should be an ErrBodyTooLarge gap, got %v", pages[0].Err)
	}
}
