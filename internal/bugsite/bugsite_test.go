package bugsite

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"faultstudy/internal/corpus"
	"faultstudy/internal/debbugs"
	"faultstudy/internal/gnats"
	"faultstudy/internal/mbox"
	"faultstudy/internal/scrape"
)

func TestApachePRsDeterministic(t *testing.T) {
	a := ApachePRs(Config{Seed: 7})
	b := ApachePRs(Config{Seed: 7})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for n, text := range a {
		if b[n] != text {
			t.Fatalf("PR %d differs between runs", n)
		}
	}
	c := ApachePRs(Config{Seed: 8})
	if len(c) == len(a) {
		same := true
		for n, text := range a {
			if c[n] != text {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical sites")
		}
	}
}

func TestApachePRsParseAndContainCanonicals(t *testing.T) {
	prs := ApachePRs(Config{Seed: 1})
	if len(prs) < 50+220 {
		t.Fatalf("site has %d PRs, want >= 270", len(prs))
	}
	qualifying := 0
	for n, text := range prs {
		pr, err := gnats.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("PR %d does not parse: %v", n, err)
		}
		r, err := pr.ToReport()
		if err != nil {
			t.Fatalf("PR %d does not convert: %v", n, err)
		}
		if r.Qualifies() {
			qualifying++
		}
	}
	// Canonicals plus their duplicates qualify; noise must not.
	if qualifying < 50 {
		t.Errorf("only %d qualifying PRs, want >= 50", qualifying)
	}
	if qualifying > 50*3 {
		t.Errorf("%d qualifying PRs; noise is leaking through the filter", qualifying)
	}
}

func TestApacheNoiseNeverQualifies(t *testing.T) {
	// Generate a site with zero noise and one with noise; the difference in
	// qualifying counts must be zero.
	base := ApachePRs(Config{Seed: 3, NoiseReports: -1})
	noisy := ApachePRs(Config{Seed: 3, NoiseReports: 60})
	count := func(m map[int]string) int {
		q := 0
		for _, text := range m {
			pr, err := gnats.Parse(strings.NewReader(text))
			if err != nil {
				t.Fatal(err)
			}
			r, err := pr.ToReport()
			if err != nil {
				t.Fatal(err)
			}
			if r.Qualifies() {
				q++
			}
		}
		return q
	}
	if a, b := count(base), count(noisy); a != b {
		t.Errorf("noise changed qualifying count: %d -> %d", a, b)
	}
}

func TestGnomeBugsParse(t *testing.T) {
	bugs, cvsLog := GnomeBugs(Config{Seed: 1})
	if len(bugs) < 45+320 {
		t.Fatalf("site has %d bugs, want >= 365", len(bugs))
	}
	for n, text := range bugs {
		if _, err := debbugs.Parse(strings.NewReader(text)); err != nil {
			t.Fatalf("bug %d does not parse: %v", n, err)
		}
	}
	commits, err := debbugs.ParseCVSLog(strings.NewReader(cvsLog))
	if err != nil {
		t.Fatal(err)
	}
	withBug := 0
	for _, c := range commits {
		if c.BugNumber > 0 {
			withBug++
		}
	}
	// The 39 environment-independent GNOME faults carry fix descriptions and
	// hence CVS commits; the env-dependent ones were never "fixed" in code.
	if withBug != 39 {
		t.Errorf("%d CVS commits reference bugs; want 39", withBug)
	}
}

func TestMySQLArchiveParsesAndThreads(t *testing.T) {
	archive := MySQLArchive(Config{Seed: 1})
	if len(archive) < 6 {
		t.Fatalf("archive spans %d months, want >= 6", len(archive))
	}
	var msgs []*mbox.Message
	for month, content := range archive {
		ms, err := mbox.Parse(strings.NewReader(content))
		if err != nil {
			t.Fatalf("month %s does not parse: %v", month, err)
		}
		msgs = append(msgs, ms...)
	}
	if len(msgs) < 44*2+400 {
		t.Fatalf("archive has %d messages, want >= 488", len(msgs))
	}
	threads := mbox.ThreadMessages(msgs)
	serious := mbox.FilterThreads(threads, mbox.DefaultKeywords())
	// At least the 44 canonical threads match keywords; duplicates add more.
	if len(serious) < 44 {
		t.Errorf("only %d keyword-matching threads, want >= 44", len(serious))
	}
	if len(serious) > 44*3 {
		t.Errorf("%d keyword-matching threads; noise matches keywords", len(serious))
	}
}

func TestMySQLNoiseAvoidsKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		n := mysqlNoise(rng, i)
		text := strings.ToLower(n.synopsis + " " + n.description)
		for _, k := range mbox.DefaultKeywords() {
			if strings.Contains(text, k) {
				t.Errorf("noise %d contains keyword %q: %s", i, k, text)
			}
		}
	}
}

func TestApacheSiteServesAndCrawls(t *testing.T) {
	srv := httptest.NewServer(NewApacheSite(Config{Seed: 1, NoiseReports: 30}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/bugdb/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	links := scrape.Links(string(body))
	if len(links) == 0 {
		t.Fatal("index has no links")
	}
	// Fetch the first PR page and round-trip the GNATS text through the
	// scraper and parser.
	var prLink string
	for _, l := range links {
		if strings.Contains(l, "/bugdb/pr/") {
			prLink = l
			break
		}
	}
	if prLink == "" {
		t.Fatal("no PR links on index")
	}
	resp, err = http.Get(srv.URL + prLink)
	if err != nil {
		t.Fatal(err)
	}
	prBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := scrape.Text(string(prBody))
	start := strings.Index(text, ">Number:")
	if start < 0 {
		t.Fatalf("PR page text lacks GNATS fields:\n%s", text[:200])
	}
	pr, err := gnats.Parse(strings.NewReader(text[start:]))
	if err != nil {
		t.Fatalf("scraped PR does not parse: %v", err)
	}
	if pr.Number == 0 {
		t.Error("scraped PR has no number")
	}
}

func TestGnomeSiteServesCVSLog(t *testing.T) {
	srv := httptest.NewServer(NewGnomeSite(Config{Seed: 1, NoiseReports: 10}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/cvs/log")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := scrape.Text(string(body))
	commits, err := debbugs.ParseCVSLog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) == 0 {
		t.Error("served CVS log has no commits")
	}
}

func TestMySQLSiteServesMbox(t *testing.T) {
	srv := httptest.NewServer(NewMySQLSite(Config{Seed: 1, NoiseReports: 20}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/archive/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	links := scrape.Links(string(body))
	if len(links) == 0 {
		t.Fatal("archive index has no links")
	}
	resp, err = http.Get(srv.URL + links[0])
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("mbox content type = %q", ct)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	msgs, err := mbox.Parse(strings.NewReader(string(mb)))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 {
		t.Error("served mbox is empty")
	}
}

func TestSiteNotFound(t *testing.T) {
	srv := httptest.NewServer(NewApacheSite(Config{Seed: 1, NoiseReports: -1}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/definitely/not/here")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestCorpusCanonicalsAllPresent(t *testing.T) {
	prs := ApachePRs(Config{Seed: 1, NoiseReports: -1, DuplicateRate: 0.0001})
	joined := strings.Builder{}
	for _, text := range prs {
		joined.WriteString(text)
	}
	all := joined.String()
	for _, f := range corpus.Apache() {
		if !strings.Contains(all, f.Synopsis) {
			t.Errorf("fault %s synopsis missing from the site", f.ID)
		}
	}
}

func TestGnomeAndMySQLSitesDeterministic(t *testing.T) {
	ga, cvsA := GnomeBugs(Config{Seed: 6})
	gb, cvsB := GnomeBugs(Config{Seed: 6})
	if cvsA != cvsB || len(ga) != len(gb) {
		t.Error("GNOME site not deterministic")
	}
	for n, text := range ga {
		if gb[n] != text {
			t.Fatalf("GNOME bug %d differs between runs", n)
		}
	}
	ma := MySQLArchive(Config{Seed: 6})
	mb := MySQLArchive(Config{Seed: 6})
	if len(ma) != len(mb) {
		t.Fatal("MySQL archive month sets differ")
	}
	for month, content := range ma {
		if mb[month] != content {
			t.Fatalf("MySQL month %s differs between runs", month)
		}
	}
}
