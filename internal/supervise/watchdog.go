package supervise

import (
	"fmt"
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/taxonomy"
)

// WatchdogError is the watchdog's verdict on an operation that blocked past
// the wall-clock budget: the application is hung, and the supervisor treats
// the op as failed rather than waiting forever. This is how the paper's
// "application hangs" symptom class becomes recoverable under supervision.
type WatchdogError struct {
	// Op is the operation abandoned.
	Op string
	// Timeout is the wall-clock budget that was exceeded.
	Timeout time.Duration
}

// Error describes the timeout.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("supervise: watchdog: %q still blocked after %s", e.Op, e.Timeout)
}

// panicError wraps a panic recovered from an operation so it flows through
// the ladder like any other crash symptom.
type panicError struct {
	op    string
	value any
}

// Error describes the recovered panic.
func (e *panicError) Error() string {
	return fmt.Sprintf("supervise: panic in %q: %v", e.op, e.value)
}

// runOp invokes the operation with a panic guard: a panicking op becomes a
// *panicError failure instead of taking the supervisor down.
func (s *Supervisor) runOp(op Op) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{op: op.Name, value: v}
		}
	}()
	return op.Do()
}

// execute runs one operation under the watchdog. Simulated operations return
// promptly even when they model a hang (the hang is a symptom on the error),
// so by default the watchdog charges the virtual clock for hang symptoms and
// moves on. When WallTimeout is positive, a goroutine-backed wall-clock
// watchdog additionally abandons operations that genuinely block.
func (s *Supervisor) execute(op Op) error {
	var err error
	if s.cfg.WallTimeout <= 0 {
		err = s.runOp(op)
	} else {
		done := make(chan error, 1)
		go func() { done <- s.runOp(op) }()
		select {
		case err = <-done:
		case <-time.After(s.cfg.WallTimeout):
			// The op's goroutine is abandoned; its buffered channel lets it
			// finish without leaking a blocked sender.
			s.report.mech(MechWatchdog).WatchdogTimeouts++
			werr := &WatchdogError{Op: op.Name, Timeout: s.cfg.WallTimeout}
			s.trace(Event{Kind: EventWatchdog, Op: op.Name, Mechanism: MechWatchdog, Err: werr})
			return werr
		}
	}
	if err != nil {
		s.chargeHang(op, err)
	}
	return err
}

// chargeHang advances the virtual clock by the watchdog timeout when a
// failure reports the hang symptom: in the modeled world the application sat
// unresponsive until the watchdog expired, and every time-dependent policy
// (backoff windows, breaker cooldowns, time-healing faults) should see that
// time pass.
func (s *Supervisor) chargeHang(op Op, err error) {
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Symptom != taxonomy.SymptomHang {
		return
	}
	s.clock.Sleep(s.cfg.WatchdogTimeout)
	s.report.mech(fe.Mechanism).WatchdogTimeouts++
	s.trace(Event{Kind: EventWatchdog, Op: op.Name, Mechanism: fe.Mechanism, Err: err})
}
