package faultlint

import (
	"go/ast"

	"faultstudy/internal/taxonomy"
)

// retryloop flags loops that re-invoke an environment-dependent operation on
// failure without any backoff, clock advance, or circuit breaker. The paper's
// central negative result is that environment-dependent-nontransient faults
// are "unlikely to be fixed during the short duration of a retry": a tight
// retry against a full disk or an exhausted descriptor table burns cycles
// and recovers nothing. A loop qualifies when it
//
//   - contains an environment-dependent call (simenv facility or os/net),
//   - retries on error (an `if err != nil { continue }` arm, or a loop
//     condition mentioning err), and
//   - contains no pacing call (Sleep, Advance, Wait, Backoff, Allow, Tick).
var retryloopAnalyzer = &Analyzer{
	Name:  "retryloop",
	Doc:   "retry loop over an environment-dependent operation with no backoff or breaker",
	Class: taxonomy.ClassEnvDependentNonTransient,
	Run:   runRetryloop,
}

// pacingCalls name the calls that make a retry loop acceptable: they yield,
// delay, or gate the next attempt.
var pacingCalls = map[string]bool{
	"Sleep":   true,
	"Advance": true,
	"Wait":    true,
	"Backoff": true,
	"Allow":   true,
	"Tick":    true,
	"After":   true,
	"Gosched": true,
}

// loopEnvOp reports whether the loop body contains an environment-dependent
// call, returning its description.
func (p *Package) loopEnvOp(f *ast.File, body *ast.BlockStmt) (string, bool) {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ec, isEnv := asEnvCall(call); isEnv {
			if envAcquireMethods[ec.Method] {
				found = ec.Facility + "." + ec.Method
			}
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if path, name, resolved := p.pkgQualified(f, sel); resolved {
				if funcs, known := osNetAcquireFuncs[path]; known && funcs[name] {
					found = path + "." + name
				}
			}
		}
		return true
	})
	return found, found != ""
}

// mentionsErrIdent reports whether the expression references an identifier
// named err (or ending in Err/err).
func mentionsErrIdent(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if id.Name == "err" || len(id.Name) > 3 && (id.Name[len(id.Name)-3:] == "Err" || id.Name[len(id.Name)-3:] == "err") {
				found = true
			}
		}
		return !found
	})
	return found
}

// retriesOnError reports whether the loop body continues (or falls through
// to the next iteration) under an error check.
func retriesOnError(loop *ast.ForStmt) bool {
	if mentionsErrIdent(loop.Cond) {
		return true
	}
	retry := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !mentionsErrIdent(ifStmt.Cond) {
			return true
		}
		ast.Inspect(ifStmt.Body, func(m ast.Node) bool {
			if br, isBranch := m.(*ast.BranchStmt); isBranch && br.Tok.String() == "continue" {
				retry = true
			}
			return !retry
		})
		return !retry
	})
	return retry
}

// hasPacing reports whether the loop body calls any pacing function.
func hasPacing(body *ast.BlockStmt) bool {
	paced := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && pacingCalls[callName(call)] {
			paced = true
		}
		return !paced
	})
	return paced
}

func runRetryloop(p *Pass) {
	for _, f := range p.Pkg.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Body == nil {
				return true
			}
			op, hasOp := p.Pkg.loopEnvOp(file, loop.Body)
			if !hasOp || !retriesOnError(loop) || hasPacing(loop.Body) {
				return true
			}
			p.Reportf(loop.Pos(),
				"loop retries environment-dependent %s with no backoff or breaker; a nontransient condition makes this retry storm pointless", op)
			return true
		})
	}
}
