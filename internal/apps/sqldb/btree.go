package sqldb

// btree is an in-memory B-tree keyed by Value with row-id postings, used for
// secondary indexes. Keys may repeat (non-unique index): each key holds the
// set of row ids carrying that value.
//
// The tree is the substrate for the seeded index-update-scan bug: InScan
// exposes an ordered cursor that sees keys inserted ahead of the cursor
// position during the scan — exactly the behaviour that made the original
// "update an index to a value found later in the scan" bug possible.

const btreeOrder = 16 // max children per interior node

type btreeEntry struct {
	key  Value
	rows []int // row ids with this key value
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// btree is the index root.
type btree struct {
	root *btreeNode
	size int // number of distinct keys
}

func newBTree() *btree {
	return &btree{root: &btreeNode{}}
}

// Len returns the number of distinct keys.
func (t *btree) Len() int { return t.size }

// Insert adds a (key, rowID) posting.
func (t *btree) Insert(key Value, rowID int) {
	if added := t.insert(t.root, key, rowID); added {
		t.size++
	}
	if len(t.root.entries) >= btreeOrder {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
}

func (t *btree) insert(n *btreeNode, key Value, rowID int) bool {
	idx, found := n.search(key)
	if found {
		n.entries[idx].rows = appendRow(n.entries[idx].rows, rowID)
		return false
	}
	if n.leaf() {
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[idx+1:], n.entries[idx:])
		n.entries[idx] = btreeEntry{key: key, rows: []int{rowID}}
		return true
	}
	child := n.children[idx]
	added := t.insert(child, key, rowID)
	if len(child.entries) >= btreeOrder {
		t.splitChild(n, idx)
	}
	return added
}

// splitChild splits the idx'th child of n around its median entry.
func (t *btree) splitChild(n *btreeNode, idx int) {
	child := n.children[idx]
	mid := len(child.entries) / 2
	median := child.entries[mid]

	right := &btreeNode{
		entries: append([]btreeEntry(nil), child.entries[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[idx+1:], n.entries[idx:])
	n.entries[idx] = median

	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = right
}

// search finds the position of key within the node's entries; found reports
// an exact hit.
func (n *btreeNode) search(key Value) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		switch cmp := key.Compare(n.entries[mid].key); {
		case cmp == 0:
			return mid, true
		case cmp < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// Lookup returns the row ids for an exact key, or nil.
func (t *btree) Lookup(key Value) []int {
	n := t.root
	for {
		idx, found := n.search(key)
		if found {
			return append([]int(nil), n.entries[idx].rows...)
		}
		if n.leaf() {
			return nil
		}
		n = n.children[idx]
	}
}

// Delete removes a (key, rowID) posting. Empty keys are retained as
// tombstones (the simulated ISAM does not rebalance until OPTIMIZE TABLE).
func (t *btree) Delete(key Value, rowID int) bool {
	n := t.root
	for {
		idx, found := n.search(key)
		if found {
			rows := n.entries[idx].rows
			for i, r := range rows {
				if r == rowID {
					n.entries[idx].rows = append(rows[:i], rows[i+1:]...)
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[idx]
	}
}

// Scan calls fn for each (key, rowID) posting in ascending key order,
// stopping early when fn returns false. Postings inserted by fn at key
// positions *after* the cursor are visited by the same scan — the behaviour
// the index-update-scan bug depends on.
func (t *btree) Scan(fn func(key Value, rowID int) bool) {
	t.scan(t.root, fn)
}

func (t *btree) scan(n *btreeNode, fn func(Value, int) bool) bool {
	for i := 0; i < len(n.entries); i++ {
		if !n.leaf() {
			if !t.scan(n.children[i], fn) {
				return false
			}
		}
		// Snapshot the posting list: fn may append to it.
		rows := append([]int(nil), n.entries[i].rows...)
		for _, r := range rows {
			if !fn(n.entries[i].key, r) {
				return false
			}
		}
	}
	if !n.leaf() {
		return t.scan(n.children[len(n.entries)], fn)
	}
	return true
}

// Keys returns the distinct keys in ascending order.
func (t *btree) Keys() []Value {
	var keys []Value
	last := -1
	t.Scan(func(k Value, _ int) bool {
		if last < 0 || keys[last].Compare(k) != 0 {
			keys = append(keys, k)
			last++
		}
		return true
	})
	return keys
}

func appendRow(rows []int, id int) []int {
	for _, r := range rows {
		if r == id {
			return rows
		}
	}
	return append(rows, id)
}
