package cache

import (
	"faultstudy/internal/faultinject"
	"faultstudy/internal/taxonomy"
)

// Mechanism keys for the seeded cache-daemon bugs. The catalogue mirrors the
// fault shapes the study found in the three applications — deterministic
// request-path defects, persistent resource exhaustion, and transient
// timing/network conditions — transplanted onto a cache daemon's paths.
const (
	// Environment-independent bugs.
	MechEmptyKeyDeref   = "cache/empty-key-deref"
	MechEvictOffByOne   = "cache/evict-off-by-one"
	MechTTLParseLoop    = "cache/ttl-parse-loop"
	MechStatsDivZero    = "cache/stats-div-zero"
	MechBigValueBounds  = "cache/big-value-bounds"
	MechFlushDoubleFree = "cache/flush-double-free"
	MechWrongHitCount   = "cache/wrong-hit-count"

	// Environment-dependent-nontransient bugs.
	MechAOFDiskFull    = "cache/aof-disk-full"
	MechConnFDLeak     = "cache/conn-fd-leak"
	MechShadowCopyLeak = "cache/shadow-copy-leak"

	// Environment-dependent-transient bugs.
	MechPeerDNSFlap   = "cache/peer-dns-flap"
	MechExpiryRace    = "cache/expiry-race"
	MechSlowReplFlush = "cache/slow-repl-flush"
)

// RegisterMechanisms adds the daemon's seeded-bug catalogue to a registry.
func RegisterMechanisms(r *faultinject.Registry) {
	A := taxonomy.AppCache
	for _, m := range []faultinject.Mechanism{
		{Key: MechEmptyKeyDeref, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "null item pointer dereferenced on an empty-key lookup"},
		{Key: MechEvictOffByOne, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "off-by-one in the eviction scan corrupts the LRU index at capacity"},
		{Key: MechTTLParseLoop, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "expiry parser loops forever on a negative TTL"},
		{Key: MechStatsDivZero, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "hit-ratio division by zero before the first lookup"},
		{Key: MechBigValueBounds, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "slab bounds overrun storing an oversized value"},
		{Key: MechFlushDoubleFree, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "double free of the slab list on consecutive flushes"},
		{Key: MechWrongHitCount, App: A, Trigger: taxonomy.TriggerWorkloadOnly, Description: "stats assembled from a stale counter snapshot"},
		{Key: MechAOFDiskFull, App: A, Trigger: taxonomy.TriggerDiskFull, Description: "append-only log writes fail on a full partition"},
		{Key: MechConnFDLeak, App: A, Trigger: taxonomy.TriggerFDExhaustion, Description: "per-connection descriptors never closed until the table is full"},
		{Key: MechShadowCopyLeak, App: A, Trigger: taxonomy.TriggerResourceLeak, Description: "shadow copies leak under sustained load until memory is gone"},
		{Key: MechPeerDNSFlap, App: A, Trigger: taxonomy.TriggerDNSFailure, Description: "replication-peer lookups fail while the resolver flaps"},
		{Key: MechExpiryRace, App: A, Trigger: taxonomy.TriggerRace, Description: "delete racing the expiry sweep frees an entry twice"},
		{Key: MechSlowReplFlush, App: A, Trigger: taxonomy.TriggerSlowNetwork, Description: "replication flush stalls on a saturated link"},
	} {
		r.MustRegister(m)
	}
}
