// Package sharedmut is a fixture: package-level mutable state written from
// goroutine-spawning functions, against the locked and local shapes that
// must not fire.
package sharedmut

import "sync"

var hits int

var total int

var mu sync.Mutex

// record writes shared state while spawning a reader: interleavings decide.
func record() {
	go func() { _ = hits }()
	hits++ // want EDT
}

// assign stores into shared state next to a spawn.
func assign(n int) {
	go func() { _ = total }()
	total = n // want EDT
}

// recordLocked takes the lock first: acceptable.
func recordLocked() {
	mu.Lock()
	defer mu.Unlock()
	go func() {}()
	total++
}

// shadow declares a local with the same name: not a shared write.
func shadow() {
	go func() {}()
	hits := 0
	_ = hits
}

// serial never spawns: whatever it writes is single-threaded here.
func serial() {
	hits++
}
