package experiment

import (
	"fmt"
	"strings"
	"time"

	"faultstudy/internal/classify"
	"faultstudy/internal/corpus"
	"faultstudy/internal/recovery"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// RetryAblation compares plain process pairs against Wang93-style
// progressive retry on the transient faults under a tight retry budget —
// the §6.3 claim that inducing environment change widens the window generic
// recovery can exploit.
type RetryAblation struct {
	// Budget is the per-failure retry budget used.
	Budget int
	// Plain is the process-pairs survival rate over transient faults.
	Plain stats.Proportion
	// Progressive is the progressive-retry survival rate.
	Progressive stats.Proportion
}

// RunRetryAblation runs every transient corpus fault under both strategies
// with MaxRetries=1, across trials differently seeded environments.
func RunRetryAblation(trials int, seed int64) (*RetryAblation, error) {
	mgr := recovery.NewManager(recovery.Policy{MaxRetries: 1, Takeover: 45 * time.Second})
	ab := &RetryAblation{Budget: 1}
	for _, f := range corpus.All() {
		if f.Class != taxonomy.ClassEnvDependentTransient {
			continue
		}
		for trial := 0; trial < trials; trial++ {
			trialSeed := seed + int64(trial)*1000
			for _, strat := range []recovery.Strategy{recovery.StrategyProcessPairs, recovery.StrategyProgressiveRetry} {
				app, sc, err := BuildScenario(f.Mechanism, trialSeed)
				if err != nil {
					return nil, err
				}
				out, err := mgr.Run(app, sc, strat)
				if err != nil {
					return nil, fmt.Errorf("experiment: retry ablation %s: %w", f.ID, err)
				}
				switch strat {
				case recovery.StrategyProcessPairs:
					ab.Plain.N++
					if out.Survived {
						ab.Plain.Hits++
					}
				case recovery.StrategyProgressiveRetry:
					ab.Progressive.N++
					if out.Survived {
						ab.Progressive.Hits++
					}
				}
			}
		}
	}
	return ab, nil
}

// String renders the comparison.
func (a *RetryAblation) String() string {
	return fmt.Sprintf(
		"Transient-fault survival with a %d-retry budget:\n  process pairs       %d/%d (%s)\n  progressive retry   %d/%d (%s)\n",
		a.Budget,
		a.Plain.Hits, a.Plain.N, a.Plain.Percent(),
		a.Progressive.Hits, a.Progressive.N, a.Progressive.Percent())
}

// LeakMechanisms are the resource-accumulation faults rejuvenation targets
// (§6.2): the ones whose trigger is state the application itself hoards.
func LeakMechanisms() []string {
	return []string{
		"httpd/memory-leak-hup",
		"httpd/load-resource-leak",
		"httpd/fd-exhaustion",
		"desktop/sound-socket-leak",
	}
}

// RejuvenationAblation measures whether periodic rejuvenation prevents the
// resource-accumulation failures, per rejuvenation interval.
type RejuvenationAblation struct {
	// Intervals maps each tested rejuvenation interval (in operations) to
	// the survival rate across the leak mechanisms; interval 0 is the
	// no-rejuvenation baseline.
	Intervals map[int]stats.Proportion
}

// RunRejuvenationAblation runs each leak mechanism's scenario with periodic
// rejuvenation at each interval (0 = never).
func RunRejuvenationAblation(intervals []int, seed int64) (*RejuvenationAblation, error) {
	mgr := recovery.NewManager(recovery.Policy{})
	ab := &RejuvenationAblation{Intervals: make(map[int]stats.Proportion, len(intervals))}
	for _, interval := range intervals {
		p := stats.Proportion{}
		for _, mech := range LeakMechanisms() {
			app, sc, err := BuildScenario(mech, seed)
			if err != nil {
				return nil, err
			}
			var survived bool
			if interval <= 0 {
				out, err := mgr.Run(app, sc, recovery.StrategyNone)
				if err != nil {
					return nil, fmt.Errorf("experiment: rejuvenation baseline %s: %w", mech, err)
				}
				survived = out.Survived
			} else {
				out, err := mgr.RunRejuvenating(app, sc, interval)
				if err != nil {
					return nil, fmt.Errorf("experiment: rejuvenation %s @%d: %w", mech, interval, err)
				}
				survived = out.Survived
			}
			p.N++
			if survived {
				p.Hits++
			}
		}
		ab.Intervals[interval] = p
	}
	return ab, nil
}

// String renders the sweep.
func (a *RejuvenationAblation) String() string {
	tbl := &stats.Table{Header: []string{"rejuvenation interval (ops)", "leak faults survived"}}
	keys := make([]int, 0, len(a.Intervals))
	for k := range a.Intervals {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		label := fmt.Sprint(k)
		if k <= 0 {
			label = "never"
		}
		p := a.Intervals[k]
		tbl.Add(label, fmt.Sprintf("%d/%d (%s)", p.Hits, p.N, p.Percent()))
	}
	return "Rejuvenation sweep over resource-accumulation faults:\n" + tbl.String()
}

// SensitivityPoint is one classifier configuration's result in the §5.4
// subjectivity ablation.
type SensitivityPoint struct {
	// Scale is the trigger-weight scale applied.
	Scale float64
	// Accuracy is the class agreement with the oracle.
	Accuracy float64
	// Counts is the predicted per-class tally over all 139 faults.
	Counts map[taxonomy.FaultClass]int
}

// RunClassifierSensitivity sweeps the trigger-weight scale and reports how
// the class boundaries move — quantifying the paper's admission that the
// transient/nontransient split is subjective while the environment-
// independent majority is robust.
func RunClassifierSensitivity(scales []float64) []SensitivityPoint {
	points := make([]SensitivityPoint, 0, len(scales))
	for _, scale := range scales {
		c := classify.New(classify.Options{TriggerWeightScale: scale})
		cm := classify.Evaluate(c, corpus.All())
		points = append(points, SensitivityPoint{
			Scale:    scale,
			Accuracy: cm.Accuracy(),
			Counts:   cm.PredictedCounts(),
		})
	}
	return points
}

// RenderSensitivity renders the sweep.
func RenderSensitivity(points []SensitivityPoint) string {
	tbl := &stats.Table{Header: []string{"weight scale", "accuracy", "EI", "EDN", "EDT"}}
	for _, p := range points {
		tbl.Add(
			fmt.Sprintf("%.2f", p.Scale),
			fmt.Sprintf("%.3f", p.Accuracy),
			fmt.Sprint(p.Counts[taxonomy.ClassEnvIndependent]),
			fmt.Sprint(p.Counts[taxonomy.ClassEnvDependentNonTransient]),
			fmt.Sprint(p.Counts[taxonomy.ClassEnvDependentTransient]))
	}
	return "Classifier sensitivity to trigger-cue weighting:\n" + tbl.String()
}

// ReclaimAblation compares generic recovery with and without operating-system
// resource reclamation of the failed primary — the paper's §5.1/§6
// observation that "the recovery system is likely to kill all processes
// associated with the application" is itself load-bearing for several
// transients.
type ReclaimAblation struct {
	// WithReclaim is transient-fault survival when the failed primary's
	// resources are reclaimed.
	WithReclaim stats.Proportion
	// WithoutReclaim is survival when they are left in place.
	WithoutReclaim stats.Proportion
}

// RunReclaimAblation runs every transient corpus fault under process pairs,
// with reclamation on and off.
func RunReclaimAblation(seed int64) (*ReclaimAblation, error) {
	ab := &ReclaimAblation{}
	for _, withReclaim := range []bool{true, false} {
		mgr := recovery.NewManager(recovery.Policy{SkipReclaim: !withReclaim})
		for _, f := range corpus.All() {
			if f.Class != taxonomy.ClassEnvDependentTransient {
				continue
			}
			app, sc, err := BuildScenario(f.Mechanism, seed)
			if err != nil {
				return nil, err
			}
			out, err := mgr.Run(app, sc, recovery.StrategyProcessPairs)
			if err != nil {
				return nil, fmt.Errorf("experiment: reclaim ablation %s: %w", f.ID, err)
			}
			if withReclaim {
				ab.WithReclaim.N++
				if out.Survived {
					ab.WithReclaim.Hits++
				}
			} else {
				ab.WithoutReclaim.N++
				if out.Survived {
					ab.WithoutReclaim.Hits++
				}
			}
		}
	}
	return ab, nil
}

// String renders the comparison.
func (a *ReclaimAblation) String() string {
	return fmt.Sprintf(
		"Transient-fault survival under process pairs:\n  with resource reclamation      %d/%d (%s)\n  without resource reclamation   %d/%d (%s)\n",
		a.WithReclaim.Hits, a.WithReclaim.N, a.WithReclaim.Percent(),
		a.WithoutReclaim.Hits, a.WithoutReclaim.N, a.WithoutReclaim.Percent())
}

// MitigationAblation measures the §6.2 resource governor: nontransient-fault
// survival under process pairs with and without automatic resource growth.
type MitigationAblation struct {
	// Plain is EDN survival under unmodified process pairs.
	Plain stats.Proportion
	// Governed is EDN survival with the resource governor enabled.
	Governed stats.Proportion
	// Rescued lists the fault IDs the governor saved.
	Rescued []string
}

// RunMitigationAblation runs every nontransient corpus fault under process
// pairs, with the governor off and on.
func RunMitigationAblation(seed int64) (*MitigationAblation, error) {
	ab := &MitigationAblation{}
	for _, governed := range []bool{false, true} {
		mgr := recovery.NewManager(recovery.Policy{GrowResources: governed})
		for _, f := range corpus.All() {
			if f.Class != taxonomy.ClassEnvDependentNonTransient {
				continue
			}
			app, sc, err := BuildScenario(f.Mechanism, seed)
			if err != nil {
				return nil, err
			}
			out, err := mgr.Run(app, sc, recovery.StrategyProcessPairs)
			if err != nil {
				return nil, fmt.Errorf("experiment: mitigation ablation %s: %w", f.ID, err)
			}
			if governed {
				ab.Governed.N++
				if out.Survived {
					ab.Governed.Hits++
					ab.Rescued = append(ab.Rescued, f.ID)
				}
			} else {
				ab.Plain.N++
				if out.Survived {
					ab.Plain.Hits++
				}
			}
		}
	}
	return ab, nil
}

// String renders the comparison.
func (a *MitigationAblation) String() string {
	out := fmt.Sprintf(
		"Nontransient-fault survival under process pairs:\n  without resource governor   %d/%d (%s)\n  with resource governor      %d/%d (%s)\n",
		a.Plain.Hits, a.Plain.N, a.Plain.Percent(),
		a.Governed.Hits, a.Governed.N, a.Governed.Percent())
	if len(a.Rescued) > 0 {
		out += "  rescued: " + strings.Join(a.Rescued, ", ") + "\n"
	}
	return out
}
