package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span kinds recorded on episodes. The vocabulary is closed and documented
// in OBSERVABILITY.md; ReadJSONL accepts unknown kinds for forward
// compatibility but the writers only emit these.
const (
	// SpanActivation is the initial observed failure that opens an episode.
	SpanActivation = "activation"
	// SpanFailure is a repeated failure inside an open episode.
	SpanFailure = "failure"
	// SpanBackoff is a backoff sleep before a recovery attempt; its Start/End
	// bracket the virtual time slept.
	SpanBackoff = "backoff"
	// SpanAction is one ladder rung's (or one-shot strategy's) recovery
	// action being applied.
	SpanAction = "action"
	// SpanRetry is a post-recovery re-execution of the failed operation;
	// Outcome says whether it passed.
	SpanRetry = "retry"
	// SpanCheckpoint is an application state snapshot being taken.
	SpanCheckpoint = "checkpoint"
	// SpanRestore is application state being restored from a snapshot.
	SpanRestore = "restore"
	// SpanDecision is a supervisor decision that changes the episode's course
	// (escalation, breaker open, crash-loop trip, degraded entry/exit, shed).
	SpanDecision = "decision"
	// SpanWatchdog is the watchdog charging a hang or abandoning a blocked
	// operation.
	SpanWatchdog = "watchdog"
)

// Episode outcomes. An episode runs from the first observed failure of an
// operation to the supervisor's (or one-shot strategy's) final decision
// about it.
const (
	// OutcomeRecovered means the operation was eventually served.
	OutcomeRecovered = "recovered"
	// OutcomeDegraded means the operation was served, but only after the
	// service entered degraded mode.
	OutcomeDegraded = "served-degraded"
	// OutcomeShed means the operation was deliberately shed in degraded mode
	// — not served, but not silently lost either.
	OutcomeShed = "shed"
	// OutcomeLost means the operation was abandoned.
	OutcomeLost = "lost"
	// OutcomeFastFail means an open circuit breaker declined the episode
	// without spending any recovery attempt.
	OutcomeFastFail = "fast-fail"
)

// Span is one timed interval (or instant, when Start == End) inside an
// episode. Times are virtual monotonic microseconds — see Episode.
type Span struct {
	// Kind is one of the Span* constants.
	Kind string `json:"kind"`
	// Rung names the escalation-ladder rung or recovery strategy in effect,
	// when one applies.
	Rung string `json:"rung,omitempty"`
	// Attempt is the episode-wide recovery attempt number, when one applies.
	Attempt int `json:"attempt,omitempty"`
	// StartUS and EndUS are the span's bounds in virtual microseconds.
	StartUS int64 `json:"start_us"`
	// EndUS is the end bound; instant spans have EndUS == StartUS.
	EndUS int64 `json:"end_us"`
	// Outcome qualifies the span ("ok"/"fail" for retries, the decision name
	// for decision spans).
	Outcome string `json:"outcome,omitempty"`
	// Component names the component a real microreboot targeted (action spans
	// on the microreboot rung only; empty for process-level actions).
	Component string `json:"component,omitempty"`
	// Note carries the error text or other human-readable detail.
	Note string `json:"note,omitempty"`
}

// Episode is one fault-handling episode: everything that happened to one
// failing operation between its first observed failure and the final verdict.
// All times are time.Duration readings of the injectable virtual clock,
// serialized as integer microseconds so the JSONL is byte-stable.
type Episode struct {
	// ID numbers episodes within one recorder, starting at 1.
	ID int `json:"episode"`
	// App is the application under test (apache, gnome, mysql).
	App string `json:"app,omitempty"`
	// FaultID is the corpus fault being reproduced, when known.
	FaultID string `json:"fault_id,omitempty"`
	// Class is the fault's environment-dependence class (EI, EDN, EDT) when
	// known, or "?" for pseudo-mechanisms the supervisor itself raises.
	Class string `json:"class,omitempty"`
	// Mechanism is the seeded-bug mechanism key that (last) fired.
	Mechanism string `json:"mechanism,omitempty"`
	// Op is the workload operation the episode is about.
	Op string `json:"op,omitempty"`
	// StartUS and EndUS bound the episode in virtual microseconds. EndUS is
	// stamped at decision time — the clock reading at which the final verdict
	// was reached, including any backoff slept on the way there.
	StartUS int64 `json:"start_us"`
	// EndUS is the decision-time end bound.
	EndUS int64 `json:"end_us"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Retries is how many recovery attempts the episode spent.
	Retries int `json:"retries"`
	// FinalRung is the ladder rung (or strategy) in effect at the verdict.
	FinalRung string `json:"final_rung,omitempty"`
	// PlannedRung is the statically predicted minimal recovery rung for the
	// episode's mechanism, when a recovery-scope analysis supplied one (the
	// SCOPE experiment); empty elsewhere.
	PlannedRung string `json:"planned_rung,omitempty"`
	// Spans is the episode's timeline, in record order.
	Spans []Span `json:"spans,omitempty"`
}

// Duration returns the episode's span on the virtual clock — the time to
// repair (or to give up).
func (e *Episode) Duration() time.Duration {
	return time.Duration(e.EndUS-e.StartUS) * time.Microsecond
}

// US converts a virtual-clock reading to the integer microseconds used by
// the JSONL schema.
func US(d time.Duration) int64 { return int64(d / time.Microsecond) }

// Recorder accumulates episodes. It is safe for use from one goroutine per
// instrumented run (matching the supervisor's own concurrency contract);
// the mutex exists so a CLI can snapshot while a run is in flight. A nil
// *Recorder is legal at every call site and records nothing.
type Recorder struct {
	mu       sync.Mutex
	ctx      Context
	episodes []*Episode
	open     *Episode
	nextID   int
}

// Context is the identity key attached to every episode a recorder opens:
// which application, which corpus fault, which class. Set it before each
// instrumented run; mechanism comes from the events themselves.
type Context struct {
	// App is the application under test.
	App string
	// FaultID is the corpus fault being reproduced, when known.
	FaultID string
	// Class is the fault's EI/EDN/EDT class, when known.
	Class string
	// ClassFor resolves a mechanism key to a class short name when Class is
	// empty — the soak path, where one run hosts several mechanisms.
	ClassFor func(mechanism string) string
	// PlannedRung, when set, stamps every opened episode with the statically
	// predicted minimal recovery rung (the SCOPE experiment's prediction).
	PlannedRung string
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetContext replaces the identity attached to subsequently opened episodes.
// Nil-safe.
func (r *Recorder) SetContext(c Context) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ctx = c
	r.mu.Unlock()
}

// Begin opens an episode for op at the given virtual time, closing any
// episode left open (which should not happen with well-formed event streams;
// the stray episode keeps its last-known state and outcome "lost").
// Nil-safe.
func (r *Recorder) Begin(at time.Duration, op, mechanism string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open != nil {
		r.closeLocked(at, OutcomeLost, "")
	}
	r.nextID++
	e := &Episode{
		ID:        r.nextID,
		App:       r.ctx.App,
		FaultID:   r.ctx.FaultID,
		Class:     r.classFor(mechanism),
		Mechanism: mechanism,
		Op:        op,
		StartUS:   US(at),
		EndUS:     US(at),

		PlannedRung: r.ctx.PlannedRung,
	}
	r.open = e
}

// classFor resolves the class label for a mechanism under the current
// context. Callers hold the lock.
func (r *Recorder) classFor(mechanism string) string {
	if r.ctx.Class != "" {
		return r.ctx.Class
	}
	if r.ctx.ClassFor != nil {
		if c := r.ctx.ClassFor(mechanism); c != "" {
			return c
		}
	}
	return "?"
}

// Active reports whether an episode is open. Nil-safe.
func (r *Recorder) Active() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open != nil
}

// Note appends an instant span to the open episode; without an open episode
// the span is dropped — between-episode activity (steady-state checkpoints)
// is counted in the metrics registry instead, keeping traces episode-shaped.
// Nil-safe.
func (r *Recorder) Note(at time.Duration, sp Span) {
	if r == nil {
		return
	}
	sp.StartUS = US(at)
	sp.EndUS = sp.StartUS
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open == nil {
		return
	}
	r.appendLocked(sp)
}

// Interval appends a timed span [from, to] to the open episode. Nil-safe.
func (r *Recorder) Interval(from, to time.Duration, sp Span) {
	if r == nil {
		return
	}
	sp.StartUS = US(from)
	sp.EndUS = US(to)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open == nil {
		return
	}
	r.appendLocked(sp)
}

// appendLocked attaches a span and keeps the open episode's running fields
// (mechanism drift, retry count, final rung, end bound) current. Callers
// hold the lock.
func (r *Recorder) appendLocked(sp Span) {
	e := r.open
	e.Spans = append(e.Spans, sp)
	if sp.Kind == SpanRetry {
		e.Retries++
	}
	if sp.Rung != "" {
		e.FinalRung = sp.Rung
	}
	if sp.EndUS > e.EndUS {
		e.EndUS = sp.EndUS
	}
}

// Drift re-keys the open episode to a new mechanism — the supervisor saw the
// failure change identity mid-episode (e.g. a restore running into a full
// disk). Nil-safe.
func (r *Recorder) Drift(mechanism string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open == nil || mechanism == "" || r.open.Mechanism == mechanism {
		return
	}
	r.open.Mechanism = mechanism
	r.open.Class = r.classFor(mechanism)
}

// End closes the open episode with the outcome, stamping its end at the
// given decision-time clock reading, and returns it (so callers can feed the
// finished episode into metrics). Without an open episode it is a no-op
// returning nil. Nil-safe.
func (r *Recorder) End(at time.Duration, outcome, finalRung string) *Episode {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closeLocked(at, outcome, finalRung)
}

// Flush closes any episode still open as lost — the run ended before the
// event stream reached a verdict (a no-recovery strategy stops at the first
// failure). Returns the flushed episode, or nil when none was open. Nil-safe.
func (r *Recorder) Flush(at time.Duration) *Episode {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open == nil {
		return nil
	}
	return r.closeLocked(at, OutcomeLost, "")
}

// closeLocked finalizes and returns the open episode. Callers hold the lock.
func (r *Recorder) closeLocked(at time.Duration, outcome, finalRung string) *Episode {
	e := r.open
	if e == nil {
		return nil
	}
	if us := US(at); us > e.EndUS {
		e.EndUS = us
	}
	e.Outcome = outcome
	if finalRung != "" {
		e.FinalRung = finalRung
	}
	r.episodes = append(r.episodes, e)
	r.open = nil
	return e
}

// Episodes returns the closed episodes in record order. The slice is shared;
// treat it as read-only. Nil-safe (returns nil).
func (r *Recorder) Episodes() []*Episode {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.episodes
}

// WriteJSONL renders episodes one JSON object per line — the trace artifact
// schema documented in OBSERVABILITY.md. Encoding is deterministic: struct
// field order, integer microsecond times, no maps.
func WriteJSONL(w io.Writer, episodes []*Episode) error {
	for _, e := range episodes {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("obsv: marshal episode %d: %w", e.ID, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL trace back into episodes, validating the schema:
// every line must be a JSON object with a positive episode number, an
// outcome, and end ≥ start (episode and spans). The round-trip property
// WriteJSONL→ReadJSONL→WriteJSONL is byte-identical.
func ReadJSONL(rd io.Reader) ([]*Episode, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []*Episode
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Episode
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("obsv: trace line %d: %w", line, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("obsv: trace line %d: %w", line, err)
		}
		out = append(out, &e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: trace: %w", err)
	}
	return out, nil
}

// Validate checks the episode against the documented schema invariants.
func (e *Episode) Validate() error {
	if e.ID <= 0 {
		return fmt.Errorf("episode number %d is not positive", e.ID)
	}
	if e.Outcome == "" {
		return fmt.Errorf("episode %d has no outcome", e.ID)
	}
	switch e.Outcome {
	case OutcomeRecovered, OutcomeDegraded, OutcomeShed, OutcomeLost, OutcomeFastFail:
	default:
		return fmt.Errorf("episode %d has unknown outcome %q", e.ID, e.Outcome)
	}
	if e.EndUS < e.StartUS {
		return fmt.Errorf("episode %d ends (%d) before it starts (%d)", e.ID, e.EndUS, e.StartUS)
	}
	for i, sp := range e.Spans {
		if sp.Kind == "" {
			return fmt.Errorf("episode %d span %d has no kind", e.ID, i)
		}
		if sp.EndUS < sp.StartUS {
			return fmt.Errorf("episode %d span %d ends before it starts", e.ID, i)
		}
	}
	return nil
}
