package experiment

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faultstudy/internal/taxonomy"
)

func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("ModuleRoot() = %s, which has no go.mod: %v", root, err)
	}
}

func TestLintValidation(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunLint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Apps) != 3 {
		t.Fatalf("apps scored = %d, want 3", len(report.Apps))
	}
	for _, la := range report.Apps {
		if la.Sites == 0 {
			t.Errorf("%s: no attributed raise sites", la.App)
		}
		if tp := la.TruePositives(); tp < 1 {
			t.Errorf("%s: true positives = %d, want >= 1", la.App, tp)
		}
	}
	// The static classifier should agree with the seeded ground truth on
	// most mechanisms in every class.
	for _, s := range report.Total {
		if s.TP == 0 {
			t.Errorf("class %s: no true positives at all", s.Class)
		}
		if p := s.Precision(); p < 0.9 {
			t.Errorf("class %s: precision %.2f, want >= 0.90", s.Class, p)
		}
		if r := s.Recall(); r < 0.6 {
			t.Errorf("class %s: recall %.2f, want >= 0.60", s.Class, r)
		}
	}
	// The headline: the predicted EI share must track the seeded corpus
	// share (the analogue of reproducing the paper's Table 2 split).
	if d := math.Abs(report.PredictedEI.Value() - report.TruthEI.Value()); d > 0.10 {
		t.Errorf("predicted EI share %.2f vs truth %.2f: drift %.2f > 0.10",
			report.PredictedEI.Value(), report.TruthEI.Value(), d)
	}
	out := report.String()
	for _, want := range []string{"precision", "recall", "apache", "gnome", "mysql", "EI share"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestLintPredictionsDeterministic(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunLint(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLint(root)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two RunLint passes rendered differently")
	}
	for i, la := range a.Apps {
		lb := b.Apps[i]
		for mech, class := range la.Predicted {
			if lb.Predicted[mech] != class {
				t.Errorf("%s/%s: predicted %s then %s", la.App, mech, class, lb.Predicted[mech])
			}
		}
	}
}

func TestResolvePredicted(t *testing.T) {
	ei := taxonomy.ClassEnvIndependent
	edn := taxonomy.ClassEnvDependentNonTransient
	edt := taxonomy.ClassEnvDependentTransient
	cases := []struct {
		votes map[taxonomy.FaultClass]int
		want  taxonomy.FaultClass
	}{
		{map[taxonomy.FaultClass]int{ei: 3}, ei},
		{map[taxonomy.FaultClass]int{ei: 2, edn: 1}, edn},
		{map[taxonomy.FaultClass]int{edn: 1, edt: 2}, edt},
		{map[taxonomy.FaultClass]int{edn: 1, edt: 1}, edn}, // tie: persistent prior
		{map[taxonomy.FaultClass]int{}, taxonomy.ClassUnknown},
	}
	for _, c := range cases {
		if got := resolvePredicted(c.votes); got != c.want {
			t.Errorf("resolvePredicted(%v) = %s, want %s", c.votes, got, c.want)
		}
	}
}
