package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"faultstudy/internal/apps/cache"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/component"
	"faultstudy/internal/durable"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/warehouse"
)

// Metric names of the DURABLE experiment; the catalogue entry lives in
// OBSERVABILITY.md.
const (
	// MetricDurableEpisodes counts closed DURABLE fault episodes by outcome.
	MetricDurableEpisodes = "faultstudy_durable_episodes_total"
	// MetricDurableAckedLost counts acknowledged records silently missing
	// after recovery — the loss class the experiment gates at zero.
	MetricDurableAckedLost = "faultstudy_durable_acked_lost_total"
	// MetricDurableDetectedLoss counts acknowledged records whose loss the
	// recovery path detected and reported (the torn-write device lie).
	MetricDurableDetectedLoss = "faultstudy_durable_detected_loss_total"
	// MetricDurableRepairs counts tail truncations recovery performed over
	// torn or corrupt log bytes.
	MetricDurableRepairs = "faultstudy_durable_repairs_total"
	// MetricDurableMTTRSeconds is the per-episode repair-time histogram
	// (fault detection to store recovered and writable, virtual clock).
	MetricDurableMTTRSeconds = "faultstudy_durable_mttr_seconds"
)

// The experiment's fixed workload and virtual-time model.
const (
	// durableOwner and durableDir root the store every non-app arm drives.
	durableOwner = "durablelab"
	durableDir   = "/var/durablelab"
	// durableCrashOps is the workload length of the crash-matrix arms; every
	// write boundary it produces (including the checkpoint writes forced by
	// durableCrashCkptEvery) hosts one crash episode.
	durableCrashOps       = 18
	durableCrashCkptEvery = 6
	// durableOps is the workload length of the environmental-fault arms.
	durableOps = 24
	// durableDetect is the failure-detection latency charged to every
	// episode, and durableRestart the cost of replacing the process before
	// recovery (durable.Open) runs.
	durableDetect  = 100 * time.Millisecond
	durableRestart = 500 * time.Millisecond
)

// DurableConfig tunes the DURABLE experiment.
type DurableConfig struct {
	// Seed drives every arm's environment stream.
	Seed int64
	// Telemetry, when non-nil, receives per-episode traces and the durable
	// metric family, derived from the finished arms in fixed arm order — so
	// resumed and uninterrupted runs emit byte-identical telemetry.
	Telemetry *Telemetry
	// Workers bounds the worker pool the arms are sharded over (0 or
	// negative means one per processor; 1 is serial). Reports and telemetry
	// are byte-identical at every worker count.
	Workers int
	// Warehouse, when non-empty, is the resumable result store: every
	// finished arm is durably recorded there before the sweep moves on.
	Warehouse string
	// Resume preloads finished arms from the warehouse instead of rerunning
	// them; with an empty warehouse it is a full run.
	Resume bool
	// HaltAfter, when positive, runs only that many missing arms (serially)
	// and then halts — the harness-kill half of the resume-equivalence
	// check.
	HaltAfter int
}

// DurableEpisode is one fault-recovery episode of an arm, kept in the arm
// record so traces and histograms can be re-derived from warehoused arms.
type DurableEpisode struct {
	// Op names the failing operation (e.g. "crash@007").
	Op string
	// Note is the activation detail recorded on the episode.
	Note string
	// Start and End bound the episode on the arm's virtual clock.
	Start, End time.Duration
	// Recovered reports whether the store came back consistent and writable.
	Recovered bool
}

// DurableArm is one fault-injection cell of the DURABLE experiment.
type DurableArm struct {
	// Name is the arm's fault condition.
	Name string
	// Class buckets the condition: "none", "crash", "EDN", "EDT", or "app".
	Class string
	// Boundaries is the number of write boundaries the crash matrix
	// enumerated (crash arms only).
	Boundaries int
	// Crashes is the number of injected process crashes.
	Crashes int
	// Acked is the total number of acknowledged records across episodes.
	Acked int
	// Recovered is how many acknowledged records were present after
	// recovery.
	Recovered int
	// SilentLoss counts acknowledged records missing after recovery without
	// the recovery path reporting damage — gated at zero everywhere.
	SilentLoss int
	// DetectedLoss counts acknowledged records lost to detected, reported
	// damage — allowed only in the torn-write arm, where the device lies.
	DetectedLoss int
	// UndetectedCorruption counts recoveries that returned a state different
	// from any acknowledged prefix without reporting damage — gated at zero.
	UndetectedCorruption int
	// Repairs counts tail truncations performed over damaged log bytes.
	Repairs int
	// Episodes and RecoveredEpisodes count fault episodes and those whose
	// store came back consistent and writable.
	Episodes, RecoveredEpisodes int
	// MTTRTotal accumulates repair time over recovered episodes.
	MTTRTotal time.Duration
	// Eps holds the per-episode records telemetry is derived from.
	Eps []DurableEpisode
}

// MTTR is the arm's mean time to repair over recovered episodes (0 when
// nothing recovered).
func (a DurableArm) MTTR() time.Duration {
	if a.RecoveredEpisodes == 0 {
		return 0
	}
	return a.MTTRTotal / time.Duration(a.RecoveredEpisodes)
}

// DurableReport is the assembled experiment, arms in fixed order.
type DurableReport struct {
	// Seed is the experiment's root seed.
	Seed int64
	// Arms holds every fault-condition cell, in durableArmNames order.
	Arms []DurableArm
	// Halted is true when HaltAfter stopped the sweep early; the report then
	// carries no arms and gates nothing — resume to finish.
	Halted bool
	// Done and Total count warehoused arms at the halt (Halted only).
	Done, Total int
}

// durableArmNames is the fixed arm axis, in report order.
func durableArmNames() []string {
	return []string{
		"none",
		"crash-drop",
		"crash-tear",
		"disk-full",
		"fd-exhaustion",
		"file-limit",
		"short-write",
		"sync-fail",
		"torn-write",
		"crash-before-rename",
		"app-sqldb-restore",
		"app-cache-reboot",
	}
}

// durableArmKey is an arm's record key in the warehouse.
func durableArmKey(idx int, name string) string {
	return fmt.Sprintf("arm/%02d-%s", idx, name)
}

// RunDurable runs the DURABLE experiment: a kill-at-every-write-boundary
// crash matrix and the environmental fault catalogue (disk-full, descriptor
// exhaustion, file-size limit, short write, sync failure, torn write,
// crash-before-rename) against the WAL + checkpoint store, plus restore and
// persist-reboot probes of the two store-backed applications. Every episode
// crashes or wounds the store, recovers it through durable.Open, and
// verifies the recovered state against the acknowledged-prefix model —
// scoring silent loss (gated at zero), detected loss, undetected corruption
// (gated at zero), repairs, and MTTR.
//
// Arms are independent shards: each derives its seed from (Seed, arm index)
// alone, and traces and metrics are derived from the finished arm records in
// fixed arm order — so reports and telemetry are byte-identical at every
// worker count, and identical whether the sweep ran uninterrupted or was
// killed and resumed from the warehouse.
func RunDurable(cfg DurableConfig) (*DurableReport, error) {
	names := durableArmNames()
	var wh *warehouse.Warehouse
	if cfg.Warehouse != "" {
		if !cfg.Resume {
			// A fresh sweep starts from a fresh warehouse; stale arms from a
			// previous run must not leak into this one.
			if err := os.Remove(cfg.Warehouse); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("experiment: durable: reset warehouse: %w", err)
			}
		}
		var err error
		wh, _, err = warehouse.Open(cfg.Warehouse)
		if err != nil {
			return nil, fmt.Errorf("experiment: durable: %w", err)
		}
		defer wh.Close()
	}
	done := make(map[int]DurableArm)
	if wh != nil && cfg.Resume {
		for i, name := range names {
			raw, ok := wh.Get(durableArmKey(i, name))
			if !ok {
				continue
			}
			var arm DurableArm
			if err := json.Unmarshal(raw, &arm); err != nil {
				return nil, fmt.Errorf("experiment: durable: warehouse arm %s: %w", name, err)
			}
			done[i] = arm
		}
	}
	finish := func(i int) (DurableArm, error) {
		arm, err := runDurableArm(names[i], parallel.Derive(cfg.Seed, uint64(i)))
		if err != nil {
			return arm, err
		}
		if wh != nil {
			raw, err := json.Marshal(arm)
			if err != nil {
				return arm, fmt.Errorf("experiment: durable: encode arm %s: %w", arm.Name, err)
			}
			if err := wh.Put(durableArmKey(i, arm.Name), raw); err != nil {
				return arm, fmt.Errorf("experiment: durable: %w", err)
			}
		}
		return arm, nil
	}
	if cfg.HaltAfter > 0 {
		ran := 0
		for i := range names {
			if _, ok := done[i]; ok {
				continue
			}
			if ran == cfg.HaltAfter {
				break
			}
			arm, err := finish(i)
			if err != nil {
				return nil, err
			}
			done[i] = arm
			ran++
		}
		return &DurableReport{Seed: cfg.Seed, Halted: true, Done: len(done), Total: len(names)}, nil
	}
	arms, err := parallel.MapOrdered(cfg.Workers, len(names), func(i int) (DurableArm, error) {
		if arm, ok := done[i]; ok {
			return arm, nil
		}
		return finish(i)
	})
	if err != nil {
		return nil, err
	}
	rep := &DurableReport{Seed: cfg.Seed, Arms: arms}
	deriveDurableTelemetry(cfg.Telemetry, arms)
	return rep, nil
}

// deriveDurableTelemetry replays the finished arm records into the
// experiment's telemetry, in fixed arm order. Deriving after the sweep —
// rather than recording during it — is what makes traces and metrics
// invariant under worker count and resume.
func deriveDurableTelemetry(tel *Telemetry, arms []DurableArm) {
	if tel == nil {
		return
	}
	obsv.RegisterBridgeHelp(tel.Registry)
	tel.Registry.Help(MetricDurableEpisodes, "Durable-store fault episodes, by arm, class and outcome.")
	tel.Registry.Help(MetricDurableAckedLost, "Acknowledged records silently missing after recovery.")
	tel.Registry.Help(MetricDurableDetectedLoss, "Acknowledged records lost to detected, reported damage.")
	tel.Registry.Help(MetricDurableRepairs, "Tail truncations performed over damaged log bytes.")
	tel.Registry.Help(MetricDurableMTTRSeconds, "Per-episode store repair time: detection to recovered and writable.")
	for _, a := range arms {
		mech := "durable/" + a.Name
		tel.Recorder.SetContext(obsv.Context{App: "durable", FaultID: mech, Class: a.Class})
		labels := obsv.L("arm", a.Name, "class", a.Class)
		for _, ep := range a.Eps {
			tel.Recorder.Begin(ep.Start, ep.Op, mech)
			tel.Recorder.Note(ep.Start, obsv.Span{Kind: obsv.SpanActivation, Note: ep.Note})
			outcome := obsv.OutcomeLost
			if ep.Recovered {
				outcome = obsv.OutcomeRecovered
				tel.Registry.Histogram(MetricDurableMTTRSeconds, obsv.LatencyBuckets, labels...).
					ObserveDuration(ep.End - ep.Start)
			}
			tel.Recorder.Note(ep.End, obsv.Span{Kind: obsv.SpanAction, Rung: "reopen", Attempt: 1, Outcome: outcome})
			tel.Recorder.End(ep.End, outcome, "reopen")
			tel.Registry.Counter(MetricDurableEpisodes,
				obsv.L("arm", a.Name, "class", a.Class, "outcome", outcome)...).Inc()
		}
		if a.SilentLoss > 0 {
			tel.Registry.Counter(MetricDurableAckedLost, labels...).Add(float64(a.SilentLoss))
		}
		if a.DetectedLoss > 0 {
			tel.Registry.Counter(MetricDurableDetectedLoss, labels...).Add(float64(a.DetectedLoss))
		}
		if a.Repairs > 0 {
			tel.Registry.Counter(MetricDurableRepairs, labels...).Add(float64(a.Repairs))
		}
	}
}

// durableWorkload builds the deterministic record-batch sequence every store
// arm applies: a mix of single puts, overwrite-heavy keys, multi-op batches,
// and deletes, sized so checkpoints, torn tails, and rollbacks all have
// something to bite on. Batch i carries sequence number i+1.
func durableWorkload(n int) [][]durable.Op {
	batches := make([][]durable.Op, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%02d", i%7)
		val := []byte(fmt.Sprintf("v%04d-%s", i, strings.Repeat("x", i%13)))
		switch {
		case i%11 == 10:
			batches = append(batches, []durable.Op{{Kind: durable.OpDelete, Key: key}})
		case i%5 == 4:
			batches = append(batches, []durable.Op{
				{Kind: durable.OpPut, Key: key, Value: val},
				{Kind: durable.OpPut, Key: "pair-" + key, Value: val},
			})
		default:
			batches = append(batches, []durable.Op{{Kind: durable.OpPut, Key: key, Value: val}})
		}
	}
	return batches
}

// durableModelAt replays the first seq batches into a fresh map — the state
// an honest store must hold after acknowledging record seq.
func durableModelAt(batches [][]durable.Op, seq uint64) map[string][]byte {
	state := make(map[string][]byte)
	for i := uint64(0); i < seq && i < uint64(len(batches)); i++ {
		for _, op := range batches[i] {
			switch op.Kind {
			case durable.OpPut:
				state[op.Key] = op.Value
			case durable.OpDelete:
				delete(state, op.Key)
			case durable.OpClear:
				state = make(map[string][]byte)
			}
		}
	}
	return state
}

// durableStateEqual reports whether the store's state matches the model.
func durableStateEqual(st *durable.Store, want map[string][]byte) bool {
	if st.Len() != len(want) {
		return false
	}
	for k, v := range want {
		got, ok := st.Get(k)
		if !ok || string(got) != string(v) {
			return false
		}
	}
	return true
}

// runDurableArm dispatches one arm by name. Everything it does is a pure
// function of (name, seed); it shares no state with other arms.
func runDurableArm(name string, seed int64) (DurableArm, error) {
	switch name {
	case "none":
		return runDurableBaselineArm(name, seed)
	case "crash-drop":
		return runDurableCrashArm(name, seed, 0)
	case "crash-tear":
		return runDurableCrashArm(name, seed, 3)
	case "disk-full":
		return runDurableDiskFullArm(name, seed)
	case "fd-exhaustion":
		return runDurableFDArm(name, seed)
	case "file-limit":
		return runDurableFileLimitArm(name, seed)
	case "short-write":
		return runDurableWriteFaultArm(name, seed, "short")
	case "sync-fail":
		return runDurableWriteFaultArm(name, seed, "sync")
	case "torn-write":
		return runDurableTornArm(name, seed)
	case "crash-before-rename":
		return runDurableRenameArm(name, seed)
	case "app-sqldb-restore":
		return runDurableSQLArm(name, seed)
	case "app-cache-reboot":
		return runDurableCacheArm(name, seed)
	default:
		return DurableArm{Name: name}, fmt.Errorf("experiment: durable: unknown arm %q", name)
	}
}

// verifyReopen closes the damaged store handle, replaces the process on the
// virtual clock, recovers through durable.Open, and scores the episode: the
// recovered sequence number must cover every acknowledged record, the state
// must match the acknowledged-prefix model at that sequence, and the store
// must accept a fresh append. maxSeq bounds the recovered head (acked plus
// any in-flight record the crash may have preserved).
func verifyReopen(arm *DurableArm, env *simenv.Env, old *durable.Store, opts durable.Options,
	batches [][]durable.Op, acked int, maxSeq uint64, op, note string) {
	start := env.Monotonic()
	env.Advance(durableDetect)
	env.Disk().ClearCrash()
	old.Close()
	env.Advance(durableRestart)
	ep := DurableEpisode{Op: op, Note: note, Start: start}
	arm.Episodes++
	arm.Acked += acked
	st, info, err := durable.Open(env, durableOwner, durableDir, opts)
	if err != nil {
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		return
	}
	defer st.Close()
	if info.TruncatedBytes > 0 {
		arm.Repairs++
	}
	damage := info.TornTail || info.Corrupt
	seq := st.Seq()
	recovered := int(seq)
	if recovered > acked {
		recovered = acked
	}
	arm.Recovered += recovered
	switch {
	case seq < uint64(acked):
		// Acknowledged records are missing. Reported damage makes it
		// detected loss (tolerable only where the device lied); silence is
		// the loss class the experiment exists to rule out.
		if damage {
			arm.DetectedLoss += acked - int(seq)
		} else {
			arm.SilentLoss += acked - int(seq)
		}
		if !durableStateEqual(st, durableModelAt(batches, seq)) {
			arm.UndetectedCorruption++
			ep.End = env.Monotonic()
			arm.Eps = append(arm.Eps, ep)
			return
		}
	case seq > maxSeq:
		arm.UndetectedCorruption++
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		return
	default:
		if !durableStateEqual(st, durableModelAt(batches, seq)) {
			arm.UndetectedCorruption++
			ep.End = env.Monotonic()
			arm.Eps = append(arm.Eps, ep)
			return
		}
	}
	// Recovery must hand back a writable store, not just a readable one.
	if err := st.Put("post-recovery", []byte("ok")); err != nil {
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		return
	}
	ep.End = env.Monotonic()
	ep.Recovered = true
	arm.RecoveredEpisodes++
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
}

// runDurableBaselineArm is the control: a clean workload, a clean close, and
// a reopen that must find everything with no repairs.
func runDurableBaselineArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "none"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed)
	opts := durable.Options{CheckpointEvery: durableCrashCkptEvery}
	st, _, err := durable.Open(env, durableOwner, durableDir, opts)
	if err != nil {
		return arm, err
	}
	for _, b := range batches {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable baseline: %w", err)
		}
	}
	verifyReopen(&arm, env, st, opts, batches, len(batches), uint64(len(batches)),
		"clean-reopen", "clean close and reopen")
	return arm, nil
}

// runDurableCrashArm is the crash matrix: one episode per write boundary of
// the workload, each killing the process at that boundary with unsynced
// tails torn to keepTail bytes, then recovering and verifying.
func runDurableCrashArm(name string, seed int64, keepTail int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "crash"}
	batches := durableWorkload(durableCrashOps)
	opts := durable.Options{CheckpointEvery: durableCrashCkptEvery}
	// Dry run on a pristine environment to enumerate the workload's write
	// boundaries (WAL appends, syncs, and every checkpoint step).
	dry := simenv.New(seed)
	st, _, err := durable.Open(dry, durableOwner, durableDir, opts)
	if err != nil {
		return arm, err
	}
	for _, b := range batches {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable crash dry run: %w", err)
		}
	}
	st.Close()
	arm.Boundaries = int(dry.Disk().WriteOps())
	for b := 0; b < arm.Boundaries; b++ {
		env := simenv.New(seed)
		st, _, err := durable.Open(env, durableOwner, durableDir, opts)
		if err != nil {
			return arm, err
		}
		env.Disk().ScheduleCrash(b, keepTail)
		acked := 0
		var crashErr error
		for _, batch := range batches {
			if err := st.Apply(batch); err != nil {
				crashErr = err
				break
			}
			acked++
		}
		if crashErr == nil {
			// The crash landed inside a post-acknowledgement checkpoint step
			// of the final record; the workload finished but the disk is
			// down all the same.
			if !env.Disk().Crashed() {
				return arm, fmt.Errorf("experiment: durable crash: boundary %d never fired", b)
			}
		} else if !errors.Is(crashErr, simenv.ErrDiskCrashed) {
			return arm, fmt.Errorf("experiment: durable crash: boundary %d: unexpected %v", b, crashErr)
		}
		arm.Crashes++
		verifyReopen(&arm, env, st, opts, batches, acked, uint64(acked)+1,
			fmt.Sprintf("crash@%03d", b), fmt.Sprintf("killed at write boundary %d, tails torn to %d bytes", b, keepTail))
	}
	return arm, nil
}

// runDurableDiskFullArm fills the partition from under the store
// mid-workload, expects a typed refusal, reclaims the hostile tenant's
// space, and finishes the workload without losing anything.
func runDurableDiskFullArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "EDN"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed)
	opts := durable.Options{CheckpointEvery: -1}
	st, _, err := durable.Open(env, durableOwner, durableDir, opts)
	if err != nil {
		return arm, err
	}
	defer st.Close()
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable disk-full: %w", err)
		}
	}
	// The margin is smaller than any WAL record, so the next append
	// genuinely hits the full partition.
	if err := env.Disk().FillFrom("other-tenant", 8); err != nil { //faultlint:ignore envcheck staging the hostile environment is the point
		return arm, fmt.Errorf("experiment: durable disk-full: stage: %w", err)
	}
	ferr := st.Apply(batches[half])
	if !errors.Is(ferr, simenv.ErrDiskFull) {
		return arm, fmt.Errorf("experiment: durable disk-full: want ErrDiskFull, got %v", ferr)
	}
	start := env.Monotonic()
	env.Advance(durableDetect)
	env.Disk().RemoveOwner("other-tenant")
	ep := DurableEpisode{Op: "append-enospc", Note: ferr.Error(), Start: start}
	arm.Episodes++
	for _, b := range batches[half:] {
		if err := st.Apply(b); err != nil {
			ep.End = env.Monotonic()
			arm.Eps = append(arm.Eps, ep)
			arm.Acked += len(batches)
			arm.Recovered += half
			return arm, nil
		}
	}
	arm.Acked += len(batches)
	if !durableStateEqual(st, durableModelAt(batches, uint64(len(batches)))) {
		arm.UndetectedCorruption++
	} else {
		arm.Recovered += len(batches)
		ep.Recovered = true
		arm.RecoveredEpisodes++
	}
	ep.End = env.Monotonic()
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
	return arm, nil
}

// runDurableFDArm exhausts the descriptor table before the store opens,
// expects the typed refusal, reclaims the competitor's descriptors, and
// verifies the store then opens and serves the full workload.
func runDurableFDArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "EDN"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed, simenv.WithFDLimit(8))
	for {
		if _, err := env.FDs().Open("competitor"); err != nil {
			break
		}
	}
	_, _, ferr := durable.Open(env, durableOwner, durableDir, durable.Options{})
	if !errors.Is(ferr, simenv.ErrFDExhausted) {
		return arm, fmt.Errorf("experiment: durable fd: want ErrFDExhausted, got %v", ferr)
	}
	start := env.Monotonic()
	env.Advance(durableDetect)
	env.FDs().ReleaseOwner("competitor")
	ep := DurableEpisode{Op: "open-emfile", Note: ferr.Error(), Start: start}
	arm.Episodes++
	st, _, err := durable.Open(env, durableOwner, durableDir, durable.Options{})
	if err != nil {
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		return arm, nil
	}
	defer st.Close()
	for _, b := range batches {
		if err := st.Apply(b); err != nil {
			ep.End = env.Monotonic()
			arm.Eps = append(arm.Eps, ep)
			return arm, nil
		}
	}
	arm.Acked += len(batches)
	if !durableStateEqual(st, durableModelAt(batches, uint64(len(batches)))) {
		arm.UndetectedCorruption++
	} else {
		arm.Recovered += len(batches)
		ep.Recovered = true
		arm.RecoveredEpisodes++
	}
	ep.End = env.Monotonic()
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
	return arm, nil
}

// runDurableFileLimitArm lets the uncompacted WAL grow into the per-file
// size limit, expects the typed refusal, compacts (checkpoint + log
// truncation), and finishes the workload.
func runDurableFileLimitArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "EDN"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed, simenv.WithMaxFileSize(512))
	st, _, err := durable.Open(env, durableOwner, durableDir, durable.Options{CheckpointEvery: -1})
	if err != nil {
		return arm, err
	}
	defer st.Close()
	applied := 0
	var ferr error
	for _, b := range batches {
		if err := st.Apply(b); err != nil {
			ferr = err
			break
		}
		applied++
	}
	if !errors.Is(ferr, simenv.ErrFileTooLarge) {
		return arm, fmt.Errorf("experiment: durable file-limit: want ErrFileTooLarge, got %v", ferr)
	}
	start := env.Monotonic()
	env.Advance(durableDetect)
	ep := DurableEpisode{Op: "append-efbig", Note: ferr.Error(), Start: start}
	arm.Episodes++
	// The rewrite: checkpoint the state and truncate the log, then resume —
	// compacting again whenever the tight limit bites (the same condition
	// recurs under a cap this small; recovery is the compaction, not a
	// one-off).
	if err := st.Checkpoint(); err != nil {
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		return arm, nil
	}
	ok := true
	for _, b := range batches[applied:] {
		err := st.Apply(b)
		if errors.Is(err, simenv.ErrFileTooLarge) {
			if err = st.Checkpoint(); err == nil {
				err = st.Apply(b)
			}
		}
		if err != nil {
			ok = false
			break
		}
	}
	arm.Acked += len(batches)
	if ok && durableStateEqual(st, durableModelAt(batches, uint64(len(batches)))) {
		arm.Recovered += len(batches)
		ep.Recovered = true
		arm.RecoveredEpisodes++
	} else if ok {
		arm.UndetectedCorruption++
	}
	ep.End = env.Monotonic()
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
	return arm, nil
}

// runDurableWriteFaultArm injects one transient device fault mid-workload —
// a short write ("short") or a failed sync ("sync") — expects the typed
// error, retries the same record (the store repairs its own tail first), and
// verifies nothing was lost.
func runDurableWriteFaultArm(name string, seed int64, kind string) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "EDT"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed)
	st, _, err := durable.Open(env, durableOwner, durableDir, durable.Options{CheckpointEvery: -1})
	if err != nil {
		return arm, err
	}
	defer st.Close()
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable %s: %w", name, err)
		}
	}
	want := simenv.ErrShortWrite
	if kind == "sync" {
		env.Disk().ArmSyncFail()
		want = simenv.ErrIOFault
	} else {
		env.Disk().ArmShortWrite(3)
	}
	ferr := st.Apply(batches[half])
	if !errors.Is(ferr, want) {
		return arm, fmt.Errorf("experiment: durable %s: want %v, got %v", name, want, ferr)
	}
	start := env.Monotonic()
	env.Advance(durableDetect)
	ep := DurableEpisode{Op: "append-" + kind, Note: ferr.Error(), Start: start}
	arm.Episodes++
	ok := true
	for _, b := range batches[half:] {
		if err := st.Apply(b); err != nil {
			ok = false
			break
		}
	}
	arm.Acked += len(batches)
	arm.Repairs += int(st.Stats().Repairs)
	if ok && durableStateEqual(st, durableModelAt(batches, uint64(len(batches)))) {
		arm.Recovered += len(batches)
		ep.Recovered = true
		arm.RecoveredEpisodes++
	} else if ok {
		arm.UndetectedCorruption++
	}
	ep.End = env.Monotonic()
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
	return arm, nil
}

// runDurableTornArm is the silent device lie: the last record's write is
// torn while reporting success, so the store acknowledges a record the disk
// never fully held. The loss is unavoidable — the gate is that reopening
// DETECTS it (checksum, reported damage, bounded to the lied-about record)
// rather than serving corrupt state.
func runDurableTornArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "EDT"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed)
	opts := durable.Options{CheckpointEvery: -1}
	st, _, err := durable.Open(env, durableOwner, durableDir, opts)
	if err != nil {
		return arm, err
	}
	last := len(batches) - 1
	for _, b := range batches[:last] {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable torn: %w", err)
		}
	}
	env.Disk().ArmTornWrite(2)
	if err := st.Apply(batches[last]); err != nil {
		return arm, fmt.Errorf("experiment: durable torn: the device lie surfaced: %v", err)
	}
	// Every record was acknowledged; the disk holds one lie.
	verifyReopen(&arm, env, st, opts, batches, len(batches), uint64(len(batches)),
		"torn-ack", "write torn to 2 bytes while reporting success")
	return arm, nil
}

// runDurableRenameArm crashes the process at the checkpoint commit point:
// the temporary file is written and synced but the rename never lands.
// Recovery must sweep the temporary, keep the old checkpoint, and replay the
// full log — no acknowledged record depends on the failed commit.
func runDurableRenameArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "crash"}
	batches := durableWorkload(durableOps)
	env := simenv.New(seed)
	opts := durable.Options{CheckpointEvery: -1}
	st, _, err := durable.Open(env, durableOwner, durableDir, opts)
	if err != nil {
		return arm, err
	}
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable rename: %w", err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		return arm, fmt.Errorf("experiment: durable rename: baseline checkpoint: %w", err)
	}
	for _, b := range batches[half:] {
		if err := st.Apply(b); err != nil {
			return arm, fmt.Errorf("experiment: durable rename: %w", err)
		}
	}
	env.Disk().ArmCrashBeforeRename()
	cerr := st.Checkpoint()
	if !errors.Is(cerr, simenv.ErrDiskCrashed) {
		return arm, fmt.Errorf("experiment: durable rename: want ErrDiskCrashed, got %v", cerr)
	}
	arm.Crashes++
	verifyReopen(&arm, env, st, opts, batches, len(batches), uint64(len(batches))+1,
		"ckpt-commit-crash", "crashed before the checkpoint rename landed")
	return arm, nil
}

// runDurableSQLArm probes the database's restore rung over the WAL-backed
// engine: snapshot, more writes, a crash, then Restore — which must take the
// log-rollback path (not the logical JSON rebuild) and land exactly on the
// snapshot's rows.
func runDurableSQLArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "app"}
	env := simenv.New(seed)
	srv := sqldb.New(env, faultinject.NewSet())
	if err := srv.Start(); err != nil {
		return arm, err
	}
	exec := func(sql string) error {
		_, err := srv.Exec(sql)
		return err
	}
	if err := exec("CREATE TABLE t (id INT, name TEXT)"); err != nil {
		return arm, err
	}
	for i := 0; i < 3; i++ {
		if err := exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i, i)); err != nil {
			return arm, err
		}
	}
	snap, err := srv.Snapshot()
	if err != nil {
		return arm, err
	}
	for i := 3; i < 5; i++ {
		if err := exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i, i)); err != nil {
			return arm, err
		}
	}
	start := env.Monotonic()
	env.Advance(durableDetect)
	srv.Stop()
	env.Advance(durableRestart)
	ep := DurableEpisode{Op: "restore-rollback", Note: "process replaced; restoring the pre-fault snapshot", Start: start}
	arm.Episodes++
	arm.Acked += 3 // the snapshot's rows are the acknowledged state to recover
	if err := srv.Restore(snap); err != nil {
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		return arm, nil
	}
	rs, err := srv.Exec("SELECT id FROM t")
	rows := 0
	if err == nil {
		rows = len(rs.Rows)
	}
	if srv.WALReplays() == 1 && rows == 3 {
		arm.Recovered += 3
		ep.Recovered = true
		arm.RecoveredEpisodes++
	} else if rows != 3 {
		arm.SilentLoss += 3 - rows
	}
	ep.End = env.Monotonic()
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
	srv.Stop()
	return arm, nil
}

// runDurableCacheArm probes the cache's persist component: kill it
// (crash-only: the store closes with no flush), restart it (real recovery
// over whatever the kill left), and verify every acknowledged SET is in the
// recovered store.
func runDurableCacheArm(name string, seed int64) (DurableArm, error) {
	arm := DurableArm{Name: name, Class: "app"}
	env := simenv.New(seed)
	srv := cache.New(env, faultinject.NewSet(), cache.Config{})
	c := cache.Componentize(srv, component.NewStore())
	if err := c.Start(); err != nil {
		return arm, err
	}
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i, k := range keys {
		if err := srv.Set(k, fmt.Sprintf("v%d", i)); err != nil {
			return arm, err
		}
	}
	start := env.Monotonic()
	if err := c.Tree().Kill(cache.CompPersist); err != nil {
		return arm, err
	}
	env.Advance(durableDetect)
	ep := DurableEpisode{Op: "persist-reboot", Note: "persist component crash-stopped and restarted", Start: start}
	arm.Episodes++
	arm.Acked += len(keys)
	if err := c.Tree().Restart(cache.CompPersist); err != nil {
		ep.End = env.Monotonic()
		arm.Eps = append(arm.Eps, ep)
		c.Stop()
		return arm, nil
	}
	st := srv.DurableStore()
	got := 0
	for i, k := range keys {
		if v, ok := st.Get(k); ok && string(v) == fmt.Sprintf("v%d", i) {
			got++
		}
	}
	arm.Recovered += got
	if got == len(keys) {
		ep.Recovered = true
		arm.RecoveredEpisodes++
	} else {
		arm.SilentLoss += len(keys) - got
	}
	ep.End = env.Monotonic()
	arm.MTTRTotal += ep.End - ep.Start
	arm.Eps = append(arm.Eps, ep)
	c.Stop()
	return arm, nil
}

// Check asserts the experiment's headline claims: every episode recovered;
// zero acknowledged records lost silently and zero undetected corruption
// anywhere in the crash matrix or the fault catalogue; detected loss only
// where the device lied about a write (and there it must be detected); and
// the crash matrix actually enumerated boundaries.
func (r *DurableReport) Check() error {
	if r.Halted {
		return nil
	}
	for _, a := range r.Arms {
		if a.SilentLoss > 0 {
			return fmt.Errorf("experiment: durable check: %s: %d acknowledged records silently lost", a.Name, a.SilentLoss)
		}
		if a.UndetectedCorruption > 0 {
			return fmt.Errorf("experiment: durable check: %s: %d undetected corruptions", a.Name, a.UndetectedCorruption)
		}
		if a.Episodes == 0 {
			return fmt.Errorf("experiment: durable check: %s: no episodes ran", a.Name)
		}
		if a.RecoveredEpisodes != a.Episodes {
			return fmt.Errorf("experiment: durable check: %s: %d of %d episodes unrecovered",
				a.Name, a.Episodes-a.RecoveredEpisodes, a.Episodes)
		}
		switch a.Name {
		case "torn-write":
			if a.DetectedLoss == 0 {
				return fmt.Errorf("experiment: durable check: %s: the device lie went undetected", a.Name)
			}
		default:
			if a.DetectedLoss > 0 {
				return fmt.Errorf("experiment: durable check: %s: %d records lost to detected damage", a.Name, a.DetectedLoss)
			}
		}
		if a.Class == "crash" && a.Name != "crash-before-rename" && a.Boundaries == 0 {
			return fmt.Errorf("experiment: durable check: %s: no write boundaries enumerated", a.Name)
		}
		if a.MTTRTotal <= 0 {
			return fmt.Errorf("experiment: durable check: %s: no repair time accumulated", a.Name)
		}
	}
	return nil
}

// String renders the per-arm matrix and the headline.
func (r *DurableReport) String() string {
	var b strings.Builder
	if r.Halted {
		fmt.Fprintf(&b, "DURABLE experiment (seed %d): halted with %d/%d arms warehoused; rerun with -resume to finish.\n",
			r.Seed, r.Done, r.Total)
		return b.String()
	}
	fmt.Fprintf(&b, "DURABLE experiment (seed %d, %d arms):\n", r.Seed, len(r.Arms))
	tbl := &stats.Table{Header: []string{
		"arm", "class", "episodes", "recovered", "crashes", "acked", "silent-loss", "detected-loss", "repairs", "mttr"}}
	for _, a := range r.Arms {
		tbl.Add(a.Name, a.Class,
			fmt.Sprint(a.Episodes),
			fmt.Sprintf("%d/%d", a.RecoveredEpisodes, a.Episodes),
			fmt.Sprint(a.Crashes),
			fmt.Sprint(a.Acked),
			fmt.Sprint(a.SilentLoss),
			fmt.Sprint(a.DetectedLoss),
			fmt.Sprint(a.Repairs),
			mrebootMTTRCell(a.MTTR()))
	}
	b.WriteString(tbl.String())
	var crashes, acked, silent, detected int
	for _, a := range r.Arms {
		crashes += a.Crashes
		acked += a.Acked
		silent += a.SilentLoss
		detected += a.DetectedLoss
	}
	fmt.Fprintf(&b,
		"\nHeadline: %d injected crashes and device faults over %d acknowledged records lost %d\nof them silently and corrupted none undetected; the one deliberate device lie was caught\nand bounded to %d record(s). Recovery IS the startup path: every reopen replays the log.\n",
		crashes, acked, silent, detected)
	return b.String()
}
