package recoveryscope

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"faultstudy/internal/faultlint"
	"faultstudy/internal/taxonomy"
)

// loadFixture loads testdata/scopeapp and analyzes it.
func loadFixture(t *testing.T) *Analysis {
	t.Helper()
	pkg, err := faultlint.LoadDir(token.NewFileSet(), filepath.Join("testdata", "scopeapp"))
	if err != nil {
		t.Fatalf("LoadDir(testdata/scopeapp): %v", err)
	}
	return Analyze([]*faultlint.Package{pkg})
}

func TestComponentMapExtraction(t *testing.T) {
	a := loadFixture(t)
	cm := a.Maps[filepath.Join("testdata", "scopeapp")]
	if cm == nil {
		t.Fatalf("no component map extracted; maps: %v", a.Maps)
	}
	if got, want := strings.Join(cm.Order, ","), "app/core,app/worker,app/cache"; got != want {
		t.Errorf("Order = %s, want %s", got, want)
	}
	if cm.Root != "app/core" {
		t.Errorf("Root = %q, want app/core", cm.Root)
	}
	// The worker subtree is worker+cache; the core subtree is everything.
	if sub := cm.Subtree("app/worker"); len(sub) != 2 || !sub["app/cache"] {
		t.Errorf("Subtree(worker) = %v, want {worker, cache}", sub)
	}
	if sub := cm.Subtree("app/core"); len(sub) != 3 {
		t.Errorf("Subtree(core) = %v, want all three", sub)
	}
	// Kill-hook ownership, including the delegated closeFDs write. Keys are
	// type-qualified: hook writes resolve their receiver struct.
	wantOwner := map[string]string{
		"server.leakBufs":   "app/core",
		"server.fds":        "app/worker",
		"server.jobs":       "app/worker",
		"server.cacheDirty": "app/cache",
	}
	for field, owner := range wantOwner {
		if got := cm.FieldOwner[field]; got != owner {
			t.Errorf("FieldOwner[%s] = %q, want %q", field, got, owner)
		}
	}
	if _, owned := cm.FieldOwner["server.genCount"]; owned {
		t.Errorf("genCount must not be kill-owned")
	}
	if !cm.HookTypes["server"] {
		t.Errorf("HookTypes = %v, want server", cm.HookTypes)
	}
	// Mechanism attribution comes from the componentFor literal.
	if got := cm.MechanismComponent["app/fd-leak"]; got != "app/worker" {
		t.Errorf("MechanismComponent[app/fd-leak] = %q, want app/worker", got)
	}
	if _, ok := cm.MechanismComponent["app/orphan"]; ok {
		t.Errorf("app/orphan must stay unattributed")
	}
}

func TestCallGraphSummaries(t *testing.T) {
	a := loadFixture(t)
	dir := filepath.Join("testdata", "scopeapp")
	open := a.Graph.Funcs[FuncKey{Pkg: dir, Recv: "server", Name: "openScratch"}]
	if open == nil {
		t.Fatalf("openScratch not indexed")
	}
	if !open.Triggers[taxonomy.TriggerFDExhaustion] {
		t.Errorf("openScratch triggers = %v, want FDExhaustion", open.SortedTriggers())
	}
	if !open.Reach.Fields["server.fds"] {
		t.Errorf("openScratch reach = %v, want server.fds", open.Reach.SortedFields())
	}
	// fdLeak inherits both transitively through the call edge.
	leak := a.Graph.Funcs[FuncKey{Pkg: dir, Recv: "server", Name: "fdLeak"}]
	if leak == nil {
		t.Fatalf("fdLeak not indexed")
	}
	if !leak.Triggers[taxonomy.TriggerFDExhaustion] || !leak.Reach.Fields["server.fds"] {
		t.Errorf("fdLeak summary not transitive: triggers=%v reach=%v",
			leak.SortedTriggers(), leak.Reach.SortedFields())
	}
	// pureBug reaches nothing environmental.
	pure := a.Graph.Funcs[FuncKey{Pkg: dir, Recv: "server", Name: "pureBug"}]
	if pure == nil || len(pure.Triggers) != 0 {
		t.Errorf("pureBug must have no environment triggers")
	}
}

// siteFor finds the unique prediction speaking for a mechanism.
func siteFor(t *testing.T, a *Analysis, mech string) Prediction {
	t.Helper()
	for _, s := range a.Sites {
		for _, m := range s.Mechanisms {
			if m == mech {
				return s
			}
		}
	}
	t.Fatalf("no site predicts %s; have %d sites", mech, len(a.Sites))
	return Prediction{}
}

func TestPredictions(t *testing.T) {
	a := loadFixture(t)
	cases := []struct {
		mech      string
		class     taxonomy.FaultClass
		rung      Rung
		component string
		interproc bool
	}{
		{"app/pure-bug", taxonomy.ClassEnvIndependent, RungRetry, "app/core", false},
		{"app/slow-leak", taxonomy.ClassEnvIndependent, RungMicroreboot, "app/core", false},
		{"app/fd-leak", taxonomy.ClassEnvDependentNonTransient, RungMicroreboot, "app/worker", true},
		{"app/disk-full", taxonomy.ClassEnvDependentNonTransient, RungRestart, "app/core", false},
		{"app/dns-flap", taxonomy.ClassEnvDependentTransient, RungRetry, "app/worker", false},
		{"app/race-crash", taxonomy.ClassEnvDependentTransient, RungMicroreboot, "app/cache", false},
		{"app/cross-taint", taxonomy.ClassEnvIndependent, RungSubtreeReboot, "app/worker", false},
		{"app/ledger-skew", taxonomy.ClassEnvIndependent, RungRestart, "app/core", false},
		{"app/wild-write", taxonomy.ClassEnvIndependent, RungRestore, "app/core", false},
		{"app/orphan", taxonomy.ClassEnvIndependent, RungRestore, "", false},
	}
	for _, tc := range cases {
		s := siteFor(t, a, tc.mech)
		if s.Class != tc.class {
			t.Errorf("%s: class = %s, want %s", tc.mech, s.Class.Short(), tc.class.Short())
		}
		if s.Rung != tc.rung {
			t.Errorf("%s: rung = %s, want %s", tc.mech, s.Rung, tc.rung)
		}
		if s.Component != tc.component {
			t.Errorf("%s: component = %q, want %q", tc.mech, s.Component, tc.component)
		}
		if s.Interprocedural != tc.interproc {
			t.Errorf("%s: interprocedural = %v, want %v", tc.mech, s.Interprocedural, tc.interproc)
		}
	}
}

func TestPredictionDetails(t *testing.T) {
	a := loadFixture(t)

	// The interprocedural class decision names its evidence.
	fd := siteFor(t, a, "app/fd-leak")
	if !strings.Contains(fd.Via, "openScratch") {
		t.Errorf("fd-leak via = %q, want openScratch", fd.Via)
	}
	if got := strings.Join(fd.Releasable, ","); got != "fds" {
		t.Errorf("fd-leak releasable = %q, want fds", got)
	}

	// Liveness flips are not corruption: the race-crash path writes
	// running=false before raising, yet its path taint stays empty.
	race := siteFor(t, a, "app/race-crash")
	if len(race.PathFields) != 0 {
		t.Errorf("race-crash path fields = %v, want none (liveness excluded)", race.PathFields)
	}

	// Cross-component taint widens the blast radius to the worker subtree.
	cross := siteFor(t, a, "app/cross-taint")
	if got := strings.Join(cross.BlastRadius, ","); got != "app/cache,app/worker" {
		t.Errorf("cross-taint blast = %q, want cache+worker", got)
	}

	// Store corruption is recorded per bucket.
	ledger := siteFor(t, a, "app/ledger-skew")
	if got := strings.Join(ledger.PathBuckets, ","); got != "ledger/ops" {
		t.Errorf("ledger-skew buckets = %q, want ledger/ops", got)
	}

	// Sites come out in deterministic file/line order.
	for i := 1; i < len(a.Sites); i++ {
		x, y := a.Sites[i-1], a.Sites[i]
		if x.File > y.File || (x.File == y.File && x.Line > y.Line) {
			t.Fatalf("sites out of order at %d: %s:%d after %s:%d", i, y.File, y.Line, x.File, x.Line)
		}
	}
}

func TestByMechanism(t *testing.T) {
	a := loadFixture(t)
	byMech := a.ByMechanism()
	if len(byMech) != 10 {
		t.Fatalf("ByMechanism: %d mechanisms, want 10", len(byMech))
	}
	fd, ok := byMech["app/fd-leak"]
	if !ok || fd.Sites != 1 || fd.Rung != RungMicroreboot || !fd.Interprocedural {
		t.Errorf("fd-leak mech prediction = %+v", fd)
	}
	if got := byMech["app/disk-full"]; got.Class != taxonomy.ClassEnvDependentNonTransient || got.Rung != RungRestart {
		t.Errorf("disk-full mech prediction = %+v", got)
	}
}

func TestDiagnostics(t *testing.T) {
	a := loadFixture(t)
	diags := a.Diagnostics()
	var scope, scopegap int
	for _, d := range diags {
		switch d.Rule {
		case "scope":
			scope++
			if !d.Advisory {
				t.Errorf("scope finding must be advisory: %+v", d)
			}
		case "scopegap":
			scopegap++
			if d.Advisory {
				t.Errorf("scopegap finding must gate: %+v", d)
			}
			if !strings.Contains(d.Message, "app/orphan") {
				t.Errorf("scopegap message = %q, want app/orphan", d.Message)
			}
		default:
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
	if scope != 10 {
		t.Errorf("scope findings = %d, want 10 (one per site)", scope)
	}
	if scopegap != 1 {
		t.Errorf("scopegap findings = %d, want 1 (the orphan)", scopegap)
	}
}

func TestRungParseRoundTrip(t *testing.T) {
	for _, r := range Rungs() {
		got, err := ParseRung(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRung(%s) = %v, %v", r, got, err)
		}
	}
	if _, err := ParseRung("escalate"); err == nil {
		t.Errorf("ParseRung(escalate) must fail")
	}
	if len(Rungs()) != 5 {
		t.Errorf("Rungs() = %v, want the five-step ladder", Rungs())
	}
}
