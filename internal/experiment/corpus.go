package experiment

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"faultstudy/internal/apps/cache"
	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/classify"
	"faultstudy/internal/corpus"
	"faultstudy/internal/corpusgen"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/recovery"
	"faultstudy/internal/scrape"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
)

// Metric names of the CORPUS experiment; the catalogue entries live in
// OBSERVABILITY.md.
const (
	// MetricCorpusFaults counts generated faults by ladder verdict.
	MetricCorpusFaults = "faultstudy_corpus_faults_total"
	// MetricCorpusClassified counts classifier decisions over generated
	// reports by agreement with the sampled class.
	MetricCorpusClassified = "faultstudy_corpus_classified_total"
	// MetricCorpusEpisodes counts two-fault episodes by overlap mode and
	// ladder verdict.
	MetricCorpusEpisodes = "faultstudy_corpus_episodes_total"
	// MetricCorpusGOFChi is each sampled dimension's chi-squared statistic.
	MetricCorpusGOFChi = "faultstudy_corpus_gof_chisq"
	// MetricCorpusDrift is the per-class recovery-rate drift against the
	// curated baseline, in percentage points.
	MetricCorpusDrift = "faultstudy_corpus_recovery_drift_points"
	// MetricCorpusSitePages is the synthetic PR site's page count.
	MetricCorpusSitePages = "faultstudy_corpus_site_pages"
	// MetricCorpusCrawled counts crawled site pages by outcome (ok, gap).
	MetricCorpusCrawled = "faultstudy_corpus_site_crawled_total"
)

// Derived-seed stream salts: the generator owns indexes [0, faults+episodes+
// site) of the root seed's stream, so the experiment's per-run environments
// draw from disjoint high offsets.
const (
	corpusLadderSalt   = uint64(1) << 40
	corpusEpisodeSalt  = uint64(2) << 40
	corpusBaselineSalt = uint64(3) << 40
)

// CorpusConfig tunes the CORPUS experiment: a generated fault population —
// and its two-fault episodes — run through classification and the supervised
// escalation ladder, validated against the spec's distributions and the
// curated 139-fault baseline.
type CorpusConfig struct {
	// Seed drives generation and every per-run environment.
	Seed int64
	// Spec is the corpus specification (corpusgen grammar); empty means the
	// published-distribution defaults (5000 faults, 500 episodes).
	Spec string
	// Supervise is the supervisor configuration used for the generated runs
	// and the curated baseline alike.
	Supervise supervise.Config
	// DriftBand is the allowed per-class recovery-rate drift against the
	// curated baseline, in percentage points (0 means 10).
	DriftBand float64
	// MinAgreement is the required classifier agreement over generated
	// reports (0 means 0.98).
	MinAgreement float64
	// SiteFaults sizes the synthetic PR site's population (0 means 50000,
	// which yields >= 100k PR pages).
	SiteFaults int
	// CrawlPages bounds the crawl sample over the site (0 means 400).
	CrawlPages int
	// MinSitePages gates the site's total page count; it defaults to 100000
	// only when SiteFaults also defaults, and 0 otherwise (no gate).
	MinSitePages int
	// Telemetry, when non-nil, receives per-run traces and the corpus
	// metric family. Nil costs nothing.
	Telemetry *Telemetry
	// Workers bounds the worker pool the runs are sharded over (0 or
	// negative means one per processor; 1 is serial). Reports, traces, and
	// metric dumps are byte-identical at every worker count.
	Workers int
}

// withDefaults fills the zero fields.
func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.DriftBand == 0 {
		c.DriftBand = 10
	}
	if c.MinAgreement == 0 {
		c.MinAgreement = 0.98
	}
	if c.CrawlPages <= 0 {
		c.CrawlPages = 400
	}
	if c.SiteFaults <= 0 {
		c.SiteFaults = 50000
		if c.MinSitePages == 0 {
			c.MinSitePages = 100000
		}
	}
	return c
}

// CorpusClassStat aggregates one fault class over the generated population.
type CorpusClassStat struct {
	// Class is the fault class.
	Class taxonomy.FaultClass
	// Agreement counts generated reports the classifier assigned the
	// sampled class.
	Agreement stats.Proportion
	// NotLost counts generated runs the supervisor served or degraded.
	NotLost stats.Proportion
	// Degraded is how many of the NotLost hits ended degraded.
	Degraded int
	// Covered counts generated runs whose mechanism also appears in the
	// curated corpus — the population the drift gate compares. Mechanisms
	// without curated coverage (the cache archetype, which postdates the
	// curated 139) cannot be baselined and are excluded.
	Covered stats.Proportion
	// Curated is the raw curated-139 NotLost proportion for this class
	// under the same supervisor configuration.
	Curated stats.Proportion
	// BaselineRate is the curated per-mechanism NotLost rates reweighted to
	// the generated population's mechanism mix, in [0, 1]: the rate the
	// covered runs should reproduce if the ladder treats a mechanism the
	// same regardless of which population sampled it.
	BaselineRate float64
}

// DriftPoints is the absolute drift of the covered generated runs' recovery
// rate from the mechanism-reweighted curated baseline, in percentage points.
func (s CorpusClassStat) DriftPoints() float64 {
	if s.Covered.N == 0 || s.Curated.N == 0 {
		return 0
	}
	gen := float64(s.Covered.Hits) / float64(s.Covered.N)
	d := (gen - s.BaselineRate) * 100
	if d < 0 {
		d = -d
	}
	return d
}

// CorpusEpisodeStat aggregates one overlap mode over the episodes.
type CorpusEpisodeStat struct {
	// Overlap is the co-occurrence mode (concurrent, cascade).
	Overlap string
	// NotLost counts episode runs the supervisor served or degraded.
	NotLost stats.Proportion
	// Degraded is how many of the NotLost hits ended degraded.
	Degraded int
}

// CorpusReport is the assembled CORPUS experiment.
type CorpusReport struct {
	// Seed is the experiment's root seed.
	Seed int64
	// SpecText is the canonical spec the population was drawn from.
	SpecText string
	// Faults and Episodes are the population sizes actually run.
	Faults, Episodes int
	// Classes aggregates per fault class, in EI/EDN/EDT order.
	Classes []CorpusClassStat
	// EpisodeStats aggregates per overlap mode, concurrent then cascade.
	EpisodeStats []CorpusEpisodeStat
	// GOF holds every sampled dimension's goodness-of-fit test.
	GOF []corpusgen.GOFResult
	// DriftBand and MinAgreement are the gates the report checks against.
	DriftBand    float64
	MinAgreement float64
	// SitePages is the synthetic PR site's total page count; SiteCrawled and
	// SiteGaps are the crawl sample's outcomes; MinSitePages is the gate.
	SitePages, SiteCrawled, SiteGaps, MinSitePages int
}

// RunCorpus runs the CORPUS experiment: generate the population, grade every
// generated report through the classifier, run every generated fault — and
// every two-fault episode — through the supervised escalation ladder, run
// the curated 139 through the identical ladder as the baseline, test every
// sampler's goodness of fit, and crawl a sample of the population's
// synthetic PR site.
//
// Faults, episodes, and baseline runs are independent shards on a pool of
// cfg.Workers workers: each derives its seed from (Seed, salted index) and
// records into a private telemetry, and the shards are reduced in population
// order — so reports, traces, and metric dumps are byte-identical at every
// worker count.
func RunCorpus(cfg CorpusConfig) (*CorpusReport, error) {
	cfg = cfg.withDefaults()
	spec, err := corpusgen.ParseCorpusSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	gen := corpusgen.New(spec, cfg.Seed)
	faults, err := gen.Faults(cfg.Workers)
	if err != nil {
		return nil, err
	}
	episodes, err := gen.Episodes(cfg.Workers)
	if err != nil {
		return nil, err
	}

	rep := &CorpusReport{
		Seed: cfg.Seed, SpecText: spec.String(),
		Faults: len(faults), Episodes: len(episodes),
		DriftBand: cfg.DriftBand, MinAgreement: cfg.MinAgreement,
		MinSitePages: cfg.MinSitePages,
	}

	// Phase 1: every generated fault through the classifier and the ladder.
	type faultOut struct {
		agree   bool
		verdict SupervisorVerdict
		tel     *Telemetry
	}
	fouts, err := parallel.MapOrdered(cfg.Workers, len(faults), func(i int) (faultOut, error) {
		f := faults[i]
		res := classify.New(classifyDefaults()).Classify(f.Report())
		out := faultOut{agree: res.Class == f.Class}
		if cfg.Telemetry != nil {
			out.tel = NewTelemetry()
		}
		seed := parallel.Derive(cfg.Seed, corpusLadderSalt+uint64(i))
		verdict, err := runCorpusLadder(cfg.Supervise, out.tel, obsv.Context{
			App: f.App.String(), FaultID: f.ID, Class: f.Class.Short(),
		}, seed, f.Mechanism, "", "", 0)
		if err != nil {
			return out, fmt.Errorf("experiment: corpus fault %s (%s): %w", f.ID, f.Mechanism, err)
		}
		out.verdict = verdict
		if out.tel != nil {
			out.tel.Registry.Counter(MetricCorpusFaults,
				obsv.L("app", f.App.String(), "class", f.Class.Short(), "verdict", verdict.String())...).Inc()
			out.tel.Registry.Counter(MetricCorpusClassified,
				obsv.L("class", f.Class.Short(), "agree", fmt.Sprint(out.agree))...).Inc()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: every two-fault episode through the ladder.
	type episodeOut struct {
		verdict SupervisorVerdict
		tel     *Telemetry
	}
	eouts, err := parallel.MapOrdered(cfg.Workers, len(episodes), func(j int) (episodeOut, error) {
		e := episodes[j]
		pf := faults[e.Primary]
		var out episodeOut
		if cfg.Telemetry != nil {
			out.tel = NewTelemetry()
		}
		seed := parallel.Derive(cfg.Seed, corpusEpisodeSalt+uint64(j))
		verdict, err := runCorpusLadder(cfg.Supervise, out.tel, obsv.Context{
			App: pf.App.String(), FaultID: fmt.Sprintf("gen/ep-%05d", j), Class: pf.Class.Short(),
		}, seed, pf.Mechanism, e.Secondary, e.Overlap, e.Gap)
		if err != nil {
			return out, fmt.Errorf("experiment: corpus episode %d (%s + %s): %w", j, pf.Mechanism, e.Secondary, err)
		}
		out.verdict = verdict
		if out.tel != nil {
			out.tel.Registry.Counter(MetricCorpusEpisodes,
				obsv.L("overlap", e.Overlap, "verdict", verdict.String())...).Inc()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: the curated 139 through the identical ladder — the baseline
	// the generated population's recovery rates are gated against.
	curated := corpus.All()
	bouts, err := parallel.MapOrdered(cfg.Workers, len(curated), func(i int) (SupervisorVerdict, error) {
		f := curated[i]
		seed := parallel.Derive(cfg.Seed, corpusBaselineSalt+uint64(i))
		verdict, err := runCorpusLadder(cfg.Supervise, nil, obsv.Context{}, seed, f.Mechanism, "", "", 0)
		if err != nil {
			return VerdictNone, fmt.Errorf("experiment: corpus baseline %s: %w", f.ID, err)
		}
		return verdict, nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce in population order.
	byClass := make(map[taxonomy.FaultClass]*CorpusClassStat, 3)
	for _, class := range taxonomy.Classes() {
		byClass[class] = &CorpusClassStat{Class: class}
	}
	tels := make([]*Telemetry, 0, len(fouts)+len(eouts))
	for i, o := range fouts {
		st := byClass[faults[i].Class]
		st.Agreement.N++
		if o.agree {
			st.Agreement.Hits++
		}
		st.NotLost.N++
		if o.verdict != VerdictLost {
			st.NotLost.Hits++
			if o.verdict == VerdictDegraded {
				st.Degraded++
			}
		}
		tels = append(tels, o.tel)
	}
	type mechTally struct{ hits, n int }
	mechRate := make(map[string]*mechTally)
	for i, f := range curated {
		st := byClass[f.Class]
		st.Curated.N++
		mt := mechRate[f.Mechanism]
		if mt == nil {
			mt = &mechTally{}
			mechRate[f.Mechanism] = mt
		}
		mt.n++
		if bouts[i] != VerdictLost {
			st.Curated.Hits++
			mt.hits++
		}
	}
	// The drift baseline: curated per-mechanism rates under the generated
	// population's mechanism mix, over the covered runs only.
	wsum := make(map[taxonomy.FaultClass]float64, 3)
	for i, o := range fouts {
		f := faults[i]
		mt := mechRate[f.Mechanism]
		if mt == nil {
			continue
		}
		st := byClass[f.Class]
		st.Covered.N++
		if o.verdict != VerdictLost {
			st.Covered.Hits++
		}
		wsum[f.Class] += float64(mt.hits) / float64(mt.n)
	}
	for class, st := range byClass {
		if st.Covered.N > 0 {
			st.BaselineRate = wsum[class] / float64(st.Covered.N)
		}
	}
	byOverlap := map[string]*CorpusEpisodeStat{
		"concurrent": {Overlap: "concurrent"},
		"cascade":    {Overlap: "cascade"},
	}
	for j, o := range eouts {
		st := byOverlap[episodes[j].Overlap]
		st.NotLost.N++
		if o.verdict != VerdictLost {
			st.NotLost.Hits++
			if o.verdict == VerdictDegraded {
				st.Degraded++
			}
		}
		tels = append(tels, o.tel)
	}
	for _, class := range taxonomy.Classes() {
		rep.Classes = append(rep.Classes, *byClass[class])
	}
	rep.EpisodeStats = []CorpusEpisodeStat{*byOverlap["concurrent"], *byOverlap["cascade"]}
	rep.GOF = gen.GoodnessOfFit(faults, episodes)
	if err := cfg.Telemetry.Merge(tels...); err != nil {
		return nil, err
	}

	// Phase 4: emit the population as a synthetic PR site and crawl a
	// bounded sample through the real crawler.
	siteSpec := *spec
	siteSpec.Faults = cfg.SiteFaults
	siteSpec.Episodes = 0
	site := corpusgen.NewSite(corpusgen.New(&siteSpec, cfg.Seed))
	rep.SitePages = site.PageCount()
	srv := httptest.NewServer(site)
	defer srv.Close()
	cr := scrape.NewCrawler(
		scrape.WithMaxPages(cfg.CrawlPages),
		scrape.WithDelay(0),
		scrape.WithPathFilter("/gen"),
		scrape.WithClient(srv.Client()),
	)
	pages, err := cr.Crawl(context.Background(), srv.URL+"/gen/")
	if err != nil {
		return nil, fmt.Errorf("experiment: corpus site crawl: %w", err)
	}
	for _, p := range pages {
		if p.Err != nil || p.Status != 200 {
			rep.SiteGaps++
		} else {
			rep.SiteCrawled++
		}
	}

	// Terminal gauges on the merged telemetry.
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry.Registry
		for _, g := range rep.GOF {
			reg.Gauge(MetricCorpusGOFChi, obsv.L("dimension", g.Dimension)...).Set(g.ChiSquare)
		}
		for _, st := range rep.Classes {
			reg.Gauge(MetricCorpusDrift, obsv.L("class", st.Class.Short())...).Set(st.DriftPoints())
		}
		reg.Gauge(MetricCorpusSitePages).Set(float64(rep.SitePages))
		reg.Counter(MetricCorpusCrawled, obsv.L("outcome", "ok")...).Add(float64(rep.SiteCrawled))
		if rep.SiteGaps > 0 {
			reg.Counter(MetricCorpusCrawled, obsv.L("outcome", "gap")...).Add(float64(rep.SiteGaps))
		}
	}
	return rep, nil
}

// runCorpusLadder runs one generated fault — or, with a secondary mechanism,
// one two-fault episode — through the supervised escalation ladder, exactly
// as the matrix's supervised column runs the curated corpus: build, start,
// stage, supervise, flush, grade.
func runCorpusLadder(sup supervise.Config, tel *Telemetry, ctx obsv.Context, seed int64,
	primary, secondary, overlap string, gap time.Duration) (SupervisorVerdict, error) {
	app, stage, ops, err := buildCorpusRun(primary, secondary, overlap, gap, seed)
	if err != nil {
		return VerdictNone, err
	}
	if err := app.Start(); err != nil {
		return VerdictNone, fmt.Errorf("start: %w", err)
	}
	stage()
	runCfg := sup
	var obs *obsv.Observer
	if tel != nil {
		runCfg, obs = tel.superviseConfig(sup, ctx)
	}
	repo, err := supervise.New(app, runCfg).Run(wrapScenarioOps(primary, ops))
	if err != nil {
		return VerdictNone, err
	}
	obs.Flush(app.Env().Monotonic())
	return verdictOf(repo), nil
}

// buildCorpusRun constructs the application, the post-start staging hook,
// and the op stream for one run. A single fault is its scenario. A two-fault
// episode activates both mechanisms in one application instance: concurrent
// episodes stage both conditions after start and interleave the trigger ops;
// cascade episodes stage and trigger the secondary only after the gap has
// passed mid-stream.
func buildCorpusRun(primary, secondary, overlap string, gap time.Duration, seed int64) (recovery.Application, func(), []faultinject.Op, error) {
	stageOf := func(sc faultinject.Scenario) func() {
		if sc.Stage == nil {
			return func() {}
		}
		return sc.Stage
	}
	if secondary == "" {
		app, sc, err := BuildScenario(primary, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return app, stageOf(sc), sc.Ops, nil
	}
	app, scA, scB, err := buildDuet(primary, secondary, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	switch overlap {
	case "concurrent":
		stage := func() { stageOf(scA)(); stageOf(scB)() }
		return app, stage, interleaveOps(scA.Ops, scB.Ops), nil
	default: // cascade
		env := app.Env()
		bridge := faultinject.Op{Name: "episode-gap", Do: func() error {
			env.Advance(gap)
			stageOf(scB)()
			return nil
		}}
		ops := make([]faultinject.Op, 0, len(scA.Ops)+1+len(scB.Ops))
		ops = append(ops, scA.Ops...)
		ops = append(ops, bridge)
		ops = append(ops, scB.Ops...)
		return app, stageOf(scA), ops, nil
	}
}

// interleaveOps alternates two op streams, appending the longer tail.
func interleaveOps(a, b []faultinject.Op) []faultinject.Op {
	out := make([]faultinject.Op, 0, len(a)+len(b))
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			out = append(out, a[i])
		}
		if i < len(b) {
			out = append(out, b[i])
		}
	}
	return out
}

// buildDuet constructs one application instance with two mechanisms active
// and both scenarios bound to it. Both mechanisms must share a namespace:
// episodes strike one application, not two.
func buildDuet(primary, secondary string, seed int64) (recovery.Application, faultinject.Scenario, faultinject.Scenario, error) {
	var zero faultinject.Scenario
	ns := primary[:strings.IndexByte(primary, '/')+1]
	if !strings.HasPrefix(secondary, ns) {
		return nil, zero, zero, fmt.Errorf("experiment: episode mechanisms %q and %q span applications", primary, secondary)
	}
	set := faultinject.NewSet(primary, secondary)
	var app recovery.Application
	var scenarios map[string]faultinject.Scenario
	switch ns {
	case "httpd/":
		env := simenv.New(seed, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
		srv := httpd.New(env, set, httpd.Config{})
		app, scenarios = srv, httpd.Scenarios(srv)
	case "sqldb/":
		env := simenv.New(seed, simenv.WithFDLimit(64))
		db := sqldb.New(env, set)
		app, scenarios = db, sqldb.Scenarios(db)
	case "desktop/":
		env := simenv.New(seed)
		d := desktop.New(env, set)
		app, scenarios = d, desktop.Scenarios(d)
	case "cache/":
		env := simenv.New(seed, simenv.WithFDLimit(64))
		srv := cache.New(env, set, cache.Config{Capacity: 16})
		app, scenarios = srv, cache.Scenarios(srv)
	default:
		return nil, zero, zero, fmt.Errorf("experiment: unknown mechanism namespace %q", primary)
	}
	scA, okA := scenarios[primary]
	scB, okB := scenarios[secondary]
	if !okA || !okB {
		return nil, zero, zero, fmt.Errorf("experiment: missing scenario for %q or %q", primary, secondary)
	}
	return app, scA, scB, nil
}

// Check asserts the experiment's gates: every sampler fits its declared
// distribution, the classifier recovers the sampled classes, every class's
// recovery rate stays within the drift band of the curated baseline, every
// episode mode was exercised, and the PR site reached its page floor.
func (r *CorpusReport) Check() error {
	for _, g := range r.GOF {
		if !g.Pass() {
			return fmt.Errorf("experiment: corpus check: sampler fails goodness of fit: %s", g.String())
		}
	}
	agree, total := 0, 0
	for _, st := range r.Classes {
		agree += st.Agreement.Hits
		total += st.Agreement.N
	}
	if total > 0 && float64(agree)/float64(total) < r.MinAgreement {
		return fmt.Errorf("experiment: corpus check: classifier agreement %d/%d below %.2f",
			agree, total, r.MinAgreement)
	}
	for _, st := range r.Classes {
		if st.Covered.N == 0 {
			continue
		}
		if d := st.DriftPoints(); d > r.DriftBand {
			return fmt.Errorf("experiment: corpus check: %s covered recovery rate %s drifts %.1f points from mechanism-matched baseline %.0f%% (band %.1f)",
				st.Class.Short(), st.Covered.Percent(), d, st.BaselineRate*100, r.DriftBand)
		}
	}
	for _, es := range r.EpisodeStats {
		if r.Episodes > 0 && es.NotLost.N == 0 {
			return fmt.Errorf("experiment: corpus check: no %s episodes sampled", es.Overlap)
		}
	}
	if r.SitePages < r.MinSitePages {
		return fmt.Errorf("experiment: corpus check: site has %d pages, floor %d", r.SitePages, r.MinSitePages)
	}
	if r.SiteGaps > 0 {
		return fmt.Errorf("experiment: corpus check: %d crawl gaps over %d pages", r.SiteGaps, r.SiteCrawled+r.SiteGaps)
	}
	return nil
}

// String renders the per-class matrix, the episode outcomes, the sampler
// fits, and the site emission.
func (r *CorpusReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CORPUS experiment (seed %d, %d faults, %d episodes):\nspec %s\n",
		r.Seed, r.Faults, r.Episodes, r.SpecText)
	tbl := &stats.Table{Header: []string{"class", "faults", "classified", "not-lost", "degraded", "covered", "baseline", "drift"}}
	for _, st := range r.Classes {
		tbl.Add(st.Class.Short(),
			fmt.Sprint(st.NotLost.N),
			st.Agreement.Percent(),
			st.NotLost.Percent(),
			fmt.Sprint(st.Degraded),
			st.Covered.Percent(),
			fmt.Sprintf("%.0f%%", st.BaselineRate*100),
			fmt.Sprintf("%.1fpt", st.DriftPoints()))
	}
	b.WriteString(tbl.String())
	etbl := &stats.Table{Header: []string{"overlap", "episodes", "not-lost", "degraded"}}
	for _, es := range r.EpisodeStats {
		etbl.Add(es.Overlap, fmt.Sprint(es.NotLost.N), es.NotLost.Percent(), fmt.Sprint(es.Degraded))
	}
	b.WriteString(etbl.String())
	for _, g := range r.GOF {
		fmt.Fprintf(&b, "gof %s\n", g.String())
	}
	fmt.Fprintf(&b, "site: %d pages (floor %d), crawled %d ok, %d gaps\n",
		r.SitePages, r.MinSitePages, r.SiteCrawled, r.SiteGaps)
	return b.String()
}
