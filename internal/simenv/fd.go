package simenv

import (
	"errors"
	"fmt"
	"sync"
)

// ErrFDExhausted is returned when the file-descriptor table is full — the
// study's "lack of file descriptors" environment condition.
var ErrFDExhausted = errors.New("simenv: file descriptor table exhausted")

// FD is a simulated file descriptor.
type FD int

// FDTable tracks open file descriptors and who owns them. Ownership lets a
// recovery system (or a resource garbage collector, paper §6.2) reclaim the
// descriptors of a failed application.
type FDTable struct {
	mu    sync.Mutex
	limit int
	next  FD
	open  map[FD]string // fd -> owner
}

func newFDTable(limit int) *FDTable {
	return &FDTable{
		limit: limit,
		next:  3, // 0-2 reserved, as on a real system
		open:  make(map[FD]string, limit),
	}
}

// Limit returns the table capacity.
func (t *FDTable) Limit() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}

// SetLimit changes the table capacity; the paper's §6.2 "dynamically increase
// the number of file descriptors" mitigation.
func (t *FDTable) SetLimit(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
}

// InUse returns the number of open descriptors.
func (t *FDTable) InUse() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// Open allocates a descriptor for owner. It fails with ErrFDExhausted when
// the table is full.
func (t *FDTable) Open(owner string) (FD, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.open) >= t.limit {
		return 0, ErrFDExhausted
	}
	fd := t.next
	t.next++
	t.open[fd] = owner
	return fd, nil
}

// Close releases a descriptor. Closing an unknown descriptor is an error (it
// would be a double close in the application).
func (t *FDTable) Close(fd FD) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.open[fd]; !ok {
		return fmt.Errorf("simenv: close of unopened fd %d", fd)
	}
	delete(t.open, fd)
	return nil
}

// Owner returns the owner of fd, or "" if it is not open.
func (t *FDTable) Owner(fd FD) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open[fd]
}

// OwnedBy returns how many descriptors the owner holds.
func (t *FDTable) OwnedBy(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, o := range t.open {
		if o == owner {
			n++
		}
	}
	return n
}

// ReleaseOwner closes every descriptor held by owner and returns how many
// were released.
func (t *FDTable) ReleaseOwner(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for fd, o := range t.open {
		if o == owner {
			delete(t.open, fd)
			n++
		}
	}
	return n
}
