// Package recoveryscope is a whole-program interprocedural static analysis
// that predicts, for every seeded fault-raise site, which recovery rung is
// the cheapest that can cure a fault there — before any fault ever fires.
//
// It extends faultlint's intraprocedural envsite judgment in three ways, on
// the same go/ast + go/types loader (stub imports, no export data):
//
//   - Environment flow: a call graph is built over every loaded package and
//     the trigger kinds of recognized environment operations are propagated
//     transitively, so a function that reaches DNS().Lookup three frames
//     down is environment-dependent at its call sites. A raise guarded by a
//     call into such a function inherits its class, using exactly the guard
//     regions (if/switch/for conditions and preceding simple siblings) the
//     envsite rule scans — so the intraprocedural verdicts are unchanged and
//     only sites envsite classified EI-by-ignorance can be reclassified.
//
//   - State taint: each function's write set — receiver struct fields,
//     package-level variables, externalized-store buckets — is collected
//     syntactically and propagated over the call graph. A raise site then
//     carries two taints: the path taint (writes in its guard regions, the
//     corruption the fault path performs before detection) and the function
//     taint (the enclosing function's transitive write set, the resources
//     the fault's code can hold).
//
//   - Component mapping: each application's Componentize decomposition is
//     read statically — component.Spec literals yield the component names,
//     dependency edges, and the write sets of their OnKill hooks (what a
//     crash-stop releases); the package's mechanism→component map literal
//     yields fault attribution. Taint is then expressed in component terms:
//     which components own the written fields, and whether a kill hook
//     releases them.
//
// The three feed a per-site prediction {class, owning component, blast
// radius, minimal rung} over the ladder retry < microreboot <
// subtree-reboot < restore < restart. The rung rules follow the paper's
// table 8 reasoning (what each class leaves behind decides what must be
// discarded to cure it); see DESIGN.md §12 for the exact lattice. The SCOPE
// experiment (internal/experiment, recoverylab -scope) validates the
// predictions against the seeded registry and against dynamic per-rung
// probes of every mechanism.
package recoveryscope
