package resilient

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// BreakerState is the lifecycle state of one host's circuit breaker. The
// state machine is the supervision layer's per-mechanism breaker
// (internal/supervise) extracted to the HTTP client: closed admits traffic,
// open fails it fast, half-open admits one trial request after the cooldown
// and lets its outcome decide.
type BreakerState int

const (
	// BreakerClosed admits requests normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails requests fast without touching the network.
	BreakerOpen
	// BreakerHalfOpen admits one trial request after the cooldown.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// hostBreaker is one host's breaker record.
type hostBreaker struct {
	state       BreakerState
	consecutive int
	openedAt    time.Duration
}

// Breaker is a per-host circuit breaker set, safe for concurrent use by any
// number of clients — sharing one Breaker across clients is the intended
// deployment, so every client stops hammering a host any one of them has
// found down. The paper's rationale carries over from the supervisor: a
// host that fails every attempt is exhibiting a nontransient condition, and
// spending retries on it recovers nothing.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	hosts     map[string]*hostBreaker
}

// NewBreaker builds a breaker set that opens a host after threshold
// consecutive failures and admits a half-open trial after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, hosts: make(map[string]*hostBreaker)}
}

// get returns (creating if needed) the host's record. Callers hold the lock.
func (b *Breaker) get(host string) *hostBreaker {
	hb, ok := b.hosts[host]
	if !ok {
		hb = &hostBreaker{}
		b.hosts[host] = hb
	}
	return hb
}

// Allow reports whether a request to host may proceed. An open breaker whose
// cooldown has passed transitions to half-open and admits one trial.
func (b *Breaker) Allow(host string, now time.Duration) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.get(host)
	if hb.state == BreakerOpen {
		if now-hb.openedAt >= b.cooldown {
			hb.state = BreakerHalfOpen
			return true
		}
		return false
	}
	return true
}

// Failure records one failed request to host and reports whether the
// breaker newly opened. A failed half-open trial re-opens immediately.
func (b *Breaker) Failure(host string, now time.Duration) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.get(host)
	hb.consecutive++
	if hb.state == BreakerHalfOpen || hb.consecutive >= b.threshold {
		wasOpen := hb.state == BreakerOpen
		hb.state = BreakerOpen
		hb.openedAt = now
		return !wasOpen
	}
	return false
}

// Success records a served request: the host is healthy, so the breaker
// closes and the failure streak resets.
func (b *Breaker) Success(host string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.get(host)
	hb.state = BreakerClosed
	hb.consecutive = 0
}

// State returns host's current breaker state.
func (b *Breaker) State(host string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if hb, ok := b.hosts[host]; ok {
		return hb.state
	}
	return BreakerClosed
}

// Hosts returns the tracked hosts, sorted, for reports and tests.
func (b *Breaker) Hosts() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.hosts))
	for h := range b.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
