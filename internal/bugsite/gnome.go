package bugsite

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"faultstudy/internal/corpus"
	"faultstudy/internal/taxonomy"
)

// gnomeSeverityName renders a taxonomy severity in debbugs spelling.
func gnomeSeverityName(s taxonomy.Severity) string {
	switch s {
	case taxonomy.SeverityCritical:
		return "grave"
	case taxonomy.SeveritySerious:
		return "important"
	case taxonomy.SeverityMinor:
		return "minor"
	case taxonomy.SeverityWishlist:
		return "wishlist"
	default:
		return "normal"
	}
}

// debbugsLog renders one debbugs bug log.
func debbugsLog(number int, pkg, severity, version, subject, body string, filed time.Time, followUps []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bug: #%d\n", number)
	fmt.Fprintf(&b, "Package: %s\n", pkg)
	fmt.Fprintf(&b, "Severity: %s\n", severity)
	if version != "" {
		fmt.Fprintf(&b, "Version: %s\n", version)
	}
	fmt.Fprintf(&b, "Subject: %s\n", subject)
	fmt.Fprintf(&b, "Date: %s\n", filed.Format(time.RFC1123Z))
	b.WriteString("\n")
	b.WriteString(body)
	b.WriteString("\n")
	for i, f := range followUps {
		fmt.Fprintf(&b, "\nMessage #%d\n%s\n", i+2, f)
	}
	return b.String()
}

// GnomeBugs generates the simulated bugs.gnome.org logs plus the matching
// cvs.gnome.org fix log. The returned map is bug number -> log text.
func GnomeBugs(cfg Config) (bugs map[int]string, cvsLog string) {
	cfg = cfg.withDefaults(320)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	bugs = make(map[int]string)
	next := 101

	var cvs strings.Builder
	for _, f := range faultsSorted(corpus.Gnome()) {
		followUps := []string{
			"Reproduced here, raising severity.",
			fmt.Sprintf("Fixed in CVS. %s", f.Fix),
		}
		if f.Fix == "" {
			followUps = followUps[:1]
		}
		body := f.Description + "\n\nHow to reproduce:\n" + f.HowToRepeat
		bugs[next] = debbugsLog(next, f.Component, gnomeSeverityName(f.Severity),
			f.Release, f.Synopsis, body, f.Filed, followUps)
		if f.Fix != "" {
			fmt.Fprintf(&cvs, "RCS file: /cvs/gnome/%s/%s.c,v\n----------------------------\nrevision 1.%d\ndate: %s;  author: dev;\nFixes bug #%d: %s\n----------------------------\n",
				f.Component, strings.ReplaceAll(f.Component, "-", "_"),
				10+next%80, f.Filed.AddDate(0, 0, 10).Format("2006/01/02 15:04:05"), next, f.Fix)
		}
		next++
		for d := 0; d < dupCount(rng, cfg.DuplicateRate); d++ {
			filed := f.Filed.AddDate(0, 0, 5*(d+1)+rng.Intn(6))
			bugs[next] = debbugsLog(next, f.Component, gnomeSeverityName(f.Severity),
				f.Release, f.Synopsis,
				dupText(rng, f.Description+"\n"+f.HowToRepeat), filed, nil)
			next++
		}
	}

	for i := 0; i < cfg.NoiseReports; i++ {
		n := gnomeNoise(rng, i)
		bugs[next] = debbugsLog(next, n.category, n.severity, n.release,
			n.synopsis, n.description+"\n"+n.howto,
			time.Date(1999, time.Month(1+i%12), 1+i%27, 15, 0, 0, 0, time.UTC), nil)
		next++
	}
	return bugs, cvs.String()
}

// gnomeNoise synthesizes one non-qualifying GNOME report.
func gnomeNoise(rng *rand.Rand, i int) noiseReport {
	kinds := []noiseReport{
		{
			category: "panel", synopsis: "clock applet should support 24-hour format per locale",
			severity: "wishlist", release: "1.0",
			description: "It would be nice if the clock followed the locale's hour format automatically.",
			howto:       "Feature request.",
		},
		{
			category: "gnumeric", synopsis: "column width slightly off after csv import",
			severity: "minor", release: "1.0",
			description: "Imported columns are a few pixels narrower than expected; purely cosmetic.",
			howto:       "Import any csv and compare widths.",
		},
		{
			category: "gmc", synopsis: "icon label wraps awkwardly for very long filenames",
			severity: "minor", release: "1.0",
			description: "Long names wrap mid-word in icon view. Cosmetic.",
			howto:       "Create a file with a 60-character name.",
		},
		{
			category: "gnome-pim", synopsis: "calendar prints with wide margins",
			severity: "normal", release: "1.0",
			description: "Printed month views waste paper with 2-inch margins.",
			howto:       "Print any month view.",
		},
		{
			category: "gnome-core", synopsis: "session manager forgets window positions on cvs build",
			severity: "grave", release: "1.0.50-cvs",
			description: "On a CVS snapshot the session manager restores every window at 0,0.",
			howto:       "Log out and back in on a cvs build.",
		},
		{
			category: "docs", synopsis: "help browser shows stale screenshots",
			severity: "normal", release: "1.0",
			description: "The user guide screenshots are from an older theme.",
			howto:       "Open any help chapter.",
		},
	}
	n := kinds[i%len(kinds)]
	n.synopsis = fmt.Sprintf("%s (report %d)", n.synopsis, rng.Intn(1000))
	n.description = fmt.Sprintf("%s Seen by user u%03d.", n.description, i)
	return n
}

// NewGnomeSite serves the simulated bugs.gnome.org plus cvs.gnome.org: a
// paged bug index, one page per bug log, and the CVS fix log.
func NewGnomeSite(cfg Config) http.Handler {
	bugs, cvsLog := GnomeBugs(cfg)
	pages := make(serveIndexed, len(bugs)+3)

	numbers := make([]int, 0, len(bugs))
	for n := range bugs {
		numbers = append(numbers, n)
	}
	sort.Ints(numbers)

	const perPage = 100
	var indexLinks []string
	for start := 0; start < len(numbers); start += perPage {
		end := start + perPage
		if end > len(numbers) {
			end = len(numbers)
		}
		var b strings.Builder
		b.WriteString("<h1>GNOME Bug Tracking System</h1>\n<ul>\n")
		for _, n := range numbers[start:end] {
			fmt.Fprintf(&b, `<li><a href="/bugs/%d">Bug #%d</a></li>`+"\n", n, n)
		}
		b.WriteString("</ul>\n")
		fmt.Fprintf(&b, `<p><a href="/cvs/log">CVS fix log</a></p>`+"\n")
		path := fmt.Sprintf("/bugs/index/%d", start/perPage+1)
		if start == 0 {
			path = "/bugs/"
		}
		indexLinks = append(indexLinks, path)
		pages[path] = b.String()
	}
	for i, path := range indexLinks {
		var nav strings.Builder
		nav.WriteString(pages[path])
		if i+1 < len(indexLinks) {
			fmt.Fprintf(&nav, `<p><a href="%s">next page</a></p>`+"\n", indexLinks[i+1])
		}
		pages[path] = htmlPage("GNOME bugs", nav.String())
	}

	for n, text := range bugs {
		pages[fmt.Sprintf("/bugs/%d", n)] = htmlPage(
			fmt.Sprintf("Bug #%d", n),
			fmt.Sprintf("<h1>Bug #%d</h1>\n%s", n, preBlock(text)))
	}
	pages["/cvs/log"] = htmlPage("CVS log", preBlock(cvsLog))
	return pages
}
