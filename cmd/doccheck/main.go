// Command doccheck enforces the documentation contract on the packages whose
// godoc is part of the deliverable: every exported identifier — functions,
// methods, types, constants, variables, struct fields, and interface methods
// — must carry a doc comment. CI runs it over internal/obsv,
// internal/supervise, and internal/recovery and fails on any finding.
//
// Usage:
//
//	doccheck ./internal/obsv ./internal/supervise ./internal/recovery
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: usage: doccheck <package-dir> ...")
		os.Exit(2)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages clean\n", len(dirs))
}

// checkDir parses one package directory (tests excluded) and returns one
// finding line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		rel := p.Filename
		if r, err := filepath.Rel(".", p.Filename); err == nil {
			rel = r
		}
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", rel, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// funcKind says whether a FuncDecl is a function or a method, for messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl checks the specs of one const/var/type declaration.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	// A single-spec declaration may carry its doc on the GenDecl.
	declDoc := d.Doc != nil && len(d.Specs) == 1
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && !declDoc {
				report(s.Pos(), "type", s.Name.Name)
			}
			checkTypeBody(s, report)
		case *ast.ValueSpec:
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if s.Doc == nil && s.Comment == nil && !declDoc {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// checkTypeBody checks exported struct fields and interface methods of an
// exported type.
func checkTypeBody(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	if !s.Name.IsExported() {
		return
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() && f.Doc == nil && f.Comment == nil {
					report(name.Pos(), "field", s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() && m.Doc == nil && m.Comment == nil {
					report(name.Pos(), "interface method", s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}
