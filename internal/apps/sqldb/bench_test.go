package sqldb

import (
	"fmt"
	"testing"

	"faultstudy/internal/simenv"
)

func benchServer(b *testing.B) *Server {
	b.Helper()
	env := simenv.New(1, simenv.WithDiskBytes(1<<30), simenv.WithMaxFileSize(1<<28))
	srv := New(env, nil)
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	return srv
}

func BenchmarkParseSelect(b *testing.B) {
	const q = "SELECT k, name FROM t WHERE k >= 100 ORDER BY name DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	srv := benchServer(b)
	if _, err := srv.Exec("CREATE TABLE t (k INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row')", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedSelect(b *testing.B) {
	srv := benchServer(b)
	if _, err := srv.Exec("CREATE TABLE t (k INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Exec("CREATE INDEX ki ON t (k)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := srv.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := srv.Exec("SELECT name FROM t WHERE k = 999")
		if err != nil || len(rs.Rows) != 1 {
			b.Fatalf("rows=%v err=%v", rs, err)
		}
	}
}

func BenchmarkScanOrderBy(b *testing.B) {
	srv := benchServer(b)
	if _, err := srv.Exec("CREATE TABLE t (k INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := srv.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", (i*7919)%1000, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Exec("SELECT * FROM t WHERE k < 500 ORDER BY k LIMIT 50"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	b.ReportAllocs()
	bt := newBTree()
	for i := 0; i < b.N; i++ {
		bt.Insert(IntValue(int64(i%100000)), i)
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	bt := newBTree()
	for i := 0; i < 100000; i++ {
		bt.Insert(IntValue(int64(i)), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := bt.Lookup(IntValue(int64(i % 100000))); len(rows) != 1 {
			b.Fatal("lookup miss")
		}
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	srv := benchServer(b)
	if _, err := srv.Exec("CREATE TABLE t (k INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := srv.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := srv.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		srv.Stop()
		if err := srv.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}
