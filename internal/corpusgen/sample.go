package corpusgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"faultstudy/internal/apps/cache"
	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/parallel"
	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// GenFault is one sampled fault. Every field is a pure function of
// (spec, seed, Index).
type GenFault struct {
	// Index is the fault's position in the population.
	Index int `json:"index"`
	// ID is the stable identifier, "gen/<index>".
	ID string `json:"id"`
	// App is the application the fault lives in.
	App taxonomy.Application `json:"app"`
	// AppName is the mechanism namespace (httpd, sqldb, desktop, cache).
	AppName string `json:"appName"`
	// Class is the sampled fault class; the mechanism's trigger implies it.
	Class taxonomy.FaultClass `json:"class"`
	// Trigger is the mechanism's environmental trigger kind.
	Trigger taxonomy.TriggerKind `json:"trigger"`
	// Defect is the sampled defect type (memory, logic, interface,
	// concurrency, resource).
	Defect string `json:"defect"`
	// Mechanism is the runnable seeded-bug key drawn from the fault's
	// (app, class) pool.
	Mechanism string `json:"mechanism"`
	// Lifetime is the sampled bug lifetime.
	Lifetime time.Duration `json:"lifetime"`
	// LifetimeText is the raw distribution value the lifetime was drawn as
	// (the goodness-of-fit bucket).
	LifetimeText string `json:"lifetimeText"`
	// Severity is the tracker-style severity annotation.
	Severity taxonomy.Severity `json:"severity"`
	// Symptom is the tracker-style failure symptom annotation.
	Symptom taxonomy.Symptom `json:"symptom"`
}

// Episode is one sampled two-fault episode: a second fault striking the same
// application while the primary fault's episode is open (for example, an EDT
// latency spike during an EDN descriptor leak).
type Episode struct {
	// Index is the episode's position.
	Index int `json:"index"`
	// Primary is the population index of the primary fault.
	Primary int `json:"primary"`
	// PrimaryMechanism is the primary fault's mechanism key.
	PrimaryMechanism string `json:"primaryMechanism"`
	// Secondary is the second mechanism, same application, never the
	// primary's own key.
	Secondary string `json:"secondary"`
	// SecondaryClass is the second fault's sampled class.
	SecondaryClass taxonomy.FaultClass `json:"secondaryClass"`
	// Overlap is the co-occurrence mode: "concurrent" (both active at once)
	// or "cascade" (the second strikes Gap after the first).
	Overlap string `json:"overlap"`
	// Gap is the cascade inter-fault gap (meaningful only for cascade).
	Gap time.Duration `json:"gap"`
	// GapText is the raw distribution value the gap was drawn as (the
	// goodness-of-fit bucket).
	GapText string `json:"gapText"`
}

// Registry returns the extended mechanism catalogue the generator samples
// from: the paper's three applications plus the cache extension archetype.
func Registry() *faultinject.Registry {
	r := faultinject.NewRegistry()
	httpd.RegisterMechanisms(r)
	sqldb.RegisterMechanisms(r)
	desktop.RegisterMechanisms(r)
	cache.RegisterMechanisms(r)
	return r
}

// Corpus is a generative fault population: a spec, a root seed, and the
// mechanism pools sampling draws from. Every accessor is safe for concurrent
// use; FaultAt and EpisodeAt are pure functions of their index.
type Corpus struct {
	spec  *Spec
	seed  int64
	mechs map[string]faultinject.Mechanism
	// pools[appName][class] lists mechanism keys in sorted order; all[appName]
	// is the app's full sorted pool.
	pools map[string]map[taxonomy.FaultClass][]string
	all   map[string][]string
}

// New builds a corpus over the spec with the given root seed.
func New(spec *Spec, seed int64) *Corpus {
	reg := Registry()
	c := &Corpus{
		spec:  spec,
		seed:  seed,
		mechs: make(map[string]faultinject.Mechanism),
		pools: make(map[string]map[taxonomy.FaultClass][]string, len(appValues)),
		all:   make(map[string][]string, len(appValues)),
	}
	for name, app := range appValues {
		byClass := make(map[taxonomy.FaultClass][]string, 3)
		for _, m := range reg.ByApp(app) {
			c.mechs[m.Key] = m
			byClass[m.Class()] = append(byClass[m.Class()], m.Key)
			c.all[name] = append(c.all[name], m.Key)
		}
		for _, class := range taxonomy.Classes() {
			if len(byClass[class]) == 0 {
				// Every registered application ships mechanisms in all three
				// classes; a hole here is a registration bug, not data.
				panic(fmt.Sprintf("corpusgen: app %s has no %s mechanisms", name, class))
			}
		}
		c.pools[name] = byClass
	}
	return c
}

// Spec returns the corpus spec.
func (c *Corpus) Spec() *Spec { return c.spec }

// Seed returns the root seed.
func (c *Corpus) Seed() int64 { return c.seed }

// Derived-seed stream layout: fault i draws from index i, episode j from
// Faults+j, and the PR site's duplicate counts from Faults+Episodes onward —
// disjoint streams off one root seed.
func (c *Corpus) episodeStream(j int) int64 {
	return parallel.Derive(c.seed, uint64(c.spec.Faults)+uint64(j))
}

// FaultAt samples fault i: class, application, defect type, and lifetime
// are independent draws from the spec's distributions; the runnable
// mechanism is drawn uniformly from the (application, class) pool, so the
// mechanism's trigger always implies the sampled class.
func (c *Corpus) FaultAt(i int) *GenFault {
	rng := rand.New(rand.NewSource(parallel.Derive(c.seed, uint64(i))))
	classKey := c.spec.Class.Sample(rng.Float64())
	class := classValues[classKey]
	appName := c.spec.App.Sample(rng.Float64())
	defect := c.spec.Defect.Sample(rng.Float64())
	lifeText := c.spec.Lifetime.Sample(rng.Float64())
	life, err := parseSpan(lifeText)
	if err != nil {
		panic(fmt.Sprintf("corpusgen: spec-validated span %q failed: %v", lifeText, err))
	}
	pool := c.pools[appName][class]
	mech := pool[rng.Intn(len(pool))]
	severity := taxonomy.SeveritySerious
	if rng.Float64() < 0.3 {
		severity = taxonomy.SeverityCritical
	}
	symptom := taxonomy.SymptomCrash
	switch u := rng.Float64(); {
	case u >= 0.85:
		symptom = taxonomy.SymptomHang
	case u >= 0.60:
		symptom = taxonomy.SymptomError
	}
	return &GenFault{
		Index:        i,
		ID:           fmt.Sprintf("gen/%06d", i),
		App:          appValues[appName],
		AppName:      appName,
		Class:        class,
		Trigger:      c.mechs[mech].Trigger,
		Defect:       defect,
		Mechanism:    mech,
		Lifetime:     life,
		LifetimeText: lifeText,
		Severity:     severity,
		Symptom:      symptom,
	}
}

// EpisodeAt samples episode j: a uniform primary fault, an overlap mode and
// gap from the spec, and a second mechanism drawn from the primary's
// application at an independently sampled class — preferring a different
// mechanism of that class, falling back to any other mechanism of the app
// when the sampled class pool holds only the primary itself.
func (c *Corpus) EpisodeAt(j int) *Episode {
	rng := rand.New(rand.NewSource(c.episodeStream(j)))
	primary := rng.Intn(c.spec.Faults)
	pf := c.FaultAt(primary)
	overlap := c.spec.Overlap.Sample(rng.Float64())
	gapText := c.spec.Gap.Sample(rng.Float64())
	gap, err := parseSpan(gapText)
	if err != nil {
		panic(fmt.Sprintf("corpusgen: spec-validated span %q failed: %v", gapText, err))
	}
	secClass := classValues[c.spec.Class.Sample(rng.Float64())]
	cands := exclude(c.pools[pf.AppName][secClass], pf.Mechanism)
	if len(cands) == 0 {
		cands = exclude(c.all[pf.AppName], pf.Mechanism)
	}
	sec := cands[rng.Intn(len(cands))]
	return &Episode{
		Index:            j,
		Primary:          primary,
		PrimaryMechanism: pf.Mechanism,
		Secondary:        sec,
		SecondaryClass:   c.mechs[sec].Class(),
		Overlap:          overlap,
		Gap:              gap,
		GapText:          gapText,
	}
}

// exclude returns pool without key, preserving order.
func exclude(pool []string, key string) []string {
	out := make([]string, 0, len(pool))
	for _, k := range pool {
		if k != key {
			out = append(out, k)
		}
	}
	return out
}

// Faults samples the whole population on a pool of workers (0 or negative
// means one per processor), in population order regardless of worker count.
func (c *Corpus) Faults(workers int) ([]*GenFault, error) {
	return parallel.MapOrdered(workers, c.spec.Faults, func(i int) (*GenFault, error) {
		return c.FaultAt(i), nil
	})
}

// Episodes samples every episode, in order, on a pool of workers.
func (c *Corpus) Episodes(workers int) ([]*Episode, error) {
	return parallel.MapOrdered(workers, c.spec.Episodes, func(j int) (*Episode, error) {
		return c.EpisodeAt(j), nil
	})
}

// WriteJSONL writes the population — faults, then episodes — as one JSON
// line each. The stream is byte-identical at every worker count.
func (c *Corpus) WriteJSONL(w io.Writer, workers int) error {
	faults, err := c.Faults(workers)
	if err != nil {
		return err
	}
	episodes, err := c.Episodes(workers)
	if err != nil {
		return err
	}
	for _, f := range faults {
		if err := writeJSONLine(w, f); err != nil {
			return err
		}
	}
	for _, e := range episodes {
		if err := writeJSONLine(w, e); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONLine marshals one value as a JSONL record.
func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("corpusgen: marshal: %w", err)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("corpusgen: write: %w", err)
	}
	return nil
}

// Report renders the fault as the normalized bug report the classifier
// grades: the defect prose describes the code-level bug, and the
// how-to-repeat carries either the deterministic every-time language (EI) or
// the mechanism trigger's environmental language (EDN/EDT), mirroring how
// the study's reporters actually wrote.
func (f *GenFault) Report() *report.Report {
	return &report.Report{
		ID:          f.ID,
		App:         f.App,
		Synopsis:    f.synopsis(),
		Description: f.description(),
		HowToRepeat: f.howToRepeat(),
		Severity:    f.Severity,
		Symptom:     f.Symptom,
		Filed:       filedDate(f.Index),
		Production:  true,
	}
}

// filedDate spreads filing dates deterministically over the study window.
func filedDate(i int) time.Time {
	base := time.Date(1998, time.March, 1, 0, 0, 0, 0, time.UTC)
	return base.AddDate(0, 0, i%900)
}
