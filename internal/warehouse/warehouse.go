// Package warehouse is the resumable experiment-result store: a keyed,
// append-only record file on the real file system, using the same
// length-prefixed, CRC-checksummed, seq-numbered wire format as the
// simulated durable store (internal/durable). The experiment harness writes
// each completed unit of work as soon as it finishes and syncs before
// acknowledging, so killing the harness mid-sweep loses at most the record
// being appended; Open truncates a torn tail and hands back everything that
// was acknowledged, which is what lets `recoverylab -resume` continue a
// sweep from the last durable boundary and reproduce an uninterrupted run
// byte-identically.
package warehouse

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"faultstudy/internal/durable"
)

// Info reports what Open had to do to reach a consistent state.
type Info struct {
	// Records is the number of acknowledged records recovered.
	Records int
	// TruncatedBytes is how many damaged trailing bytes were cut from the
	// file (0 for a clean open).
	TruncatedBytes int64
	// Torn is true when the file ended in an incomplete record — the
	// expected aftermath of a mid-append kill.
	Torn bool
	// Corrupt is true when a checksum or structural failure was detected;
	// like a torn tail it truncates the file, but it is never the result
	// of a clean kill.
	Corrupt bool
}

// Warehouse is a keyed record store over one real file. Writes are
// append-only WAL records (seq-numbered, CRC-checksummed) synced before
// acknowledgement; later records for the same key supersede earlier ones.
// Safe for concurrent use.
type Warehouse struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	state map[string][]byte
	seq   uint64
}

// Open loads (creating if absent) the warehouse file at path, replaying its
// records and truncating at the first torn or corrupt one. The returned
// Info says what recovery found.
func Open(path string) (*Warehouse, *Info, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("warehouse: open %q: %w", path, err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warehouse: read %q: %w", path, err)
	}
	recs, valid, rerr := durable.ReadWAL(raw)
	info := &Info{Records: len(recs)}
	w := &Warehouse{path: path, f: f, state: make(map[string][]byte, len(recs))}
	for _, rec := range recs {
		for _, op := range rec.Ops {
			switch op.Kind {
			case durable.OpPut:
				w.state[op.Key] = op.Value
			case durable.OpDelete:
				delete(w.state, op.Key)
			case durable.OpClear:
				w.state = make(map[string][]byte)
			}
		}
		w.seq = rec.Seq
	}
	if rerr != nil {
		info.Torn = errors.Is(rerr, durable.ErrTornTail)
		info.Corrupt = errors.Is(rerr, durable.ErrCorrupt)
		info.TruncatedBytes = int64(len(raw) - valid)
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("warehouse: repair %q: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warehouse: seek %q: %w", path, err)
	}
	return w, info, nil
}

// Put durably stores value under key: the record is appended and fsynced
// before Put returns nil, so an acknowledged record survives a kill of the
// writing process.
func (w *Warehouse) Put(key string, value []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("warehouse: closed")
	}
	buf := durable.AppendRecord(nil, durable.Record{
		Seq: w.seq + 1,
		Ops: []durable.Op{{Kind: durable.OpPut, Key: key, Value: value}},
	})
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("warehouse: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("warehouse: sync: %w", err)
	}
	w.seq++
	w.state[key] = append([]byte(nil), value...)
	return nil
}

// Get returns the value stored under key.
func (w *Warehouse) Get(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v, ok := w.state[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Has reports whether key is stored.
func (w *Warehouse) Has(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.state[key]
	return ok
}

// Keys returns every stored key in sorted order.
func (w *Warehouse) Keys() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]string, 0, len(w.state))
	for k := range w.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored keys.
func (w *Warehouse) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.state)
}

// Close releases the underlying file. Pending records are already synced —
// closing is crash-equivalent by design.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
