// Package simenv simulates the operating environment of the study's
// applications: file-descriptor and process tables, a disk with capacity and
// file-size limits, a DNS service, a network, a thread scheduler, a kernel
// entropy pool, and a virtual clock.
//
// The package is the mechanical embodiment of the paper's §3 argument (after
// Dijkstra): given a fixed operating environment, a set of concurrent
// sequential processes is completely deterministic, and every
// non-deterministic execution is due to a change in the operating
// environment. Everything random in simenv flows from one seeded generator,
// so two Env values built with the same seed behave identically; recovery
// experiments change behaviour only by explicitly perturbing the environment
// (advancing time, re-rolling the scheduler, healing the DNS, ...).
package simenv

import (
	"math/rand"
	"sync"
	"time"
)

// Option configures an Env.
type Option func(*config)

type config struct {
	seed        int64
	fdLimit     int
	procLimit   int
	diskBytes   int64
	maxFileSize int64
	entropyBits int
	hostname    string
}

// WithFDLimit sets the per-process file-descriptor limit.
func WithFDLimit(n int) Option { return func(c *config) { c.fdLimit = n } }

// WithProcLimit sets the process-table size.
func WithProcLimit(n int) Option { return func(c *config) { c.procLimit = n } }

// WithDiskBytes sets the file-system capacity in bytes.
func WithDiskBytes(n int64) Option { return func(c *config) { c.diskBytes = n } }

// WithMaxFileSize sets the maximum allowed size of a single file (the study's
// "size of log file is greater than maximum allowed file size" condition).
func WithMaxFileSize(n int64) Option { return func(c *config) { c.maxFileSize = n } }

// WithEntropyBits sets the initial /dev/random pool size in bits.
func WithEntropyBits(n int) Option { return func(c *config) { c.entropyBits = n } }

// WithHostname sets the machine's hostname.
func WithHostname(h string) Option { return func(c *config) { c.hostname = h } }

// Env is a simulated operating environment. All methods are safe for
// concurrent use.
type Env struct {
	mu       sync.Mutex
	rng      *rand.Rand
	now      time.Time
	start    time.Time
	hostname string

	fds     *FDTable
	procs   *ProcTable
	disk    *Disk
	dns     *DNS
	net     *Network
	sched   *Scheduler
	entropy *EntropyPool
}

// New builds an environment with the given seed. Two environments built with
// the same seed and options are behaviourally identical.
func New(seed int64, opts ...Option) *Env {
	cfg := config{
		seed:        seed,
		fdLimit:     256,
		procLimit:   128,
		diskBytes:   64 << 20, // 64 MiB
		maxFileSize: 16 << 20, // 16 MiB
		entropyBits: 4096,
		hostname:    "darkstar",
	}
	for _, o := range opts {
		o(&cfg)
	}
	rng := rand.New(rand.NewSource(seed))
	epoch := time.Date(1999, 10, 1, 0, 0, 0, 0, time.UTC)
	e := &Env{
		rng:      rng,
		now:      epoch,
		start:    epoch,
		hostname: cfg.hostname,
	}
	e.fds = newFDTable(cfg.fdLimit)
	e.procs = newProcTable(cfg.procLimit)
	e.disk = newDisk(cfg.diskBytes, cfg.maxFileSize)
	e.dns = newDNS(rng)
	e.net = newNetwork()
	e.sched = newScheduler(rng)
	e.entropy = newEntropyPool(cfg.entropyBits)
	return e
}

// FDs returns the file-descriptor table.
func (e *Env) FDs() *FDTable { return e.fds }

// Procs returns the process table.
func (e *Env) Procs() *ProcTable { return e.procs }

// Disk returns the file system.
func (e *Env) Disk() *Disk { return e.disk }

// DNS returns the name service.
func (e *Env) DNS() *DNS { return e.dns }

// Net returns the network.
func (e *Env) Net() *Network { return e.net }

// Sched returns the thread scheduler.
func (e *Env) Sched() *Scheduler { return e.sched }

// Entropy returns the kernel entropy pool.
func (e *Env) Entropy() *EntropyPool { return e.entropy }

// Hostname returns the current hostname.
func (e *Env) Hostname() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hostname
}

// SetHostname changes the hostname while applications may be running — one of
// the study's environment-dependent-nontransient GNOME triggers.
func (e *Env) SetHostname(h string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hostname = h
}

// Now returns the current virtual time.
func (e *Env) Now() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Monotonic returns how far the virtual clock has advanced since the
// environment was created — a monotonic reading that only Advance moves.
// Supervision layers use it for crash-loop windows, retry budgets, and
// breaker cooldowns, so those policies are deterministic under test: two
// environments built with the same seed advance their monotonic clocks
// identically.
func (e *Env) Monotonic() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now.Sub(e.start)
}

// Advance moves the virtual clock forward and lets time-healing components
// (DNS outages, network slowness, entropy replenishment) progress. It models
// "retry the operation at a later time": the external world changes even
// though the application did nothing.
func (e *Env) Advance(d time.Duration) {
	e.mu.Lock()
	e.now = e.now.Add(d)
	e.mu.Unlock()
	e.dns.advance(d)
	e.net.advance(d)
	e.entropy.advance(d)
}

// Reroll re-seeds the scheduler's interleaving choices from the environment's
// generator. A retry after recovery observes fresh interleavings — the
// mechanism by which race-triggered faults clear on retry.
func (e *Env) Reroll() {
	e.mu.Lock()
	seed := e.rng.Int63()
	e.mu.Unlock()
	e.sched.reseed(seed)
}

// ReclaimOwner releases every environment resource held by the given owner:
// file descriptors, processes, and bound ports. This models the recovery
// system killing all processes related to the application and freeing their
// resources (the paper's process-table and port-squatting transients).
func (e *Env) ReclaimOwner(owner string) {
	e.fds.ReleaseOwner(owner)
	e.procs.KillOwner(owner)
	e.net.ReleaseOwnerPorts(owner)
}
