package classify

import (
	"testing"

	"faultstudy/internal/corpus"
	"faultstudy/internal/report"
)

func BenchmarkClassifyOne(b *testing.B) {
	c := New(Options{})
	r := corpus.All()[0].Report()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Classify(r)
	}
}

func BenchmarkClassifyCorpus(b *testing.B) {
	c := New(Options{})
	reports := make([]*report.Report, 0, 139)
	for _, f := range corpus.All() {
		reports = append(reports, f.Report())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reports {
			_ = c.Classify(r)
		}
	}
	b.ReportMetric(float64(len(reports)), "reports/iter")
}

func BenchmarkEvaluate(b *testing.B) {
	c := New(Options{})
	faults := corpus.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm := Evaluate(c, faults)
		if cm.Accuracy() != 1.0 {
			b.Fatal("accuracy regression")
		}
	}
}
