// Package debbugs parses debbugs-style bug logs — the format of the GNOME
// bug tracker (bugs.gnome.org) the study mined. A debbugs log is a control
// header (Package:, Severity:, Version:, Tags:, Date:) followed by the
// original submission and the follow-up messages, each introduced by a
// "Message #N" separator line. Fix information arrives either in follow-ups
// or in a linked CVS commit record (cvs.gnome.org in the study), which this
// package accepts as an optional supplement.
package debbugs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"faultstudy/internal/gnats"
	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// Bug is a parsed debbugs log.
type Bug struct {
	// Number is the bug number.
	Number int
	// Package is the GNOME module (panel, gnome-pim, gnumeric, gmc, or a
	// core library).
	Package string
	// Severity is the raw severity field.
	Severity string
	// Version is the reported module version.
	Version string
	// Tags holds the debbugs tags.
	Tags []string
	// Date is the submission date.
	Date time.Time
	// Submission is the original report text. The first paragraph serves as
	// the synopsis if no Subject line is present.
	Subject string
	// Body is the submission body.
	Body string
	// FollowUps holds the follow-up message bodies in order.
	FollowUps []string
}

// Parse reads one debbugs bug log.
func Parse(r io.Reader) (*Bug, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)

	b := &Bug{}
	var (
		inHeader = true
		sections [][]string
		current  []string
	)
	for sc.Scan() {
		line := sc.Text()
		if inHeader {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" {
				inHeader = false
				continue
			}
			key, val, ok := strings.Cut(trimmed, ":")
			if !ok {
				return nil, fmt.Errorf("debbugs: malformed header line %q", line)
			}
			val = strings.TrimSpace(val)
			switch strings.ToLower(key) {
			case "bug":
				n, err := strconv.Atoi(strings.TrimPrefix(val, "#"))
				if err != nil {
					return nil, fmt.Errorf("debbugs: bad bug number %q: %w", val, err)
				}
				b.Number = n
			case "package":
				b.Package = val
			case "severity":
				b.Severity = val
			case "version":
				b.Version = val
			case "tags":
				b.Tags = strings.Fields(val)
			case "subject":
				b.Subject = val
			case "date":
				for _, layout := range []string{time.RFC1123Z, time.RFC1123, "2006-01-02", "Mon, 2 Jan 2006 15:04:05 -0700"} {
					if t, err := time.Parse(layout, val); err == nil {
						b.Date = t.UTC()
						break
					}
				}
			}
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(line), "Message #") {
			sections = append(sections, current)
			current = nil
			continue
		}
		current = append(current, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("debbugs: scan: %w", err)
	}
	sections = append(sections, current)

	if b.Number == 0 {
		return nil, fmt.Errorf("debbugs: missing Bug header")
	}
	if len(sections) > 0 {
		b.Body = strings.TrimSpace(strings.Join(sections[0], "\n"))
	}
	for _, s := range sections[1:] {
		if text := strings.TrimSpace(strings.Join(s, "\n")); text != "" {
			b.FollowUps = append(b.FollowUps, text)
		}
	}
	if b.Subject == "" {
		// First non-empty line of the body doubles as the synopsis.
		for _, l := range strings.Split(b.Body, "\n") {
			if t := strings.TrimSpace(l); t != "" {
				b.Subject = t
				break
			}
		}
	}
	return b, nil
}

// CVSCommit is a fix record from the module's CVS history — the study's
// second GNOME source (cvs.gnome.org).
type CVSCommit struct {
	// Revision is the CVS revision string.
	Revision string
	// Module is the module path.
	Module string
	// Log is the commit log message.
	Log string
	// BugNumber is the bug the commit claims to fix (0 when unstated).
	BugNumber int
}

// ParseCVSLog parses "cvs log"-style entries, extracting per-revision log
// messages and any "Fixes bug #N" references.
func ParseCVSLog(r io.Reader) ([]*CVSCommit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var (
		commits []*CVSCommit
		cur     *CVSCommit
		module  string
		logs    []string
	)
	flush := func() {
		if cur == nil {
			return
		}
		cur.Log = strings.TrimSpace(strings.Join(logs, "\n"))
		cur.Module = module
		cur.BugNumber = extractBugNumber(cur.Log)
		commits = append(commits, cur)
		cur = nil
		logs = nil
	}
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "RCS file:"):
			flush()
			module = strings.TrimSpace(strings.TrimPrefix(trimmed, "RCS file:"))
		case strings.HasPrefix(trimmed, "revision "):
			flush()
			cur = &CVSCommit{Revision: strings.TrimSpace(strings.TrimPrefix(trimmed, "revision"))}
		case trimmed == "----------------------------" || strings.HasPrefix(trimmed, "===="):
			flush()
		case cur != nil && !strings.HasPrefix(trimmed, "date:"):
			logs = append(logs, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("debbugs: cvs log scan: %w", err)
	}
	flush()
	return commits, nil
}

func extractBugNumber(log string) int {
	lower := strings.ToLower(log)
	for _, marker := range []string{"fixes bug #", "fix bug #", "bug #", "closes #"} {
		idx := strings.Index(lower, marker)
		if idx < 0 {
			continue
		}
		rest := lower[idx+len(marker):]
		end := 0
		for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
			end++
		}
		if end > 0 {
			if n, err := strconv.Atoi(rest[:end]); err == nil {
				return n
			}
		}
	}
	return 0
}

// gnomeProductionVersion reports whether the version string names a released
// (non-CVS, non-pre) GNOME module version.
func gnomeProductionVersion(v string) bool {
	v = strings.ToLower(v)
	if v == "" {
		return true // GNOME reports frequently omit versions; the tracker covers releases
	}
	for _, marker := range []string{"cvs", "pre", "alpha", "beta", "snapshot"} {
		if strings.Contains(v, marker) {
			return false
		}
	}
	return true
}

// ToReport converts a bug (plus any matching CVS fix commits) to the
// normalized schema.
func (b *Bug) ToReport(fixes []*CVSCommit) (*report.Report, error) {
	sev, err := taxonomy.ParseSeverity(b.Severity)
	if err != nil {
		sev = taxonomy.SeverityUnknown
	}
	var fix string
	for _, c := range fixes {
		if c.BugNumber == b.Number {
			fix = c.Log
			break
		}
	}
	r := &report.Report{
		ID:             fmt.Sprintf("GB-%d", b.Number),
		App:            taxonomy.AppGnome,
		Component:      b.Package,
		Release:        b.Version,
		Synopsis:       b.Subject,
		Description:    b.Body,
		HowToRepeat:    extractHowToRepeat(b.Body),
		Comments:       append([]string(nil), b.FollowUps...),
		FixDescription: fix,
		Severity:       sev,
		Symptom:        gnats.InferSymptom(b.Subject + "\n" + b.Body),
		Filed:          b.Date,
		Production:     gnomeProductionVersion(b.Version),
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("debbugs bug %d: %w", b.Number, err)
	}
	return r, nil
}

// extractHowToRepeat pulls a reproduction recipe out of free-form GNOME
// report bodies: the text following a "To reproduce" / "Steps to reproduce" /
// "How to repeat" marker, or numbered step lines.
func extractHowToRepeat(body string) string {
	lower := strings.ToLower(body)
	for _, marker := range []string{"steps to reproduce", "to reproduce", "how to repeat", "how to reproduce"} {
		idx := strings.Index(lower, marker)
		if idx < 0 {
			continue
		}
		rest := body[idx:]
		if nl := strings.Index(rest, "\n"); nl >= 0 {
			rest = rest[nl+1:]
		} else {
			rest = ""
		}
		// Take until the first blank line after the steps.
		if end := strings.Index(rest, "\n\n"); end >= 0 {
			rest = rest[:end]
		}
		return strings.TrimSpace(rest)
	}
	// Fall back to numbered steps anywhere in the body.
	var steps []string
	for _, l := range strings.Split(body, "\n") {
		t := strings.TrimSpace(l)
		if len(t) >= 2 && t[0] >= '1' && t[0] <= '9' && (t[1] == '.' || t[1] == ')') {
			steps = append(steps, t)
		}
	}
	return strings.Join(steps, "\n")
}
