package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 8, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d, want %d", n, got, n)
		}
	}
}

// TestForEachRunsEveryShard checks that every shard index runs exactly once
// at every worker count, including counts above the shard count.
func TestForEachRunsEveryShard(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const shards = 37
		var counts [shards]int64
		err := ForEach(workers, shards, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroShards(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called with zero shards")
	}
}

// TestForEachFirstErrorInShardOrder checks that the reported error is the
// lowest-index failure, not the first to complete — scheduling must not leak
// into results.
func TestForEachFirstErrorInShardOrder(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		ran := int64(0)
		err := ForEach(workers, 16, func(i int) error {
			atomic.AddInt64(&ran, 1)
			switch i {
			case 3:
				return errLow
			case 11:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want shard 3's error", workers, err)
		}
		if ran != 16 {
			t.Errorf("workers=%d: %d shards ran, want all 16 despite errors", workers, ran)
		}
	}
}

// TestForEachPanicBecomesError checks the pool survives a panicking shard.
func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 8, func(i int) error {
			if i == 5 {
				panic("boom")
			}
			return nil
		})
		if err == nil || err.Error() != "parallel: shard 5 panicked: boom" {
			t.Errorf("workers=%d: err = %v, want shard-5 panic error", workers, err)
		}
	}
}

// TestMapOrderedWorkerInvariance is the package's core contract: results are
// index-addressed and identical at every worker count.
func TestMapOrderedWorkerInvariance(t *testing.T) {
	want, err := MapOrdered(1, 64, func(i int) (string, error) {
		return fmt.Sprintf("shard-%d:%d", i, Derive(99, uint64(i))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		got, err := MapOrdered(workers, 64, func(i int) (string, error) {
			return fmt.Sprintf("shard-%d:%d", i, Derive(99, uint64(i))), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDeriveMatchesStepper pins Derive's jump-ahead against the reference
// stepper: Derive(root, i) must be the i-th output of SplitMix64(root).
func TestDeriveMatchesStepper(t *testing.T) {
	for _, root := range []int64{0, 1, -1, 42, 1 << 40, -(1 << 40)} {
		sm := NewSplitMix64(uint64(root))
		for i := uint64(0); i < 100; i++ {
			want := int64(sm.Next())
			if got := Derive(root, i); got != want {
				t.Fatalf("Derive(%d, %d) = %d, want stepper output %d", root, i, got, want)
			}
		}
	}
}

// TestDeriveSpreads is a cheap statistical sanity check: neighbouring shard
// indices and neighbouring roots must not produce clustered seeds.
func TestDeriveSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for root := int64(0); root < 32; root++ {
		for i := uint64(0); i < 32; i++ {
			s := Derive(root, i)
			if seen[s] {
				t.Fatalf("collision at root=%d index=%d seed=%d", root, i, s)
			}
			seen[s] = true
		}
	}
	// All 1024 distinct; also check bit diffusion between adjacent indices.
	a, b := Derive(7, 0), Derive(7, 1)
	if diff := popcount(uint64(a ^ b)); diff < 16 {
		t.Errorf("adjacent shard seeds differ in only %d bits", diff)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestStreamSeedStable(t *testing.T) {
	s := Stream{Root: 1234}
	if s.Seed(17) != Derive(1234, 17) {
		t.Error("Stream.Seed disagrees with Derive")
	}
	if s.Seed(17) != s.Seed(17) {
		t.Error("Stream.Seed is not stable")
	}
}
