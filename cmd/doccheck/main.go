// Command doccheck enforces the documentation contract on the packages whose
// godoc is part of the deliverable: every exported identifier — functions,
// methods, types, constants, variables, struct fields, and interface methods
// — must carry a doc comment. CI runs it over the observability, recovery,
// supervision, mining-resilience, analysis, corpus, and durable-storage
// packages (see the lint job in .github/workflows/ci.yml for the authoritative
// list) and fails on any finding.
//
// With -flags, doccheck switches contracts: it parses every command under
// the -cmds directory for flag definitions and verifies that every CLI flag
// the given markdown files document actually exists on the binary — the gate
// against documentation drifting from the CLIs it describes.
//
// Usage:
//
//	doccheck ./internal/obsv ./internal/supervise ./internal/recovery ./internal/traffic
//	doccheck -flags README.md EXPERIMENTS.md SERVING.md
//	doccheck -flags -cmds ./cmd *.md
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flagsMode := flag.Bool("flags", false, "check documented CLI flags against the flag definitions of the commands")
	cmdsDir := flag.String("cmds", "cmd", "directory holding the command packages (with -flags)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: usage: doccheck <package-dir> ... | doccheck -flags <doc.md> ...")
		os.Exit(2)
	}
	if *flagsMode {
		os.Exit(runFlagsMode(*cmdsDir, args))
	}
	var findings []string
	for _, dir := range args {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages clean\n", len(args))
}

// runFlagsMode checks every documented CLI flag in the given markdown files
// against the flags the commands under cmdsDir actually define; the return
// value is the process exit code.
func runFlagsMode(cmdsDir string, docs []string) int {
	bins, err := collectFlags(cmdsDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		return 2
	}
	if len(bins) == 0 {
		fmt.Fprintf(os.Stderr, "doccheck: no commands found under %s\n", cmdsDir)
		return 2
	}
	var findings []string
	for _, doc := range docs {
		fs, err := checkDocFlags(bins, doc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			return 2
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d documented flags do not exist on their binaries\n", len(findings))
		return 1
	}
	fmt.Printf("doccheck: %d docs clean against %d commands\n", len(docs), len(bins))
	return 0
}

// collectFlags parses every command package under cmdsDir (one subdirectory
// per binary, tests excluded) and returns binary name -> defined flag names,
// harvested from Bool/Int/String/... and Var definition calls with literal
// name arguments — on the flag package itself or on any FlagSet variable.
func collectFlags(cmdsDir string) (map[string]map[string]bool, error) {
	entries, err := os.ReadDir(cmdsDir)
	if err != nil {
		return nil, fmt.Errorf("read commands dir %s: %w", cmdsDir, err)
	}
	bins := make(map[string]map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(cmdsDir, e.Name())
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", dir, err)
		}
		if len(pkgs) == 0 {
			continue
		}
		flags := map[string]bool{"h": true, "help": true} // the flag package's builtins
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if _, ok := sel.X.(*ast.Ident); !ok {
						return true
					}
					switch sel.Sel.Name {
					case "Bool", "Int", "Int64", "Uint", "Uint64", "Float64",
						"String", "Duration", "Var", "BoolVar", "IntVar",
						"Int64Var", "StringVar", "Float64Var", "DurationVar":
					default:
						return true
					}
					nameArg := call.Args[0]
					if strings.HasSuffix(sel.Sel.Name, "Var") && len(call.Args) > 1 {
						nameArg = call.Args[1]
					}
					if lit, ok := nameArg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						flags[strings.Trim(lit.Value, `"`)] = true
					}
					return true
				})
			}
		}
		bins[e.Name()] = flags
	}
	return bins, nil
}

// otherCommands are non-repo commands that appear in doc command lines;
// mentioning one stops flag attribution until a repo binary is mentioned
// again, so "go test -run X" never checks -run against a repo binary.
var otherCommands = map[string]bool{
	"go": true, "gofmt": true, "git": true, "curl": true, "grep": true,
}

// checkDocFlags scans one markdown file: on every line that mentions a known
// binary, each "-flagname" token must be a flag that binary defines. When a
// line mentions exactly one command, every flag token on it is attributed to
// that binary (the prose case: "the -serve flag of recoverylab"); when it
// mentions several, each token is attributed to the nearest preceding
// mention, so "recoverylab -serve ... go test -run X" attributes correctly.
func checkDocFlags(bins map[string]map[string]bool, path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var findings []string
	for lineNo, line := range strings.Split(string(data), "\n") {
		toks := tokenize(line)
		sole, mentioned := soleBinary(toks, bins)
		if !mentioned {
			continue
		}
		current := sole // "" unless exactly one command is named on the line
		for _, tok := range toks {
			if flagName, ok := strings.CutPrefix(tok, "-"); ok && isFlagToken(flagName) {
				if current == "" {
					continue
				}
				if !bins[current][flagName] {
					findings = append(findings, fmt.Sprintf(
						"%s:%d: documented flag -%s does not exist on %s",
						path, lineNo+1, flagName, current))
				}
				continue
			}
			if name, known := binMention(tok, bins); known {
				current = name
			} else if otherCommands[tok] {
				current = ""
			}
		}
	}
	return findings, nil
}

// soleBinary reports whether the tokens mention any known binary, and names
// it when exactly one command (binary or external) is mentioned on the line.
func soleBinary(toks []string, bins map[string]map[string]bool) (string, bool) {
	sole, commands, mentioned := "", 0, false
	for _, tok := range toks {
		if name, ok := binMention(tok, bins); ok {
			mentioned, sole = true, name
			commands++
		} else if otherCommands[tok] {
			commands++
		}
	}
	if commands != 1 {
		sole = ""
	}
	return sole, mentioned
}

// binMention resolves a token to a known binary name — either the bare name
// or a path whose basename is one ("cmd/recoverylab", "./cmd/faultlint").
func binMention(tok string, bins map[string]map[string]bool) (string, bool) {
	if _, ok := bins[tok]; ok {
		return tok, true
	}
	if i := strings.LastIndexByte(tok, '/'); i >= 0 {
		if base := tok[i+1:]; base != "" {
			if _, ok := bins[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}

// tokenize splits a doc line on whitespace and strips the markdown and
// punctuation that wraps words and flags in prose (backticks, quotes,
// brackets, trailing commas); "=value" suffixes are cut so "-prom=out.prom"
// checks the flag name alone.
func tokenize(line string) []string {
	var toks []string
	for _, f := range strings.Fields(line) {
		tok := strings.Trim(f, "`\"'*.,:;()[]|<>")
		if strings.HasPrefix(tok, "-") {
			if i := strings.IndexByte(tok, '='); i > 0 {
				tok = tok[:i]
			}
		}
		toks = append(toks, tok)
	}
	return toks
}

// isFlagToken reports whether a "-"-stripped token looks like a CLI flag
// name: lowercase alphanumeric, letter first — which excludes negative
// numbers, em-dash prose, and "--" separators.
func isFlagToken(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// checkDir parses one package directory (tests excluded) and returns one
// finding line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		rel := p.Filename
		if r, err := filepath.Rel(".", p.Filename); err == nil {
			rel = r
		}
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", rel, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// funcKind says whether a FuncDecl is a function or a method, for messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl checks the specs of one const/var/type declaration.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	// A single-spec declaration may carry its doc on the GenDecl.
	declDoc := d.Doc != nil && len(d.Specs) == 1
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && !declDoc {
				report(s.Pos(), "type", s.Name.Name)
			}
			checkTypeBody(s, report)
		case *ast.ValueSpec:
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if s.Doc == nil && s.Comment == nil && !declDoc {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// checkTypeBody checks exported struct fields and interface methods of an
// exported type.
func checkTypeBody(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	if !s.Name.IsExported() {
		return
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() && f.Doc == nil && f.Comment == nil {
					report(name.Pos(), "field", s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() && m.Doc == nil && m.Comment == nil {
					report(name.Pos(), "interface method", s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}
