package experiment

import (
	"bytes"
	"strings"
	"testing"

	"faultstudy/internal/taxonomy"
)

// resilFingerprint runs one telemetry-instrumented RESIL sweep and returns
// its complete observable output.
func resilFingerprint(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	tel := NewTelemetry()
	rep, err := RunResil(ResilConfig{Seed: seed, Workers: workers, MaxPages: 60, Telemetry: tel})
	if err != nil {
		t.Fatalf("RunResil(seed=%d, workers=%d): %v", seed, workers, err)
	}
	return fingerprint(t, tel, rep.String())
}

// TestResilDeterminism checks the RESIL sweep's full output — report, JSONL
// trace, Prometheus export — is byte-identical at every worker count.
func TestResilDeterminism(t *testing.T) {
	want := resilFingerprint(t, 42, workerArms[0])
	for _, w := range workerArms[1:] {
		got := resilFingerprint(t, 42, w)
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d output differs from workers=1:\n%s", w, firstDiff(want, got))
		}
	}
}

// TestResilCheck runs the sweep at the default size and asserts the headline
// bounds the CLI gates on: under the full policy, EDT chaos survives and EDN
// chaos does not.
func TestResilCheck(t *testing.T) {
	rep, err := RunResil(ResilConfig{Seed: 42})
	if err != nil {
		t.Fatalf("RunResil: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v\n%s", err, rep)
	}
}

// TestResilPolicyGradient asserts the sweep separates the policies the way
// the design argues it must: the full client recovers strictly more EDT
// chaos than the naive one, and no policy rescues EDN chaos.
func TestResilPolicyGradient(t *testing.T) {
	rep, err := RunResil(ResilConfig{Seed: 7, MaxPages: 60})
	if err != nil {
		t.Fatalf("RunResil: %v", err)
	}
	edtNaive := rep.SurvivalBy(taxonomy.ClassEnvDependentTransient, "naive")
	edtFull := rep.SurvivalBy(taxonomy.ClassEnvDependentTransient, "full")
	if edtFull.Value() <= edtNaive.Value() {
		t.Errorf("EDT survival full %s not above naive %s", edtFull.Percent(), edtNaive.Percent())
	}
	for _, pol := range ResilPolicies() {
		edn := rep.SurvivalBy(taxonomy.ClassEnvDependentNonTransient, pol)
		if edn.N == 0 {
			t.Errorf("policy %s: no EDN URLs targeted", pol)
		}
		if edn.Value() > 0.1 {
			t.Errorf("policy %s: EDN survival %s above 10%% — nontransient chaos should defeat generic retry", pol, edn.Percent())
		}
	}
}

// TestResilArmAccounting sanity-checks each arm's bookkeeping: coverage
// partitions the attempt count, recovered never exceeds targeted, and every
// (fault, policy) cell is present exactly once.
func TestResilArmAccounting(t *testing.T) {
	rep, err := RunResil(ResilConfig{Seed: 3, MaxPages: 40})
	if err != nil {
		t.Fatalf("RunResil: %v", err)
	}
	seen := make(map[string]bool)
	for _, a := range rep.Arms {
		key := a.Fault + "|" + a.Policy
		if seen[key] {
			t.Errorf("duplicate arm %s", key)
		}
		seen[key] = true
		if a.Fetched+a.NonOK+a.Gaps != a.Attempted {
			t.Errorf("arm %s: coverage %d+%d+%d != attempted %d", key, a.Fetched, a.NonOK, a.Gaps, a.Attempted)
		}
		if a.Recovered > a.Targeted {
			t.Errorf("arm %s: recovered %d > targeted %d", key, a.Recovered, a.Targeted)
		}
		if a.Recovered == 0 && a.MTTR != 0 {
			t.Errorf("arm %s: MTTR %v with nothing recovered", key, a.MTTR)
		}
	}
	if want := 9 * len(ResilPolicies()); len(rep.Arms) != want {
		t.Errorf("got %d arms, want %d", len(rep.Arms), want)
	}
}

// TestResilTelemetry checks the sweep's telemetry carries per-URL episodes
// with the policy as the final rung and the resil metric family.
func TestResilTelemetry(t *testing.T) {
	tel := NewTelemetry()
	if _, err := RunResil(ResilConfig{Seed: 42, MaxPages: 40, Telemetry: tel}); err != nil {
		t.Fatalf("RunResil: %v", err)
	}
	eps := tel.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episodes recorded")
	}
	rungs := make(map[string]bool)
	for _, ep := range eps {
		rungs[ep.FinalRung] = true
		if ep.Class != "EDT" && ep.Class != "EDN" {
			t.Errorf("episode %d: class %q not a chaos class", ep.ID, ep.Class)
		}
		if !strings.HasPrefix(ep.Op, "/bugdb/") {
			t.Errorf("episode %d: op %q is not a crawled path", ep.ID, ep.Op)
		}
	}
	for _, pol := range ResilPolicies() {
		if !rungs[pol] {
			t.Errorf("no episode closed under policy %q", pol)
		}
	}
	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, metric := range []string{
		"faultstudy_resil_urls_total", "faultstudy_resil_retries_total", "faultstudy_resil_mttr_seconds"} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("prometheus export missing %s", metric)
		}
	}
}
