// Package workload generates realistic operation streams for the three
// simulated applications: HTTP request mixes for the web server, SQL
// statement streams for the database, and interaction streams for the
// desktop. The generators are seeded and deterministic; the benchmarks and
// the rejuvenation ablation use them to drive healthy and fault-laden
// instances at scale.
package workload

import (
	"fmt"
	"math/rand"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
)

// HTTPMix weights the request categories of the web workload.
type HTTPMix struct {
	// Static is the weight of plain document requests.
	Static int
	// Listing is the weight of directory listings.
	Listing int
	// CGI is the weight of CGI requests.
	CGI int
	// Proxy is the weight of proxied requests.
	Proxy int
	// NotFound is the weight of requests for missing documents.
	NotFound int
}

// DefaultHTTPMix approximates a 1999 site: mostly static pages with a little
// of everything else.
func DefaultHTTPMix() HTTPMix {
	return HTTPMix{Static: 70, Listing: 10, CGI: 10, Proxy: 5, NotFound: 5}
}

func (m HTTPMix) total() int { return m.Static + m.Listing + m.CGI + m.Proxy + m.NotFound }

// HTTPRequests generates n requests with the given mix.
func HTTPRequests(seed int64, mix HTTPMix, n int) []httpd.Request {
	if mix.total() == 0 {
		mix = DefaultHTTPMix()
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]httpd.Request, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(mix.total())
		switch {
		case r < mix.Static:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/index.html"})
		case r < mix.Static+mix.Listing:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/pub/"})
		case r < mix.Static+mix.Listing+mix.CGI:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/cgi-bin/env"})
		case r < mix.Static+mix.Listing+mix.CGI+mix.Proxy:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/proxy/page"})
		default:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: fmt.Sprintf("/missing-%d", i)})
		}
	}
	return reqs
}

// SQLStatements generates a CREATE/INSERT/SELECT/UPDATE/DELETE stream over a
// single table. The first statements create and index the table; the rest
// are drawn from the mix. All statements are valid against the schema.
func SQLStatements(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	stmts := []string{
		"CREATE TABLE load (k INT, payload TEXT)",
		"CREATE INDEX load_k ON load (k)",
	}
	inserted := 0
	for len(stmts) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // 40% inserts
			inserted++
			stmts = append(stmts, fmt.Sprintf("INSERT INTO load VALUES (%d, 'p%d')", inserted, inserted))
		case 4, 5, 6: // 30% selects
			stmts = append(stmts, fmt.Sprintf("SELECT * FROM load WHERE k <= %d ORDER BY k LIMIT 10", rng.Intn(inserted+1)))
		case 7: // counts
			stmts = append(stmts, "SELECT COUNT(*) FROM load")
		case 8: // updates
			stmts = append(stmts, fmt.Sprintf("UPDATE load SET payload = 'u' WHERE k = %d", rng.Intn(inserted+1)))
		default: // deletes
			stmts = append(stmts, fmt.Sprintf("DELETE FROM load WHERE k = %d", rng.Intn(inserted+1)))
		}
	}
	return stmts
}

// DesktopEvents generates a stream of benign desktop interactions.
func DesktopEvents(seed int64, n int) []desktop.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]desktop.Event, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			evs = append(evs, desktop.Event{Widget: "calendar", Action: "next"})
		case 1:
			evs = append(evs, desktop.Event{Widget: "gnumeric", Action: "set-cell",
				Arg: fmt.Sprintf("A%d=%d", i%100, rng.Intn(1000))})
		case 2:
			evs = append(evs, desktop.Event{Widget: "gmc", Action: "open", Arg: "notes.txt"})
		case 3:
			evs = append(evs, desktop.Event{Widget: "panel", Action: "open-main-menu"})
		case 4:
			evs = append(evs, desktop.Event{Widget: "panel", Action: "click-desktop"})
		default:
			evs = append(evs, desktop.Event{Widget: "session", Action: "play-sound"})
		}
	}
	return evs
}
