package resilient

import (
	"context"
	"time"
)

// Clock is the client's view of time: deadlines, backoff sleeps, hedging
// thresholds, and breaker cooldowns all read it. Experiments inject the
// chaos layer's shared virtual clock (chaoshttp.VirtualClock satisfies this
// interface), which makes every retry schedule a pure function of the seed;
// the CLIs inject NewRealClock.
type Clock interface {
	// Now returns a monotonic reading.
	Now() time.Duration
	// Sleep pauses for d, returning early with the context's error if it
	// expires first.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a per-try context bounded by d. Virtual clocks
	// return ctx unchanged and enforce the deadline after the fact.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// realClock reads the wall clock. It exists for the CLIs, which talk to real
// servers; every experiment path injects a virtual clock instead.
type realClock struct {
	start time.Time
}

// NewRealClock returns a wall-clock-backed Clock whose Now is the elapsed
// time since construction.
func NewRealClock() Clock {
	return &realClock{start: time.Now()} //faultlint:ignore wallclock the real clock is the CLI's injection point; experiments inject the virtual clock
}

// Now returns the elapsed wall time since construction.
func (c *realClock) Now() time.Duration {
	return time.Since(c.start) //faultlint:ignore wallclock see NewRealClock
}

// Sleep pauses for d or until ctx expires.
func (c *realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d) //faultlint:ignore wallclock see NewRealClock
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithTimeout bounds a per-try context with a real deadline.
func (c *realClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}
