// Package obsv is the observability layer over the recovery laboratory: a
// stdlib-only metrics registry, a structured trace recorder, and an episode
// timeline reporter, all driven off the injectable simenv virtual clock so
// every run's telemetry is deterministic and testable.
//
// The paper (Chandra & Chen, DSN 2000) classifies faults by environment
// dependence; the recovery experiments in this repository measure whether
// generic recovery survives each class. What was missing is the *why*: for a
// given fault episode, which escalation-ladder rungs were tried, how long
// each cost, and where the episode ended. Microreboot work (Candea & Fox)
// makes the case that per-episode timing and outcome telemetry is what turns
// a recovery mechanism into an evaluable system; this package supplies it.
//
// The three pieces:
//
//   - Registry: counters, gauges, and fixed-bucket histograms with ordered
//     label sets, exported as Prometheus exposition text (WritePrometheus)
//     or canonical JSON (WriteJSON). All iteration orders are sorted, so
//     exports are byte-stable across runs.
//   - Recorder: builds Episodes — one per fault-handling episode, from the
//     first observed failure to the final supervisor decision — out of
//     timestamped spans (activation, backoff, ladder-rung action,
//     checkpoint, restore, decision). Timestamps are time.Durations on the
//     virtual monotonic clock; no wall-clock read happens anywhere in this
//     package. Episodes round-trip through a documented JSONL schema
//     (WriteJSONL / ReadJSONL).
//   - Timeline and Summarize: render a per-episode narrative (activated →
//     retried ×N → microrebooted → served-degraded) and the per-class
//     (EI/EDN/EDT) table — MTTR, retries-per-recovery, ladder-rung
//     distribution, served/degraded/lost fractions — that lets the paper's
//     headline split be read directly off measured recovery telemetry.
//
// Instrumentation attaches through the hook interfaces the instrumented
// packages already expose (supervise.Config.Trace, recovery.Policy.Trace,
// workload.Hook): SuperviseObserver, RecoveryObserver, and WorkloadHook
// adapt those event streams into registry metrics and recorder episodes.
// Hooks are nil-safe and cost one branch when disabled.
//
// Metric names, label sets, histogram buckets, and the trace-span schema
// are documented in OBSERVABILITY.md at the repository root.
package obsv
