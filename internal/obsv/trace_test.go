package obsv

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fixtureEpisodes records two episodes through the Recorder API — one
// recovered after a retry walk, one lost to an open breaker — and returns
// them. Shared by the round-trip and timeline tests.
func fixtureEpisodes(t *testing.T) []*Episode {
	t.Helper()
	r := NewRecorder()
	r.SetContext(Context{App: "apache", FaultID: "apache-1999-42", Class: "EI"})

	at := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	r.Begin(at(10), "GET /index.html", "httpd/null-deref")
	r.Note(at(10), Span{Kind: SpanActivation, Note: "segfault in ap_handler"})
	r.Interval(at(10), at(11), Span{Kind: SpanBackoff, Rung: "retry", Attempt: 1})
	r.Note(at(11), Span{Kind: SpanAction, Rung: "retry", Attempt: 1, Outcome: "ok"})
	r.Note(at(11.5), Span{Kind: SpanRetry, Rung: "retry", Attempt: 1, Outcome: "fail", Note: "segfault again"})
	r.Note(at(11.5), Span{Kind: SpanDecision, Rung: "microreboot", Outcome: "escalate"})
	r.Interval(at(11.5), at(13.5), Span{Kind: SpanBackoff, Rung: "microreboot", Attempt: 2})
	r.Note(at(13.5), Span{Kind: SpanAction, Rung: "microreboot", Attempt: 2, Outcome: "ok"})
	r.Note(at(14), Span{Kind: SpanRetry, Rung: "microreboot", Attempt: 2, Outcome: "ok"})
	if ep := r.End(at(14), OutcomeRecovered, "microreboot"); ep == nil || ep.ID != 1 {
		t.Fatalf("End returned %+v, want episode 1", ep)
	}

	r.SetContext(Context{App: "mysql", Class: "EDN"})
	r.Begin(at(20), "INSERT INTO load", "sqldb/disk-full")
	r.Note(at(20), Span{Kind: SpanActivation, Note: "disk full"})
	r.Note(at(20), Span{Kind: SpanDecision, Outcome: "fast-fail", Note: "sqldb/disk-full"})
	r.End(at(20), OutcomeFastFail, "")

	return r.Episodes()
}

func TestRecorderLifecycle(t *testing.T) {
	eps := fixtureEpisodes(t)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	e := eps[0]
	if e.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (one failed, one ok)", e.Retries)
	}
	if e.FinalRung != "microreboot" {
		t.Errorf("FinalRung = %q, want microreboot", e.FinalRung)
	}
	if e.Duration() != 4*time.Second {
		t.Errorf("Duration = %s, want 4s", e.Duration())
	}
	if e.Class != "EI" || e.App != "apache" || e.FaultID != "apache-1999-42" {
		t.Errorf("identity not carried: %+v", e)
	}
	if eps[1].Outcome != OutcomeFastFail || eps[1].Class != "EDN" {
		t.Errorf("second episode = %+v", eps[1])
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.SetContext(Context{App: "x"})
	r.Begin(0, "op", "mech")
	r.Note(0, Span{Kind: SpanActivation})
	r.Interval(0, 1, Span{Kind: SpanBackoff})
	r.Drift("other")
	if r.Active() {
		t.Fatal("nil recorder active")
	}
	if ep := r.End(0, OutcomeLost, ""); ep != nil {
		t.Fatalf("nil recorder closed %+v", ep)
	}
	if r.Flush(0) != nil || r.Episodes() != nil {
		t.Fatal("nil recorder produced episodes")
	}
}

func TestRecorderDrift(t *testing.T) {
	r := NewRecorder()
	r.SetContext(Context{ClassFor: func(m string) string {
		if m == "sqldb/disk-full" {
			return "EDN"
		}
		return "EI"
	}})
	r.Begin(0, "op", "sqldb/null-deref")
	r.Drift("sqldb/disk-full") // restore ran into a full disk
	ep := r.End(time.Second, OutcomeLost, "restore")
	if ep.Mechanism != "sqldb/disk-full" || ep.Class != "EDN" {
		t.Fatalf("drift not applied: %+v", ep)
	}
}

func TestRecorderFlushClosesOpenEpisodeAsLost(t *testing.T) {
	r := NewRecorder()
	r.Begin(time.Second, "op", "m")
	ep := r.Flush(3 * time.Second)
	if ep == nil || ep.Outcome != OutcomeLost || ep.Duration() != 2*time.Second {
		t.Fatalf("Flush = %+v, want lost episode of 2s", ep)
	}
	if r.Flush(4*time.Second) != nil {
		t.Fatal("second Flush found an episode")
	}
}

func TestJSONLRoundTripByteIdentical(t *testing.T) {
	eps := fixtureEpisodes(t)
	var first bytes.Buffer
	if err := WriteJSONL(&first, eps); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip not byte-identical\n--- first ---\n%s\n--- second ---\n%s",
			first.Bytes(), second.Bytes())
	}
}

func TestReadJSONLRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":        "nope\n",
		"unknown field":   `{"episode":1,"outcome":"lost","start_us":0,"end_us":0,"surprise":true}` + "\n",
		"no outcome":      `{"episode":1,"start_us":0,"end_us":0}` + "\n",
		"bad outcome":     `{"episode":1,"outcome":"mangled","start_us":0,"end_us":0}` + "\n",
		"negative id":     `{"episode":-1,"outcome":"lost","start_us":0,"end_us":0}` + "\n",
		"ends before":     `{"episode":1,"outcome":"lost","start_us":5,"end_us":1}` + "\n",
		"span no kind":    `{"episode":1,"outcome":"lost","start_us":0,"end_us":0,"spans":[{"start_us":0,"end_us":0}]}` + "\n",
		"span ends early": `{"episode":1,"outcome":"lost","start_us":0,"end_us":0,"spans":[{"kind":"retry","start_us":5,"end_us":1}]}` + "\n",
	}
	for name, raw := range cases {
		if _, err := ReadJSONL(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are tolerated.
	good := `{"episode":1,"outcome":"lost","start_us":0,"end_us":0}` + "\n\n"
	eps, err := ReadJSONL(strings.NewReader(good))
	if err != nil || len(eps) != 1 {
		t.Fatalf("good trace rejected: %v", err)
	}
}

func TestBeginClosesStrayOpenEpisode(t *testing.T) {
	r := NewRecorder()
	r.Begin(0, "op1", "m1")
	r.Begin(time.Second, "op2", "m2") // op1 never reached a verdict
	r.End(2*time.Second, OutcomeRecovered, "retry")
	eps := r.Episodes()
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	if eps[0].Outcome != OutcomeLost {
		t.Errorf("stray episode outcome = %q, want lost", eps[0].Outcome)
	}
}
