package corpusgen

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultSpecParses(t *testing.T) {
	spec, err := ParseCorpusSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if spec.Faults != DefaultFaults || spec.Episodes != DefaultEpisodes {
		t.Fatalf("defaults: got %d/%d faults/episodes", spec.Faults, spec.Episodes)
	}
	if got := spec.Class.String(); got != DefaultClassDist {
		t.Fatalf("class default: got %q want %q", got, DefaultClassDist)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"faults=100",
		"faults=12;episodes=3;class=50%ei,50%edt",
		"lifetime=100%45s;gap=60%1h,40%3d",
		"app=100%cache;defect=50%memory,50%logic;overlap=100%cascade",
	}
	for _, in := range specs {
		spec, err := ParseCorpusSpec(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		canon := spec.String()
		again, err := ParseCorpusSpec(canon)
		if err != nil {
			t.Fatalf("reparse %q: %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("round trip %q: %q != %q", in, again.String(), canon)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"faults=0", "outside"},
		{"faults=-3", "outside"},
		{"faults=nope", "faults"},
		{"episodes=-1", "outside"},
		{"bogus=1", "unknown key"},
		{"faults=5;faults=6", "repeated"},
		{"faults=5;;episodes=1", "empty spec field"},
		{"class=50%ei,50%weird", "unknown value"},
		{"class=60%ei,60%edn", "sum"},
		{"app=100%nginx", "unknown value"},
		{"defect=100%cosmic-ray", "unknown value"},
		{"overlap=100%sideways", "unknown value"},
		{"lifetime=100%never", "not a duration"},
		{"gap=100%-5s", "negative"},
		{"lifetime=100%9999y", "bad count"},
		{"noequals", "key=value"},
	}
	for _, c := range cases {
		_, err := ParseCorpusSpec(c.in)
		if err == nil {
			t.Errorf("spec %q: want error containing %q, got nil", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("spec %q: error %q does not contain %q", c.in, err, c.wantSub)
		}
	}
}

func TestParseSpanUnits(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"45s", 45 * time.Second},
		{"1h30m", 90 * time.Minute},
		{"30d", 30 * 24 * time.Hour},
		{"2w", 14 * 24 * time.Hour},
		{"2y", 2 * 365 * 24 * time.Hour},
		{"0.5d", 12 * time.Hour},
	}
	for _, c := range cases {
		got, err := parseSpan(c.in)
		if err != nil {
			t.Errorf("parseSpan(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSpan(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "d", "-3d", "NaNy", "1e99y", "soon"} {
		if _, err := parseSpan(bad); err == nil {
			t.Errorf("parseSpan(%q): want error", bad)
		}
	}
}
