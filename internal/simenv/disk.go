package simenv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

var (
	// ErrDiskFull is returned when a write would exceed the file-system
	// capacity — the study's "full file system" condition.
	ErrDiskFull = errors.New("simenv: file system full")
	// ErrFileTooLarge is returned when a file would exceed the maximum
	// allowed file size — the study's oversized log/database file condition.
	ErrFileTooLarge = errors.New("simenv: file exceeds maximum allowed size")
	// ErrNoSuchFile is returned for operations on missing files.
	ErrNoSuchFile = errors.New("simenv: no such file")
)

// Disk is a simulated file system with a capacity limit and a per-file size
// limit. Contents are not stored, only sizes and owner metadata — the study's
// disk conditions are about space, not data.
type Disk struct {
	mu          sync.Mutex
	capacity    int64
	maxFileSize int64
	used        int64
	files       map[string]*diskFile
}

type diskFile struct {
	size  int64
	owner string
	// illegalOwner marks a file whose owner field holds an illegal value —
	// the GNOME "file has an illegal value in the owner field" trigger.
	illegalOwner bool
}

func newDisk(capacity, maxFileSize int64) *Disk {
	return &Disk{
		capacity:    capacity,
		maxFileSize: maxFileSize,
		files:       make(map[string]*diskFile),
	}
}

// Capacity returns the file-system capacity in bytes.
func (d *Disk) Capacity() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity
}

// SetCapacity grows or shrinks the file system (the §6.2 "automatically
// increase the disk capacity" mitigation). Shrinking below current usage is
// rejected.
func (d *Disk) SetCapacity(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < d.used {
		return fmt.Errorf("simenv: capacity %d below current usage %d", n, d.used)
	}
	d.capacity = n
	return nil
}

// MaxFileSize returns the per-file size limit.
func (d *Disk) MaxFileSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxFileSize
}

// SetMaxFileSize changes the per-file size limit (a large-file-support
// upgrade; the §6.2 "increase the resources available" mitigation for the
// file-size conditions).
func (d *Disk) SetMaxFileSize(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.maxFileSize = n
}

// Used returns the bytes in use.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns the bytes available.
func (d *Disk) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity - d.used
}

// Append grows the named file by n bytes, creating it if necessary. The file
// is charged to owner on creation. Append enforces both the capacity and the
// per-file limit; on error the file is unchanged.
func (d *Disk) Append(name, owner string, n int64) error {
	if n < 0 {
		return fmt.Errorf("simenv: negative append %d to %q", n, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	size := int64(0)
	if f != nil {
		size = f.size
	}
	if size+n > d.maxFileSize {
		return fmt.Errorf("append %q: %w", name, ErrFileTooLarge)
	}
	if d.used+n > d.capacity {
		return fmt.Errorf("append %q: %w", name, ErrDiskFull)
	}
	if f == nil {
		f = &diskFile{owner: owner}
		d.files[name] = f
	}
	f.size += n
	d.used += n
	return nil
}

// Size returns the size of the named file.
func (d *Disk) Size(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("size %q: %w", name, ErrNoSuchFile)
	}
	return f.size, nil
}

// Exists reports whether the named file exists.
func (d *Disk) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Remove deletes the named file and releases its space.
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("remove %q: %w", name, ErrNoSuchFile)
	}
	d.used -= f.size
	delete(d.files, name)
	return nil
}

// Truncate resets the named file to zero bytes, keeping it on disk (log
// rotation).
func (d *Disk) Truncate(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("truncate %q: %w", name, ErrNoSuchFile)
	}
	d.used -= f.size
	f.size = 0
	return nil
}

// RemoveOwner deletes every file charged to owner and returns the bytes
// freed. Used by clean-restart recovery to clear an application's temporary
// files (but note: the study's disk conditions are usually *not* owned by the
// failing application, which is why they persist).
func (d *Disk) RemoveOwner(owner string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var freed int64
	for name, f := range d.files {
		if f.owner == owner {
			freed += f.size
			d.used -= f.size
			delete(d.files, name)
		}
	}
	return freed
}

// Files returns the file names in sorted order.
func (d *Disk) Files() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetIllegalOwner marks the file's owner field as holding an illegal value —
// the GNOME host-config trigger. Applications that parse the owner field
// observe the flag through IllegalOwner.
func (d *Disk) SetIllegalOwner(name string, illegal bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("set illegal owner %q: %w", name, ErrNoSuchFile)
	}
	f.illegalOwner = illegal
	return nil
}

// IllegalOwner reports whether the file's owner field is illegal.
func (d *Disk) IllegalOwner(name string) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return false, fmt.Errorf("illegal owner %q: %w", name, ErrNoSuchFile)
	}
	return f.illegalOwner, nil
}

// FillFrom consumes free space down to the given remaining byte count,
// charging the fill to owner — a convenience for staging "full file system"
// conditions caused by other tenants of the machine.
func (d *Disk) FillFrom(owner string, remaining int64) error {
	d.mu.Lock()
	free := d.capacity - d.used
	d.mu.Unlock()
	if free <= remaining {
		return nil
	}
	n := free - remaining
	// The filler file must itself respect the per-file limit; spread across
	// numbered files.
	i := 0
	for n > 0 {
		chunk := n
		if chunk > d.MaxFileSize() {
			chunk = d.MaxFileSize()
		}
		name := fmt.Sprintf("/var/fill/%s.%d", owner, i)
		if err := d.Append(name, owner, chunk); err != nil {
			return err
		}
		n -= chunk
		i++
	}
	return nil
}
