package resilient

import "sync"

// Budget is a token-bucket retry budget: the client-side defence against
// retry storms. Every first attempt deposits Earn tokens (capped at Burst);
// every retry withdraws one whole token. Under a healthy workload the bucket
// stays full and retries are free; when a large fraction of requests start
// failing — the signature of a nontransient environmental condition rather
// than scattered transient blips — the bucket drains and the client stops
// amplifying load, exactly the regime the paper's EDN faults create.
//
// A Budget is safe for concurrent use and is meant to be shared across every
// client talking to the same backend, so the storm limit is global rather
// than per-client.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	earn   float64
}

// NewBudget builds a budget holding burst tokens initially (and at most),
// earning earn tokens per first attempt. earn is clamped at non-negative;
// burst below 1 disables retries entirely.
func NewBudget(burst, earn float64) *Budget {
	if burst < 0 {
		burst = 0
	}
	if earn < 0 {
		earn = 0
	}
	return &Budget{tokens: burst, burst: burst, earn: earn}
}

// Deposit credits the budget for one first attempt.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.earn
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Withdraw takes one token for a retry, reporting false (and taking
// nothing) when the budget is exhausted.
func (b *Budget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance, for reports and tests.
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
