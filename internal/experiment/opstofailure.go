package experiment

import (
	"fmt"

	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/stats"
	"faultstudy/internal/workload"
)

// OpsToFailurePoint is one load mix's time-to-failure measurement for a
// resource-accumulation fault: the paper's §5.1 observation that the
// "failure point varies with load but always arrives", made quantitative.
type OpsToFailurePoint struct {
	// Label names the load mix.
	Label string
	// CGIShare is the CGI fraction of the mix, the resource-consuming
	// request class for the measured mechanism.
	CGIShare float64
	// OpsToFailure is the number of requests served before the fault
	// manifested (one past the end when it never did).
	OpsToFailure int
	// Failed reports whether the fault manifested within the budget.
	Failed bool
}

// RunOpsToFailure drives the process-table-exhaustion fault (hung CGI
// children) with request mixes of increasing CGI share and measures how many
// requests each sustains before failing. More resource-consuming load means
// an earlier failure; a mix with no CGI at all never fails.
func RunOpsToFailure(maxOps int, seed int64) ([]OpsToFailurePoint, error) {
	mixes := []struct {
		label string
		mix   workload.HTTPMix
	}{
		{"static-only", workload.HTTPMix{Static: 100}},
		{"light-cgi", workload.HTTPMix{Static: 90, CGI: 10}},
		{"default", workload.DefaultHTTPMix()},
		{"cgi-heavy", workload.HTTPMix{Static: 50, CGI: 50}},
		{"cgi-only", workload.HTTPMix{CGI: 100}},
	}
	var points []OpsToFailurePoint
	for _, m := range mixes {
		env := simenv.New(seed, simenv.WithProcLimit(64), simenv.WithFDLimit(1024),
			simenv.WithDiskBytes(1<<30), simenv.WithMaxFileSize(1<<29))
		srv := httpd.New(env, faultinject.NewSet(httpd.MechProcTableFull), httpd.Config{})
		if err := srv.Start(); err != nil {
			return nil, fmt.Errorf("experiment: ops-to-failure start: %w", err)
		}
		total := m.mix.Static + m.mix.Listing + m.mix.CGI + m.mix.Proxy + m.mix.NotFound
		point := OpsToFailurePoint{
			Label:    m.label,
			CGIShare: float64(m.mix.CGI) / float64(total),
		}
		reqs := workload.HTTPRequests(seed, m.mix, maxOps)
		point.OpsToFailure = maxOps + 1
		for i, req := range reqs {
			if _, err := srv.Serve(req); err != nil {
				if _, ok := faultinject.AsFailure(err); !ok {
					return nil, fmt.Errorf("experiment: ops-to-failure op %d: %w", i, err)
				}
				point.OpsToFailure = i + 1
				point.Failed = true
				break
			}
		}
		srv.Stop()
		points = append(points, point)
	}
	return points, nil
}

// RenderOpsToFailure renders the sweep.
func RenderOpsToFailure(points []OpsToFailurePoint) string {
	tbl := &stats.Table{Header: []string{"load mix", "CGI share", "requests to failure"}}
	for _, p := range points {
		outcome := fmt.Sprint(p.OpsToFailure)
		if !p.Failed {
			outcome = "never (within budget)"
		}
		tbl.Add(p.Label, fmt.Sprintf("%.0f%%", 100*p.CGIShare), outcome)
	}
	return "Requests sustained before the hung-children fault manifests:\n" + tbl.String()
}
