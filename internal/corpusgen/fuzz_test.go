package corpusgen

import (
	"testing"
)

// FuzzParseCorpusSpec drives arbitrary strings through the corpus-spec
// parser and checks the invariants every accepted spec must hold: bounded
// population sizes, every distribution non-nil with vocabulary-checked
// values, every span positive-parseable, and a canonical String() form that
// re-parses to a byte-identical fixed point. Sampling a fault and an episode
// from every accepted spec proves acceptance implies generability.
func FuzzParseCorpusSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"faults=5000;episodes=500",
		"faults=12;episodes=3;class=50%ei,50%edt",
		"class=81.3%ei,10.1%edn,8.6%edt;app=30%httpd,25%sqldb,25%cache,20%desktop",
		"defect=36%memory,25%logic,15%interface,13%concurrency,11%resource",
		"lifetime=25%30d,30%180d,25%2y,15%4y,5%6y",
		"overlap=60%concurrent,40%cascade;gap=50%10s,30%2m,20%30m",
		"faults=0",
		"faults=;episodes=",
		"class=100%unknown",
		"lifetime=100%never",
		"gap=100%-5s",
		"bogus=1",
		"faults=5;faults=6",
		" faults = 7 ; episodes = 2 ",
		"faults=5;;",
		"=x",
		"class=50%ei,50%ei",
		"lifetime=100%1e309y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseCorpusSpec(s)
		if err != nil {
			return
		}
		if spec.Faults < 1 || spec.Faults > maxFaults {
			t.Fatalf("accepted %q with faults %d", s, spec.Faults)
		}
		if spec.Episodes < 0 || spec.Episodes > maxEpisodes {
			t.Fatalf("accepted %q with episodes %d", s, spec.Episodes)
		}
		for _, e := range spec.Lifetime.Entries() {
			if d, err := parseSpan(e.Value); err != nil || d < 0 {
				t.Fatalf("accepted %q with lifetime span %q: %v", s, e.Value, err)
			}
		}
		for _, e := range spec.Gap.Entries() {
			if d, err := parseSpan(e.Value); err != nil || d < 0 {
				t.Fatalf("accepted %q with gap span %q: %v", s, e.Value, err)
			}
		}
		canon := spec.String()
		again, err := ParseCorpusSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q does not reparse: %v", canon, s, err)
		}
		if again.String() != canon {
			t.Fatalf("String() not a fixed point: %q -> %q", canon, again.String())
		}
		// Acceptance implies generability: one fault and (when asked for)
		// one episode must sample without panicking.
		c := New(spec, 1)
		f0 := c.FaultAt(0)
		if f0.Mechanism == "" || f0.Class != f0.Trigger.DefaultClass() {
			t.Fatalf("spec %q generated inconsistent fault %+v", s, f0)
		}
		if spec.Episodes > 0 {
			e0 := c.EpisodeAt(0)
			if e0.Secondary == "" || e0.Secondary == e0.PrimaryMechanism {
				t.Fatalf("spec %q generated inconsistent episode %+v", s, e0)
			}
		}
	})
}
