package supervise

import (
	"time"

	"faultstudy/internal/simenv"
)

// Clock is the supervisor's view of time. Backoff sleeps, retry-budget
// windows, crash-loop detection, and breaker cooldowns all read it, so a
// deterministic clock makes the whole supervision policy deterministic —
// the property the tests rely on.
type Clock interface {
	// Now returns a monotonic reading.
	Now() time.Duration
	// Sleep advances time by d. For the environment-backed clock this also
	// lets time-healing conditions (DNS outages, slow links, drained
	// entropy) progress, which is exactly what a backoff is for.
	Sleep(d time.Duration)
}

// EnvClock adapts a simulated environment's virtual clock: Now reads
// Env.Monotonic and Sleep calls Env.Advance. Two environments built with the
// same seed drive identical supervision schedules.
type EnvClock struct {
	// Env is the environment whose clock is exposed.
	Env *simenv.Env
}

// Now returns the environment's monotonic reading.
func (c EnvClock) Now() time.Duration { return c.Env.Monotonic() }

// Sleep advances the environment's virtual clock.
func (c EnvClock) Sleep(d time.Duration) { c.Env.Advance(d) }
