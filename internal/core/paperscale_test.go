package core

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"faultstudy/internal/bugsite"
	"faultstudy/internal/taxonomy"
)

// TestPaperScaleNarrowing runs the pipeline at the paper's actual report
// volumes — the Apache tracker at 5220 problem reports and a mailing-list
// archive in the tens of thousands of messages — and checks the narrowing
// still lands on exactly the paper's unique-fault counts. Skipped under
// -short: it crawls thousands of pages.
func TestPaperScaleNarrowing(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale crawl; run without -short")
	}

	// Apache: 5220 total PRs as in the paper. The canonical + duplicate
	// reports occupy ~125 of them; the rest is noise the inclusion bar must
	// discard.
	apacheCfg := bugsite.Config{Seed: 1999, NoiseReports: 5220 - 125}
	gnomeCfg := bugsite.Config{Seed: 1999, NoiseReports: 500 - 112} // ~500 reports as in the paper
	mysqlCfg := bugsite.Config{Seed: 1999, NoiseReports: 20000}     // tens of thousands of list messages

	apache := newSiteServer(t, bugsite.NewApacheSite(apacheCfg))
	gnome := newSiteServer(t, bugsite.NewGnomeSite(gnomeCfg))
	mysql := newSiteServer(t, bugsite.NewMySQLSite(mysqlCfg))

	ctx := context.Background()

	apacheRaw, err := MineApache(ctx, apache)
	if err != nil {
		t.Fatal(err)
	}
	if len(apacheRaw) < 5000 {
		t.Fatalf("apache tracker served %d PRs, want ~5220", len(apacheRaw))
	}
	apacheRes := Classify(apacheRaw, Options{})
	if apacheRes.Unique != 50 {
		t.Errorf("apache: %d unique of %d raw, want 50 (qualifying %d, dups %d)",
			apacheRes.Unique, apacheRes.Raw, apacheRes.Qualifying, apacheRes.Duplicates)
	}
	if apacheRes.Counts[taxonomy.ClassEnvIndependent] != 36 {
		t.Errorf("apache EI = %d at paper scale", apacheRes.Counts[taxonomy.ClassEnvIndependent])
	}

	gnomeRaw, err := MineGnome(ctx, gnome)
	if err != nil {
		t.Fatal(err)
	}
	gnomeRes := Classify(gnomeRaw, Options{})
	if gnomeRes.Unique != 45 {
		t.Errorf("gnome: %d unique of %d raw, want 45", gnomeRes.Unique, gnomeRes.Raw)
	}

	mysqlRaw, err := MineMySQL(ctx, mysql)
	if err != nil {
		t.Fatal(err)
	}
	mysqlRes := Classify(mysqlRaw, Options{})
	if mysqlRes.Unique != 44 {
		t.Errorf("mysql: %d unique of %d keyword threads, want 44", mysqlRes.Unique, mysqlRes.Raw)
	}
}

func newSiteServer(t *testing.T, handler http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv.URL
}
