package faultlint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the fixture expectation marker: `// want EDN`.
var wantRe = regexp.MustCompile(`// want (EI|EDN|EDT)\b`)

// loadFixture loads one testdata/<name> directory as a package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(token.NewFileSet(), filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s: no package", name)
	}
	return pkg
}

// fixtureWants scans the fixture sources for expectation markers and returns
// file:line -> expected class short name.
func fixtureWants(t *testing.T, dir string) map[string]string {
	t.Helper()
	wants := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[fmt.Sprintf("%s:%d", path, i+1)] = m[1]
			}
		}
	}
	return wants
}

// TestAnalyzerFixtures runs each analyzer over its fixture package and
// compares active findings against the `// want <class>` markers: every
// marker must be hit with the expected predicted class, and no unmarked line
// may fire.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			result, err := Run([]*Package{pkg}, []string{a.Name})
			if err != nil {
				t.Fatal(err)
			}
			wants := fixtureWants(t, filepath.Join("testdata", a.Name))
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want markers", a.Name)
			}
			got := make(map[string]string)
			for _, d := range result.Active() {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				got[key] = d.Class.Short()
				if d.Rule != a.Name {
					t.Errorf("%s: finding from rule %s leaked into the %s run", key, d.Rule, a.Name)
				}
			}
			for key, class := range wants {
				switch gotClass, ok := got[key]; {
				case !ok:
					t.Errorf("%s: expected a %s finding (%s), got none", key, a.Name, class)
				case gotClass != class:
					t.Errorf("%s: predicted class %s, want %s", key, gotClass, class)
				}
			}
			for key := range got {
				if _, ok := wants[key]; !ok {
					t.Errorf("%s: unexpected %s finding", key, a.Name)
				}
			}
		})
	}
}

// TestEnvsiteMechanisms checks the mechanism attribution: the constant first
// argument resolves directly, and a computed key resolves through the
// enclosing case clause.
func TestEnvsiteMechanisms(t *testing.T) {
	pkg := loadFixture(t, "envsite")
	result, err := Run([]*Package{pkg}, []string{"envsite"})
	if err != nil {
		t.Fatal(err)
	}
	byMechs := make(map[string]bool)
	for _, d := range result.Diagnostics {
		byMechs[strings.Join(d.Mechanisms, "+")] = true
	}
	for _, want := range []string{
		"app/disk-full",               // named constant
		"app/bounds",                  // string literal
		"app/null-deref+app/bad-init", // case-clause template attribution
	} {
		if !byMechs[want] {
			t.Errorf("no envsite diagnostic attributed to %q (have %v)", want, byMechs)
		}
	}
}

// TestSuppression runs wallclock over the suppress fixture: trailing and
// preceding directives (rule-specific and wildcard) must mark their findings
// suppressed, a mismatched rule must not, and one finding stays active.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	result, err := Run([]*Package{pkg}, []string{"wallclock"})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, active int
	reasons := make(map[string]bool)
	for _, d := range result.Diagnostics {
		if d.Suppressed {
			suppressed++
			reasons[d.SuppressReason] = true
		} else {
			active++
		}
	}
	if suppressed != 2 {
		t.Errorf("suppressed findings = %d, want 2 (trailing + preceding)", suppressed)
	}
	if active != 2 {
		t.Errorf("active findings = %d, want 2 (wrong-rule directive + unannotated)", active)
	}
	if !reasons["deliberate demo pacing"] || !reasons["covers the next line"] {
		t.Errorf("suppression reasons not carried through: %v", reasons)
	}
	if got := len(result.Active()); got != active {
		t.Errorf("Active() = %d findings, want %d", got, active)
	}
}

// TestParseIgnore exercises the directive grammar.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		covers map[string]bool
		reason string
	}{
		{"// plain comment", false, nil, ""},
		{"//faultlint:ignore wallclock timing demo", true,
			map[string]bool{"wallclock": true, "rawrand": false}, "timing demo"},
		{"//faultlint:ignore envcheck,retryloop staged", true,
			map[string]bool{"envcheck": true, "retryloop": true, "wallclock": false}, "staged"},
		{"//faultlint:ignore all everything", true,
			map[string]bool{"wallclock": true, "sharedmut": true}, "everything"},
		{"//faultlint:ignore", true, map[string]bool{"anything": true}, ""},
	}
	for _, c := range cases {
		sup, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if sup.reason != c.reason {
			t.Errorf("parseIgnore(%q) reason = %q, want %q", c.text, sup.reason, c.reason)
		}
		for rule, want := range c.covers {
			if got := sup.covers(rule); got != want {
				t.Errorf("parseIgnore(%q).covers(%s) = %v, want %v", c.text, rule, got, want)
			}
		}
	}
}
