package obsv

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestRegistryMergeCounters verifies counters sum across registries.
func TestRegistryMergeCounters(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("ops_total", L("app", "httpd")...).Add(3)
	b.Counter("ops_total", L("app", "httpd")...).Add(4)
	b.Counter("ops_total", L("app", "sqldb")...).Inc()
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := a.Counter("ops_total", L("app", "httpd")...).Value(); got != 7 {
		t.Errorf("httpd counter = %v, want 7", got)
	}
	if got := a.Counter("ops_total", L("app", "sqldb")...).Value(); got != 1 {
		t.Errorf("sqldb counter = %v, want 1", got)
	}
}

// TestRegistryMergeGaugeLastWins verifies the gauge rule: the merged-in
// shard's value replaces the destination's, reproducing a serial run's final
// Set.
func TestRegistryMergeGaugeLastWins(t *testing.T) {
	a, b, c := NewRegistry(), NewRegistry(), NewRegistry()
	a.Gauge("depth").Set(1)
	b.Gauge("depth").Set(5)
	c.Gauge("depth").Set(2)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge b: %v", err)
	}
	if err := a.Merge(c); err != nil {
		t.Fatalf("Merge c: %v", err)
	}
	if got := a.Gauge("depth").Value(); got != 2 {
		t.Errorf("gauge = %v, want 2 (last merged shard)", got)
	}
}

// TestRegistryMergeHistograms verifies bucket-wise histogram addition
// including sum and count.
func TestRegistryMergeHistograms(t *testing.T) {
	bounds := []float64{1, 10}
	a, b := NewRegistry(), NewRegistry()
	ha := a.Histogram("lat", bounds)
	ha.Observe(0.5)
	ha.Observe(100)
	hb := b.Histogram("lat", bounds)
	hb.Observe(5)
	hb.Observe(0.25)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := ha.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := ha.Sum(); got != 105.75 {
		t.Errorf("sum = %v, want 105.75", got)
	}
	_, cum, _, _ := ha.snapshot()
	want := []uint64{2, 3, 4} // ≤1: {0.5,0.25}; ≤10: +{5}; +Inf: +{100}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

// TestRegistryMergeEmptyAndSingle covers the degenerate shard shapes the
// engine produces constantly: empty shards and single-observation shards.
func TestRegistryMergeEmptyAndSingle(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("lat", LatencyBuckets).Observe(1)

	if err := dst.Merge(NewRegistry()); err != nil {
		t.Fatalf("merge empty registry: %v", err)
	}
	if err := dst.Merge(nil); err != nil {
		t.Fatalf("merge nil registry: %v", err)
	}
	empty := NewRegistry()
	empty.Histogram("lat", LatencyBuckets) // series exists, zero observations
	if err := dst.Merge(empty); err != nil {
		t.Fatalf("merge empty histogram: %v", err)
	}
	single := NewRegistry()
	single.Histogram("lat", LatencyBuckets).Observe(2)
	if err := dst.Merge(single); err != nil {
		t.Fatalf("merge single-sample histogram: %v", err)
	}
	h := dst.Histogram("lat", LatencyBuckets)
	if h.Count() != 2 || h.Sum() != 3 {
		t.Errorf("after merges count=%d sum=%v, want 2 and 3", h.Count(), h.Sum())
	}
}

// TestRegistryMergeKindMismatch verifies a kind clash surfaces as an error,
// not a panic.
func TestRegistryMergeKindMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Inc()
	b.Gauge("x").Set(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging gauge into counter series succeeded, want error")
	}
	c := NewRegistry()
	c.Histogram("x", LatencyBuckets).Observe(1)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging histogram into counter series succeeded, want error")
	}
}

// TestHistogramMergeBoundsMismatch verifies that histograms with different
// bucket bounds refuse to merge.
func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := newHistogram([]float64{1, 2})
	b := newHistogram([]float64{1, 3})
	b.Observe(1)
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("merge with different bounds: err = %v, want bound mismatch", err)
	}
	c := newHistogram([]float64{1})
	c.Observe(1)
	if err := a.Merge(c); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("merge with different bucket count: err = %v, want count mismatch", err)
	}
}

// TestHistogramMergeSelf verifies self-merge is rejected (it would double
// every count) and registry self-merge likewise.
func TestHistogramMergeSelf(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	if err := h.Merge(h); err == nil {
		t.Error("histogram self-merge succeeded, want error")
	}
	r := NewRegistry()
	if err := r.Merge(r); err == nil {
		t.Error("registry self-merge succeeded, want error")
	}
}

// TestHistogramNaNGuards verifies NaN observations are dropped and NaN bounds
// are filtered at construction.
func TestHistogramNaNGuards(t *testing.T) {
	h := newHistogram([]float64{math.NaN(), 1, math.NaN()})
	if len(h.buckets) != 1 || h.buckets[0] != 1 {
		t.Fatalf("buckets = %v, want [1]", h.buckets)
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Errorf("count after NaN observe = %d, want 0", h.Count())
	}
	h.Observe(0.5)
	if h.Count() != 1 || math.IsNaN(h.Sum()) {
		t.Errorf("count=%d sum=%v after one real observe", h.Count(), h.Sum())
	}
	all := newHistogram([]float64{math.NaN()})
	all.Observe(7)
	if all.Count() != 1 {
		t.Errorf("all-NaN-bounds histogram count = %d, want 1 (+Inf bucket)", all.Count())
	}
}

// TestRegistryMergeHelp verifies help strings copy over without overwriting
// the destination's own documentation.
func TestRegistryMergeHelp(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Help("x", "dst doc")
	b.Help("x", "src doc")
	b.Help("y", "only in src")
	b.Counter("x").Inc()
	b.Counter("y").Inc()
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	var buf bytes.Buffer
	if err := a.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "dst doc") || strings.Contains(out, "src doc") {
		t.Errorf("existing help overwritten:\n%s", out)
	}
	if !strings.Contains(out, "only in src") {
		t.Errorf("missing src-only help:\n%s", out)
	}
}

// TestRegistryMergeMatchesSerial is the semantic contract in miniature:
// folding per-shard registries in shard order must reproduce what one shared
// registry would have recorded serially.
func TestRegistryMergeMatchesSerial(t *testing.T) {
	type op struct {
		shard int
		v     float64
	}
	ops := []op{{0, 1}, {0, 3}, {1, 2}, {1, 7}, {2, 0.5}}

	serial := NewRegistry()
	shards := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	for _, o := range ops {
		for _, r := range []*Registry{serial, shards[o.shard]} {
			r.Counter("n").Inc()
			r.Gauge("last").Set(o.v)
			r.Histogram("v", RetryBuckets).Observe(o.v)
		}
	}
	merged := NewRegistry()
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	var want, got bytes.Buffer
	if err := serial.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("merged export differs from serial:\n--- serial\n%s--- merged\n%s", want.String(), got.String())
	}
}

// episodeAt builds a closed single-span episode for merge tests.
func episodeAt(id int, mechanism string) *Episode {
	return &Episode{
		ID:        id,
		Mechanism: mechanism,
		StartUS:   US(10 * time.Millisecond),
		EndUS:     US(20 * time.Millisecond),
		Outcome:   "recovered",
		Spans: []Span{{
			Kind:    SpanFailure,
			StartUS: US(10 * time.Millisecond),
			EndUS:   US(10 * time.Millisecond),
		}},
	}
}

// TestMergeEpisodes verifies shard-order concatenation with 1..N renumbering
// and that inputs are not mutated.
func TestMergeEpisodes(t *testing.T) {
	s0 := []*Episode{episodeAt(1, "a"), episodeAt(2, "b")}
	s1 := []*Episode{episodeAt(1, "c")}
	out := MergeEpisodes(s0, nil, s1)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	wantMech := []string{"a", "b", "c"}
	for i, e := range out {
		if e.ID != i+1 {
			t.Errorf("out[%d].ID = %d, want %d", i, e.ID, i+1)
		}
		if e.Mechanism != wantMech[i] {
			t.Errorf("out[%d].Mechanism = %q, want %q", i, e.Mechanism, wantMech[i])
		}
	}
	if s1[0].ID != 1 {
		t.Errorf("input episode mutated: ID = %d, want 1", s1[0].ID)
	}
	if got := MergeEpisodes(nil, nil); got != nil {
		t.Errorf("MergeEpisodes(nil, nil) = %v, want nil", got)
	}
}

// TestRecorderAppend verifies adopted episodes continue the recorder's own ID
// sequence and nil episodes are skipped.
func TestRecorderAppend(t *testing.T) {
	r := NewRecorder()
	r.Begin(0, "op", "mech")
	r.End(time.Millisecond, "recovered", "retry")
	r.Append(episodeAt(9, "x"), nil, episodeAt(1, "y"))
	eps := r.Episodes()
	if len(eps) != 3 {
		t.Fatalf("len = %d, want 3", len(eps))
	}
	for i, e := range eps {
		if e.ID != i+1 {
			t.Errorf("episodes[%d].ID = %d, want %d", i, e.ID, i+1)
		}
	}
	var nilRec *Recorder
	nilRec.Append(episodeAt(1, "z")) // must not panic
}
