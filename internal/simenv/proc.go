package simenv

import (
	"errors"
	"fmt"
	"sync"
)

// ErrProcTableFull is returned when no process slots remain — the study's
// "child processes ... consume all available slots in the process table"
// condition.
var ErrProcTableFull = errors.New("simenv: process table full")

// PID is a simulated process identifier.
type PID int

// ProcState describes a simulated process.
type ProcState int

const (
	// ProcRunning is a live process.
	ProcRunning ProcState = iota + 1
	// ProcHung is a process that no longer makes progress but still occupies
	// its slot (and any ports it holds).
	ProcHung
	// ProcZombie is an exited child whose slot has not been reaped.
	ProcZombie
)

// String returns the state name.
func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcHung:
		return "hung"
	case ProcZombie:
		return "zombie"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Proc is one process-table entry.
type Proc struct {
	PID   PID
	Owner string
	State ProcState
}

// ProcTable is the kernel process table. Slots are a global resource:
// applications that spawn children and never reap them eventually exhaust it
// for everyone.
type ProcTable struct {
	mu    sync.Mutex
	limit int
	next  PID
	procs map[PID]*Proc
}

func newProcTable(limit int) *ProcTable {
	return &ProcTable{
		limit: limit,
		next:  2, // PID 1 is init
		procs: make(map[PID]*Proc, limit),
	}
}

// Limit returns the table capacity.
func (t *ProcTable) Limit() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}

// SetLimit grows or shrinks the process table (the §6.2 "automatically
// increase the resources available" mitigation applied to process slots).
// Shrinking below current occupancy is rejected.
func (t *ProcTable) SetLimit(n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < len(t.procs) {
		return fmt.Errorf("simenv: proc limit %d below current occupancy %d", n, len(t.procs))
	}
	t.limit = n
	return nil
}

// InUse returns the number of occupied slots (running, hung, and zombie).
func (t *ProcTable) InUse() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.procs)
}

// Spawn allocates a slot for a new process belonging to owner.
func (t *ProcTable) Spawn(owner string) (PID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.procs) >= t.limit {
		return 0, ErrProcTableFull
	}
	pid := t.next
	t.next++
	t.procs[pid] = &Proc{PID: pid, Owner: owner, State: ProcRunning}
	return pid, nil
}

// Lookup returns a copy of the process entry.
func (t *ProcTable) Lookup(pid PID) (Proc, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return Proc{}, false
	}
	return *p, true
}

// Hang marks a process as hung: it stops making progress but keeps its slot.
func (t *ProcTable) Hang(pid PID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("simenv: hang of unknown pid %d", pid)
	}
	p.State = ProcHung
	return nil
}

// Exit turns a process into a zombie; the slot is freed only when reaped.
func (t *ProcTable) Exit(pid PID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("simenv: exit of unknown pid %d", pid)
	}
	p.State = ProcZombie
	return nil
}

// Reap frees the slot of a zombie.
func (t *ProcTable) Reap(pid PID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("simenv: reap of unknown pid %d", pid)
	}
	if p.State != ProcZombie {
		return fmt.Errorf("simenv: reap of non-zombie pid %d (%s)", pid, p.State)
	}
	delete(t.procs, pid)
	return nil
}

// Kill removes a process outright regardless of state.
func (t *ProcTable) Kill(pid PID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.procs[pid]; !ok {
		return fmt.Errorf("simenv: kill of unknown pid %d", pid)
	}
	delete(t.procs, pid)
	return nil
}

// KillOwner removes every process belonging to owner — what a generic
// recovery system does when it recovers an application — and returns how many
// slots were freed.
func (t *ProcTable) KillOwner(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for pid, p := range t.procs {
		if p.Owner == owner {
			delete(t.procs, pid)
			n++
		}
	}
	return n
}

// OwnedBy returns how many slots owner occupies.
func (t *ProcTable) OwnedBy(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.procs {
		if p.Owner == owner {
			n++
		}
	}
	return n
}

// HungOwnedBy returns how many of owner's processes are hung.
func (t *ProcTable) HungOwnedBy(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.procs {
		if p.Owner == owner && p.State == ProcHung {
			n++
		}
	}
	return n
}
