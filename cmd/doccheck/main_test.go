package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCollectFlags harvests the fixture binary's flag set: the four defined
// flags plus the flag package's builtin h/help.
func TestCollectFlags(t *testing.T) {
	bins, err := collectFlags(filepath.Join("testdata", "flags", "cmd"))
	if err != nil {
		t.Fatalf("collectFlags: %v", err)
	}
	flags, ok := bins["mytool"]
	if !ok {
		t.Fatalf("binaries = %v, want mytool", bins)
	}
	for _, want := range []string{"seed", "serve", "out", "arrive", "v", "h", "help"} {
		if !flags[want] {
			t.Errorf("mytool flag set missing %q: %v", want, flags)
		}
	}
	if len(flags) != 7 {
		t.Errorf("mytool flag set = %v, want exactly 7 entries", flags)
	}
}

// TestCheckDocFlagsClean verifies a doc whose every flag exists — including
// mixed go-test lines, negative numbers, em-dashes, and prose-only lines —
// produces no findings.
func TestCheckDocFlagsClean(t *testing.T) {
	bins, err := collectFlags(filepath.Join("testdata", "flags", "cmd"))
	if err != nil {
		t.Fatalf("collectFlags: %v", err)
	}
	findings, err := checkDocFlags(bins, filepath.Join("testdata", "flags", "docs", "good.md"))
	if err != nil {
		t.Fatalf("checkDocFlags: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean doc produced findings: %v", findings)
	}
}

// TestCheckDocFlagsDrift verifies both drift shapes are caught: a stale flag
// in a command line and a stale flag attributed through backticked prose.
func TestCheckDocFlagsDrift(t *testing.T) {
	bins, err := collectFlags(filepath.Join("testdata", "flags", "cmd"))
	if err != nil {
		t.Fatalf("collectFlags: %v", err)
	}
	findings, err := checkDocFlags(bins, filepath.Join("testdata", "flags", "docs", "bad.md"))
	if err != nil {
		t.Fatalf("checkDocFlags: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want exactly 2", findings)
	}
	for i, want := range []string{"-users", "-benchpar"} {
		if !strings.Contains(findings[i], want) || !strings.Contains(findings[i], "mytool") {
			t.Errorf("finding %d = %q, want it to name %s on mytool", i, findings[i], want)
		}
	}
}

// TestIsFlagToken pins the token filter that separates flags from negative
// numbers, dashes, and uppercase prose.
func TestIsFlagToken(t *testing.T) {
	for tok, want := range map[string]bool{
		"serve": true, "reqlog": true, "v2": true,
		"": false, "5": false, "-": false, "Serve": false, "flag.name": false,
	} {
		if got := isFlagToken(tok); got != want {
			t.Errorf("isFlagToken(%q) = %v, want %v", tok, got, want)
		}
	}
}
