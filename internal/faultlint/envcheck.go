package faultlint

import (
	"go/ast"

	"faultstudy/internal/taxonomy"
)

// envcheck flags discarded errors from environment-dependent *acquire*
// operations. Ignoring the error of an acquisition (a descriptor open, a
// disk append, a child spawn, a name lookup) silently assumes the
// environment cooperates; when it stops cooperating — the paper's full
// disks, exhausted descriptor tables, dead name servers — the fault
// surfaces later and darker. The predicted class is EDN: the defect lies
// dormant until a persistent environmental condition arrives, and retry
// will not clear it.
//
// Discarding errors from *release* operations (Close, Kill, ReleasePort...)
// is idiomatic cleanup and not flagged.
var envcheckAnalyzer = &Analyzer{
	Name:  "envcheck",
	Doc:   "discarded error from an environment-dependent acquire operation",
	Class: taxonomy.ClassEnvDependentNonTransient,
	Run:   runEnvcheck,
}

// envAcquireMethods are the environment operations whose errors must not be
// dropped: they acquire or probe a resource the environment can refuse.
var envAcquireMethods = map[string]bool{
	"Open":            true, // FDs
	"Append":          true, // Disk
	"FillFrom":        true,
	"Size":            true,
	"IllegalOwner":    true,
	"Lookup":          true, // DNS
	"Reverse":         true,
	"Spawn":           true, // Procs
	"BindPort":        true, // Net
	"AcquireResource": true,
	"Draw":            true, // Entropy
}

// osNetAcquireFuncs are stdlib calls in command/example binaries whose
// errors carry environment dependence.
var osNetAcquireFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "MkdirAll": true, "Mkdir": true, "ReadDir": true,
	},
	"net": {
		"Listen": true, "Dial": true, "DialTimeout": true, "LookupHost": true,
		"LookupAddr": true, "ResolveTCPAddr": true,
	},
}

// discardedEnvAcquire reports whether the call is an env-dependent acquire
// operation (simenv facility form or os/net qualified form).
func (p *Package) discardedEnvAcquire(f *ast.File, call *ast.CallExpr) (what string, ok bool) {
	if ec, isEnv := asEnvCall(call); isEnv {
		if envAcquireMethods[ec.Method] {
			return ec.Facility + "." + ec.Method, true
		}
		return "", false
	}
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		if path, name, resolved := p.pkgQualified(f, sel); resolved {
			if funcs, known := osNetAcquireFuncs[path]; known && funcs[name] {
				return path + "." + name, true
			}
		}
	}
	return "", false
}

func runEnvcheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, isAcquire := p.Pkg.discardedEnvAcquire(file, call)
			if !isAcquire {
				return true
			}
			// The error is conventionally the final result: flag when the
			// final assignment target is blank. `_ = call()` (single target)
			// is the degenerate case.
			last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
			if !ok || last.Name != "_" {
				return true
			}
			p.Reportf(assign.Pos(),
				"error from environment-dependent %s discarded; a persistent environmental condition (full disk, exhausted table, dead resolver) turns this into a latent fault", what)
			return true
		})
	}
}
