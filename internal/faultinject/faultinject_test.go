package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"faultstudy/internal/taxonomy"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	m := Mechanism{Key: "httpd/x", App: taxonomy.AppApache, Trigger: taxonomy.TriggerWorkloadOnly, Description: "d"}
	if err := r.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(m); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register(Mechanism{}); err == nil {
		t.Error("empty key should fail")
	}
	got, ok := r.Lookup("httpd/x")
	if !ok || got.Description != "d" {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup should miss")
	}
}

func TestRegistryKeysSorted(t *testing.T) {
	r := NewRegistry()
	for _, k := range []string{"c/z", "a/x", "b/y"} {
		r.MustRegister(Mechanism{Key: k, App: taxonomy.AppApache, Trigger: taxonomy.TriggerWorkloadOnly})
	}
	keys := r.Keys()
	want := []string{"a/x", "b/y", "c/z"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v", keys)
		}
	}
}

func TestRegistryByApp(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Mechanism{Key: "httpd/a", App: taxonomy.AppApache, Trigger: taxonomy.TriggerWorkloadOnly})
	r.MustRegister(Mechanism{Key: "sqldb/b", App: taxonomy.AppMySQL, Trigger: taxonomy.TriggerRace})
	got := r.ByApp(taxonomy.AppMySQL)
	if len(got) != 1 || got[0].Key != "sqldb/b" {
		t.Errorf("ByApp = %+v", got)
	}
}

func TestMechanismClass(t *testing.T) {
	m := Mechanism{Trigger: taxonomy.TriggerRace}
	if m.Class() != taxonomy.ClassEnvDependentTransient {
		t.Errorf("Class = %v", m.Class())
	}
}

func TestSet(t *testing.T) {
	s := NewSet("a", "b")
	if !s.Enabled("a") || !s.Enabled("b") || s.Enabled("c") {
		t.Error("initial enablement wrong")
	}
	s.Disable("a")
	if s.Enabled("a") {
		t.Error("Disable did not take")
	}
	s.Enable("c")
	if !s.Enabled("c") {
		t.Error("Enable did not take")
	}
}

func TestNilSetDisablesEverything(t *testing.T) {
	var s *Set
	if s.Enabled("anything") {
		t.Error("nil set must disable all faults")
	}
}

func TestFailureError(t *testing.T) {
	fe := Fail("httpd/x", taxonomy.SymptomCrash, "boom")
	if fe.Error() == "" {
		t.Error("empty error text")
	}
	got, ok := AsFailure(fmt.Errorf("wrapped: %w", fe))
	if !ok || got.Mechanism != "httpd/x" {
		t.Errorf("AsFailure = %+v, %v", got, ok)
	}
	if _, ok := AsFailure(errors.New("plain")); ok {
		t.Error("plain error must not convert")
	}
}

func TestFailureErrorUnwrap(t *testing.T) {
	cause := errors.New("disk full")
	fe := FailCause("httpd/fs-full", taxonomy.SymptomError, "write failed", cause)
	if !errors.Is(fe, cause) {
		t.Error("Unwrap chain broken")
	}
	if fe.Error() == "" {
		t.Error("empty error text")
	}
}

func TestRegistryErrorPaths(t *testing.T) {
	r := NewRegistry()
	base := Mechanism{Key: "app/one", App: taxonomy.AppApache, Trigger: taxonomy.TriggerDiskFull, Description: "d"}
	if err := r.Register(base); err != nil {
		t.Fatal(err)
	}

	// Duplicate keys carry the offending key in the error.
	err := r.Register(base)
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
	if !strings.Contains(err.Error(), "app/one") {
		t.Errorf("duplicate error does not name the key: %v", err)
	}

	// Empty keys are rejected before the map is touched.
	if err := r.Register(Mechanism{App: taxonomy.AppApache}); err == nil {
		t.Error("empty key accepted")
	}
	if got := len(r.Keys()); got != 1 {
		t.Errorf("failed registrations mutated the registry: %d keys", got)
	}

	// MustRegister panics on the same errors and registers otherwise.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRegister(duplicate) did not panic")
			}
		}()
		r.MustRegister(base)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRegister(empty key) did not panic")
			}
		}()
		r.MustRegister(Mechanism{})
	}()
	r.MustRegister(Mechanism{Key: "app/two", App: taxonomy.AppApache, Trigger: taxonomy.TriggerRace})
	if _, ok := r.Lookup("app/two"); !ok {
		t.Error("MustRegister(fresh key) did not register")
	}
}
