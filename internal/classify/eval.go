package classify

import (
	"fmt"
	"strings"

	"faultstudy/internal/corpus"
	"faultstudy/internal/taxonomy"
)

// Confusion is a 3x3 confusion matrix of oracle class vs predicted class,
// plus per-fault disagreements for inspection.
type Confusion struct {
	// Matrix[oracle][predicted] counts decisions.
	Matrix map[taxonomy.FaultClass]map[taxonomy.FaultClass]int
	// Total is the number of faults evaluated.
	Total int
	// Disagreements lists "id: oracle -> predicted" for every miss.
	Disagreements []string
	// TriggerHits counts exact trigger-kind agreement (stricter than class
	// agreement).
	TriggerHits int
}

// Evaluate runs the classifier over the corpus faults and scores it against
// the oracle labels.
func Evaluate(c *Classifier, faults []*corpus.Fault) *Confusion {
	cm := &Confusion{Matrix: make(map[taxonomy.FaultClass]map[taxonomy.FaultClass]int)}
	for _, f := range faults {
		res := c.Classify(f.Report())
		if cm.Matrix[f.Class] == nil {
			cm.Matrix[f.Class] = make(map[taxonomy.FaultClass]int)
		}
		cm.Matrix[f.Class][res.Class]++
		cm.Total++
		if res.Class != f.Class {
			cm.Disagreements = append(cm.Disagreements,
				fmt.Sprintf("%s: %s -> %s (trigger %s, evidence %v)",
					f.ID, f.Class.Short(), res.Class.Short(), res.Trigger, res.Evidence))
		}
		if res.Trigger == f.Trigger {
			cm.TriggerHits++
		}
	}
	return cm
}

// Accuracy returns the fraction of faults whose class was predicted
// correctly.
func (cm *Confusion) Accuracy() float64 {
	if cm.Total == 0 {
		return 0
	}
	hits := 0
	for oracle, row := range cm.Matrix {
		hits += row[oracle]
	}
	return float64(hits) / float64(cm.Total)
}

// TriggerAccuracy returns the fraction of faults whose exact trigger kind was
// predicted.
func (cm *Confusion) TriggerAccuracy() float64 {
	if cm.Total == 0 {
		return 0
	}
	return float64(cm.TriggerHits) / float64(cm.Total)
}

// PredictedCounts returns the predicted per-class totals (the row a pipeline
// run would put in the paper's tables).
func (cm *Confusion) PredictedCounts() map[taxonomy.FaultClass]int {
	out := make(map[taxonomy.FaultClass]int, 3)
	for _, row := range cm.Matrix {
		for pred, n := range row {
			out[pred] += n
		}
	}
	return out
}

// String renders the matrix as an aligned table.
func (cm *Confusion) String() string {
	var b strings.Builder
	classes := taxonomy.Classes()
	fmt.Fprintf(&b, "%-38s", "oracle \\ predicted")
	for _, p := range classes {
		fmt.Fprintf(&b, "%6s", p.Short())
	}
	b.WriteByte('\n')
	for _, o := range classes {
		fmt.Fprintf(&b, "%-38s", o.String())
		for _, p := range classes {
			fmt.Fprintf(&b, "%6d", cm.Matrix[o][p])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "accuracy %.3f (%d faults), trigger accuracy %.3f\n",
		cm.Accuracy(), cm.Total, cm.TriggerAccuracy())
	return b.String()
}
