// Package cache is a simulated LRU cache daemon ("cached") in the mold of
// memcached — the first app archetype outside the paper's three studied
// applications. It exists to test whether the EI/EDN/EDT taxonomy and the
// escalation ladder generalize beyond the studied set: the generated-corpus
// experiments sample faults against it alongside httpd, sqldb, and desktop.
//
// The daemon is a value-level simulation over the simulated operating
// environment, seeded with the same fault shapes the study catalogued:
// deterministic request-path defects (EI), resource exhaustion that persists
// until reclaimed (EDN), and transient timing/network conditions that heal
// on their own (EDT). Its logical state — the keyed items, the LRU order,
// and the hit counters — round-trips through Snapshot/Restore, so the
// generic-recovery proposition is as mechanically testable here as for the
// studied apps.
package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"faultstudy/internal/durable"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Owner is the environment owner tag for all daemon resources.
const Owner = "cached"

// Default resource limits of the simulated daemon.
const (
	defaultPort     = 11211
	defaultCapacity = 32
	// aofDir roots the append-only persistence store: a real write-ahead
	// log plus checkpoint (internal/durable) under /var/lib/cached, written
	// through the injectable disk so its faults damage actual bytes.
	aofDir        = "/var/lib/cached"
	maxValueBytes = 4096
	shadowCopyCap = 16 // leaked shadow copies before the daemon dies
	peerHost      = "peer.cache.example"
	peerTimeout   = 5 * time.Second
)

// Config sets up a Server.
type Config struct {
	// Port is the listening port (0 means 11211).
	Port int
	// Capacity is the LRU entry capacity (0 means 32).
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = defaultPort
	}
	if c.Capacity == 0 {
		c.Capacity = defaultCapacity
	}
	return c
}

// Server is the simulated cache daemon.
type Server struct {
	env    *simenv.Env
	faults *faultinject.Set
	cfg    Config

	mu       sync.Mutex
	running  bool
	degraded bool
	connFDs  []simenv.FD

	// Component-tree hooks (see components.go). portBound tracks listening
	// port ownership so the listener part can release and rebind it;
	// aofSuspended makes a down persist component serve unpersisted.
	portBound    bool
	aofSuspended bool

	// store is the append-only persistence log: every acknowledged mutation
	// is WAL-logged through it, and rebooting the persist component reruns
	// real recovery (checkpoint-load + log-replay) over its bytes.
	store *durable.Store

	// Logical state (travels through Snapshot/Restore).
	items       map[string]string
	lru         []string // least-recent first
	requests    int64
	gets        int64
	hits        int64
	shadowBytes int
	connFDWant  int
	lastFlush   bool // previous op was a FLUSH (the double-free window)
}

// New builds a daemon over the environment with the given active bug set.
// A nil fault set yields a bug-free daemon.
func New(env *simenv.Env, faults *faultinject.Set, cfg Config) *Server {
	s := &Server{
		env:    env,
		faults: faults,
		cfg:    cfg.withDefaults(),
	}
	s.resetContent()
	return s
}

func (s *Server) resetContent() {
	s.items = map[string]string{
		"motd":    "welcome to cached",
		"version": "cached 1.0",
	}
	s.lru = []string{"motd", "version"}
}

// Name returns the environment owner tag.
func (s *Server) Name() string { return Owner }

// Env returns the daemon's environment (for scenario staging).
func (s *Server) Env() *simenv.Env { return s.env }

// SetDegraded toggles degraded mode: the daemon keeps answering reads from
// the local index but suspends every environment-touching side path — the
// append-only persistence log and the replication-peer fill on misses. This
// is what lets a daemon on a full partition or behind a flapping resolver
// keep serving hits.
func (s *Server) SetDegraded(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded = on
}

// Degraded reports whether degraded mode is on.
func (s *Server) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Running reports whether the daemon is started.
func (s *Server) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Start binds the port and reopens every connection descriptor the logical
// state says the daemon held (leaks included — a truly generic recovery
// restores them).
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return errors.New("cache: already running")
	}
	if err := s.env.Net().BindPort(s.cfg.Port, Owner); err != nil {
		return fmt.Errorf("cache: start: %w", err)
	}
	s.portBound = true
	for len(s.connFDs) < s.connFDWant {
		fd, err := s.env.FDs().Open(Owner)
		if err != nil {
			_ = s.env.Net().ReleasePort(s.cfg.Port)
			s.portBound = false
			s.closeConnFDsLocked()
			return faultinject.FailCause(MechConnFDLeak, taxonomy.SymptomError,
				"cannot reopen held connection descriptors", err)
		}
		s.connFDs = append(s.connFDs, fd)
	}
	if err := s.reopenStoreLocked(); err != nil {
		_ = s.env.Net().ReleasePort(s.cfg.Port)
		s.portBound = false
		s.closeConnFDsLocked()
		return err
	}
	s.running = true
	s.aofSuspended = false
	return nil
}

// reopenStoreLocked closes any previous store incarnation and runs durable
// recovery over whatever the append-only log left on disk — every boot of
// the persistence path is a real replay.
func (s *Server) reopenStoreLocked() error {
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
	st, _, err := durable.Open(s.env, Owner, aofDir, durable.Options{NoFD: true})
	if err != nil {
		return fmt.Errorf("cache: open aof store: %w", err)
	}
	s.store = st
	return nil
}

func (s *Server) closeConnFDsLocked() {
	for _, fd := range s.connFDs {
		_ = s.env.FDs().Close(fd)
	}
	s.connFDs = nil
}

// Stop shuts the daemon down, releasing the port and every descriptor.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.running = false
	s.portBound = false
	s.closeConnFDsLocked()
	if s.store != nil {
		s.store.Close()
	}
	_ = s.env.Net().ReleasePort(s.cfg.Port)
}

// Requests returns the number of operations served.
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// Len returns the number of cached items.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// preamble runs the per-operation environment checks shared by every
// command: the leaked connection descriptor and the transient network
// conditions.
func (s *Server) preamble() error {
	if s.faults.Enabled(MechConnFDLeak) {
		fd, err := s.env.FDs().Open(Owner)
		if err != nil {
			return faultinject.FailCause(MechConnFDLeak, taxonomy.SymptomError,
				"per-connection descriptor unavailable", err)
		}
		s.connFDs = append(s.connFDs, fd) // the bug: never closed
		s.connFDWant = len(s.connFDs)
	}
	if s.faults.Enabled(MechSlowReplFlush) && s.env.Net().Slow() {
		return faultinject.Fail(MechSlowReplFlush, taxonomy.SymptomHang,
			"replication flush stalled on a saturated link")
	}
	return nil
}

// logAOF persists one mutation batch to the append-only log, synced before
// acknowledgement. Degraded mode and a down persist component skip
// persistence entirely; a healthy daemon on a full partition drops the log
// record and carries on, while the seeded disk-full bug fails the operation
// instead. A log at the maximum file size triggers the AOF rewrite — a
// checkpoint of the full state that truncates the log.
func (s *Server) logAOF(ops []durable.Op) error {
	if s.degraded || s.aofSuspended || s.store == nil {
		return nil
	}
	err := s.store.Apply(ops)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, simenv.ErrDiskFull):
		if s.faults.Enabled(MechAOFDiskFull) {
			return faultinject.FailCause(MechAOFDiskFull, taxonomy.SymptomError,
				"append-only log write failed on a full partition", err)
		}
		return nil
	case errors.Is(err, simenv.ErrFileTooLarge):
		if cerr := s.store.Checkpoint(); cerr != nil {
			return fmt.Errorf("cache: aof rewrite: %w", cerr)
		}
		return s.store.Apply(ops)
	default:
		return fmt.Errorf("cache: aof: %w", err)
	}
}

// touch moves key to the most-recent end of the LRU order.
func (s *Server) touch(key string) {
	for i, k := range s.lru {
		if k == key {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	s.lru = append(s.lru, key)
}

// Get answers one lookup. A miss consults the replication peer when one is
// configured (the dns mechanisms); the seeded empty-key bug crashes on the
// sentinel unkeyed lookup.
func (s *Server) Get(key string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return "", errors.New("cache: not running")
	}
	s.requests++
	s.lastFlush = false
	if err := s.preamble(); err != nil {
		return "", err
	}
	if s.faults.Enabled(MechEmptyKeyDeref) && key == "" {
		s.running = false
		return "", faultinject.Fail(MechEmptyKeyDeref, taxonomy.SymptomCrash,
			"null item pointer dereferenced on an empty key")
	}
	s.gets++
	if v, ok := s.items[key]; ok {
		s.hits++
		s.touch(key)
		return v, nil
	}
	// Miss: fill from the replication peer unless degraded.
	if s.faults.Enabled(MechPeerDNSFlap) && !s.degraded {
		_, latency, err := s.env.DNS().Lookup(peerHost)
		if err != nil {
			return "", faultinject.FailCause(MechPeerDNSFlap, taxonomy.SymptomError,
				"replication peer lookup failed", err)
		}
		if latency > peerTimeout {
			return "", faultinject.Fail(MechPeerDNSFlap, taxonomy.SymptomHang,
				"miss fill stalled on a slow peer lookup")
		}
	}
	return "", nil
}

// Set stores one item, evicting the least-recently-used entry at capacity.
// The seeded bugs on this path: the TTL parser loop, the oversized-value
// bounds overrun, the off-by-one eviction, and the shadow-copy leak.
func (s *Server) Set(key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return errors.New("cache: not running")
	}
	s.requests++
	s.lastFlush = false
	if err := s.preamble(); err != nil {
		return err
	}
	if s.faults.Enabled(MechTTLParseLoop) && strings.Contains(value, "ttl=-1") {
		s.running = false
		return faultinject.Fail(MechTTLParseLoop, taxonomy.SymptomHang,
			"expiry parser spins forever on a negative TTL")
	}
	if s.faults.Enabled(MechBigValueBounds) && len(value) > maxValueBytes {
		s.running = false
		return faultinject.Fail(MechBigValueBounds, taxonomy.SymptomCrash,
			"slab bounds overrun storing an oversized value")
	}
	if s.faults.Enabled(MechShadowCopyLeak) {
		s.shadowBytes++
		if s.shadowBytes > shadowCopyCap {
			s.running = false
			return faultinject.Fail(MechShadowCopyLeak, taxonomy.SymptomCrash,
				"leaked shadow copies exhausted memory under sustained load")
		}
	}
	var evicted []durable.Op
	if _, exists := s.items[key]; !exists && len(s.items) >= s.cfg.Capacity {
		if s.faults.Enabled(MechEvictOffByOne) {
			s.running = false
			return faultinject.Fail(MechEvictOffByOne, taxonomy.SymptomCrash,
				"off-by-one in the eviction scan corrupted the LRU index")
		}
		if len(s.lru) > 0 {
			victim := s.lru[0]
			s.lru = s.lru[1:]
			delete(s.items, victim)
			evicted = []durable.Op{{Kind: durable.OpDelete, Key: victim}}
		}
	}
	// The eviction and the store travel as one atomic log record.
	ops := append(evicted, durable.Op{Kind: durable.OpPut, Key: key, Value: []byte(value)})
	if err := s.logAOF(ops); err != nil {
		return err
	}
	s.items[key] = value
	s.touch(key)
	return nil
}

// Del removes one item. The seeded expiry race: a delete interleaving with
// the background expiry sweep frees the entry twice.
func (s *Server) Del(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return errors.New("cache: not running")
	}
	s.requests++
	s.lastFlush = false
	if err := s.preamble(); err != nil {
		return err
	}
	if s.faults.Enabled(MechExpiryRace) && s.env.Sched().RaceFires(MechExpiryRace, 3) {
		s.running = false
		return faultinject.Fail(MechExpiryRace, taxonomy.SymptomCrash,
			"delete raced the expiry sweep and freed the entry twice")
	}
	if err := s.logAOF([]durable.Op{{Kind: durable.OpDelete, Key: key}}); err != nil {
		return err
	}
	delete(s.items, key)
	for i, k := range s.lru {
		if k == key {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	return nil
}

// Stats reports the hit ratio. Seeded bugs: the division by a zero lookup
// count, and the stale counter snapshot that reports garbage.
func (s *Server) Stats() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return "", errors.New("cache: not running")
	}
	s.requests++
	s.lastFlush = false
	if err := s.preamble(); err != nil {
		return "", err
	}
	if s.faults.Enabled(MechStatsDivZero) && s.gets == 0 {
		s.running = false
		return "", faultinject.Fail(MechStatsDivZero, taxonomy.SymptomCrash,
			"hit-ratio division by a zero lookup count")
	}
	if s.faults.Enabled(MechWrongHitCount) {
		return "hits=-1 gets=-1", faultinject.Fail(MechWrongHitCount, taxonomy.SymptomError,
			"stats assembled from a stale counter snapshot")
	}
	return fmt.Sprintf("hits=%d gets=%d items=%d", s.hits, s.gets, len(s.items)), nil
}

// Flush empties the cache. The seeded bug: a second consecutive flush frees
// the (already freed) slab list again.
func (s *Server) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return errors.New("cache: not running")
	}
	s.requests++
	if err := s.preamble(); err != nil {
		return err
	}
	if s.faults.Enabled(MechFlushDoubleFree) && s.lastFlush {
		s.running = false
		return faultinject.Fail(MechFlushDoubleFree, taxonomy.SymptomCrash,
			"second flush freed the slab list twice")
	}
	s.lastFlush = true
	if err := s.logAOF([]durable.Op{{Kind: durable.OpClear}}); err != nil {
		return err
	}
	s.items = map[string]string{}
	s.lru = nil
	return nil
}

// serverState is the wire form of the daemon's logical state.
type serverState struct {
	Items       map[string]string `json:"items"`
	LRU         []string          `json:"lru"`
	Requests    int64             `json:"requests"`
	Gets        int64             `json:"gets"`
	Hits        int64             `json:"hits"`
	ShadowBytes int               `json:"shadowBytes"`
	ConnFDWant  int               `json:"connFDWant"`
}

// Snapshot captures the daemon's complete logical state, held (leaked)
// descriptors counted — a truly generic recovery restores every resource the
// state says the application held.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	items := make(map[string]string, len(s.items))
	for k, v := range s.items {
		items[k] = v
	}
	lru := append([]string(nil), s.lru...)
	return json.Marshal(serverState{
		Items:       items,
		LRU:         lru,
		Requests:    s.requests,
		Gets:        s.gets,
		Hits:        s.hits,
		ShadowBytes: s.shadowBytes,
		ConnFDWant:  s.connFDWant,
	})
}

// Restore replaces the daemon's logical state from a snapshot and restarts
// it, re-acquiring the port and every held descriptor the state mandates.
// The daemon must be stopped.
func (s *Server) Restore(snapshot []byte) error {
	var st serverState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return fmt.Errorf("cache: restore: %w", err)
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return errors.New("cache: restore while running")
	}
	s.closeConnFDsLocked()
	s.items = st.Items
	if s.items == nil {
		s.items = map[string]string{}
	}
	s.lru = st.LRU
	s.requests = st.Requests
	s.gets = st.Gets
	s.hits = st.Hits
	s.shadowBytes = st.ShadowBytes
	s.connFDWant = st.ConnFDWant
	s.lastFlush = false
	s.mu.Unlock()
	if err := s.Start(); err != nil {
		return err
	}
	// Reconcile the append-only store with the restored state as one atomic
	// batch (clear + re-put in LRU order). A failure — say the partition is
	// still full — leaves the store wounded; the next append repairs it, and
	// the daemon serves from the restored index meanwhile.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		ops := []durable.Op{{Kind: durable.OpClear}}
		seen := make(map[string]bool, len(s.items))
		for _, key := range s.lru {
			if v, ok := s.items[key]; ok && !seen[key] {
				ops = append(ops, durable.Op{Kind: durable.OpPut, Key: key, Value: []byte(v)})
				seen[key] = true
			}
		}
		rest := make([]string, 0, len(s.items))
		for key := range s.items {
			if !seen[key] {
				rest = append(rest, key)
			}
		}
		sort.Strings(rest)
		for _, key := range rest {
			ops = append(ops, durable.Op{Kind: durable.OpPut, Key: key, Value: []byte(s.items[key])})
		}
		_ = s.store.Apply(ops)
	}
	return nil
}

// Reset reinitializes the daemon to its pristine configuration — the
// application-specific recovery the paper contrasts with generic recovery.
// All accumulated state (items, counters, leaks) is discarded. The daemon
// must be stopped.
func (s *Server) Reset() error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return errors.New("cache: reset while running")
	}
	s.closeConnFDsLocked()
	if s.store != nil {
		_ = s.store.Destroy()
		s.store = nil
	}
	s.requests = 0
	s.gets = 0
	s.hits = 0
	s.shadowBytes = 0
	s.connFDWant = 0
	s.lastFlush = false
	s.resetContent()
	s.mu.Unlock()
	return s.Start()
}

// DurableStore exposes the append-only persistence store for probes that
// verify acknowledged mutations against recovered bytes.
func (s *Server) DurableStore() *durable.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// Keys returns the cached keys, sorted (test helper).
func (s *Server) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
