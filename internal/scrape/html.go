// Package scrape provides the minimal HTML handling the mining pipeline
// needs: a tokenizer good enough for the static tracker pages of the era,
// link extraction, tag stripping, and a polite same-host crawler built on
// net/http.
package scrape

import (
	"strings"
)

// Token is one HTML token.
type Token struct {
	// Kind is the token kind.
	Kind TokenKind
	// Name is the lowercased tag name for start/end tags.
	Name string
	// Attrs holds attributes for start tags (lowercased keys).
	Attrs map[string]string
	// Text is the text content for text tokens.
	Text string
}

// TokenKind discriminates Token values.
type TokenKind int

const (
	// TokenText is character data.
	TokenText TokenKind = iota + 1
	// TokenStartTag is an opening or self-closing tag.
	TokenStartTag
	// TokenEndTag is a closing tag.
	TokenEndTag
)

// Tokenize splits an HTML document into tokens. It handles the subset of
// HTML the simulated trackers emit: tags with quoted or bare attribute
// values, comments, and character data. Entities in text are decoded for the
// five predefined entities.
func Tokenize(html string) []Token {
	var tokens []Token
	i := 0
	n := len(html)
	emitText := func(s string) {
		if s == "" {
			return
		}
		tokens = append(tokens, Token{Kind: TokenText, Text: decodeEntities(s)})
	}
	for i < n {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			emitText(html[i:])
			break
		}
		emitText(html[i : i+lt])
		i += lt
		// Comment?
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break // unterminated comment swallows the rest
			}
			i += 4 + end + 3
			continue
		}
		gt := strings.IndexByte(html[i:], '>')
		if gt < 0 {
			emitText(html[i:])
			break
		}
		raw := html[i+1 : i+gt]
		i += gt + 1
		raw = strings.TrimSpace(raw)
		if raw == "" || strings.HasPrefix(raw, "!") || strings.HasPrefix(raw, "?") {
			continue // doctype / processing instruction
		}
		if strings.HasPrefix(raw, "/") {
			tokens = append(tokens, Token{
				Kind: TokenEndTag,
				Name: strings.ToLower(strings.TrimSpace(raw[1:])),
			})
			continue
		}
		raw = strings.TrimSuffix(raw, "/")
		name, attrText, _ := strings.Cut(raw, " ")
		tokens = append(tokens, Token{
			Kind:  TokenStartTag,
			Name:  strings.ToLower(strings.TrimSpace(name)),
			Attrs: parseAttrs(attrText),
		})
	}
	return tokens
}

func parseAttrs(s string) map[string]string {
	attrs := make(map[string]string)
	i := 0
	n := len(s)
	for i < n {
		for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && s[i] != '=' && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' {
			i++
		}
		key := strings.ToLower(s[start:i])
		if key == "" {
			i++
			continue
		}
		if i >= n || s[i] != '=' {
			attrs[key] = ""
			continue
		}
		i++ // skip '='
		if i < n && (s[i] == '"' || s[i] == '\'') {
			quote := s[i]
			i++
			vstart := i
			for i < n && s[i] != quote {
				i++
			}
			attrs[key] = decodeEntities(s[vstart:i])
			if i < n {
				i++
			}
		} else {
			vstart := i
			for i < n && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' {
				i++
			}
			attrs[key] = decodeEntities(s[vstart:i])
		}
	}
	return attrs
}

var entityReplacer = strings.NewReplacer(
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
	"&amp;", "&", // must be last so double-encoded text decodes once
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}

// EncodeEntities escapes text for embedding in HTML.
func EncodeEntities(s string) string {
	return strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
	).Replace(s)
}

// Links returns the href targets of all anchor tags, in document order.
func Links(html string) []string {
	var links []string
	for _, tok := range Tokenize(html) {
		if tok.Kind == TokenStartTag && tok.Name == "a" {
			if href, ok := tok.Attrs["href"]; ok && href != "" {
				links = append(links, href)
			}
		}
	}
	return links
}

// textSkip tags whose contents are not document text.
var textSkip = map[string]bool{"script": true, "style": true}

// blockTags are tags that imply a line break in extracted text.
var blockTags = map[string]bool{
	"p": true, "br": true, "div": true, "tr": true, "li": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "pre": true,
	"table": true, "blockquote": true, "hr": true,
}

// Text extracts the visible text of an HTML document, with block-level tags
// producing line breaks. Runs of blank lines collapse to one.
func Text(html string) string {
	var b strings.Builder
	skipDepth := 0
	for _, tok := range Tokenize(html) {
		switch tok.Kind {
		case TokenStartTag:
			if textSkip[tok.Name] {
				skipDepth++
			}
			if blockTags[tok.Name] {
				b.WriteByte('\n')
			}
		case TokenEndTag:
			if textSkip[tok.Name] && skipDepth > 0 {
				skipDepth--
			}
			if blockTags[tok.Name] {
				b.WriteByte('\n')
			}
		case TokenText:
			if skipDepth == 0 {
				b.WriteString(tok.Text)
			}
		}
	}
	// Normalize: trim each line, collapse blank runs.
	lines := strings.Split(b.String(), "\n")
	var out []string
	blank := true
	for _, l := range lines {
		t := strings.TrimRight(l, " \t")
		if strings.TrimSpace(t) == "" {
			if !blank {
				out = append(out, "")
			}
			blank = true
			continue
		}
		out = append(out, t)
		blank = false
	}
	return strings.TrimSpace(strings.Join(out, "\n"))
}
