package obsv

import (
	"bytes"
	"testing"
)

// fuzzTraceSeed is a two-episode trace in the exact shape WriteJSONL emits.
const fuzzTraceSeed = `{"episode":1,"app":"apache","fault_id":"httpd/dns-error","class":"EDN","mechanism":"httpd/dns-error","op":"serve","start_us":1000,"end_us":5000,"outcome":"recovered","retries":2,"final_rung":"retry","spans":[{"kind":"failure","start_us":1000,"end_us":1000,"note":"dns: lookup failed"},{"kind":"retry","attempt":1,"start_us":1200,"end_us":1400,"outcome":"fail"},{"kind":"retry","attempt":2,"start_us":2000,"end_us":2200,"outcome":"ok"}]}
{"episode":2,"app":"mysql","start_us":0,"end_us":0,"outcome":"lost","retries":0}
`

// FuzzReadEpisodeTrace drives the JSONL trace reader with arbitrary bytes.
// The invariants: ReadJSONL never panics, every accepted episode passes
// Validate (the reader's own schema gate), and an accepted trace round-trips —
// WriteJSONL of the parsed episodes re-reads to the identical serialization,
// the byte-stability property the artifact pipeline depends on.
func FuzzReadEpisodeTrace(f *testing.F) {
	f.Add([]byte(fuzzTraceSeed))
	f.Add([]byte(`{"episode":1,"start_us":0,"end_us":0,"outcome":"recovered","retries":0}`))
	f.Add([]byte(`{"episode":0,"outcome":"recovered"}`))
	f.Add([]byte(`{"episode":1,"outcome":"no-such-outcome"}`))
	f.Add([]byte(`{"episode":1,"outcome":"lost","start_us":5,"end_us":1}`))
	f.Add([]byte(`{"episode":1,"outcome":"lost","unknown_field":true}`))
	f.Add([]byte(`{"episode":1,"outcome":"shed","spans":[{"kind":"","start_us":0,"end_us":0}]}`))
	f.Add([]byte("not json\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xff, 0x7b})
	f.Fuzz(func(t *testing.T, data []byte) {
		episodes, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, e := range episodes {
			if e == nil {
				t.Fatalf("episode %d is nil", i)
			}
			if verr := e.Validate(); verr != nil {
				t.Fatalf("accepted episode %d fails Validate: %v", i, verr)
			}
		}
		var first bytes.Buffer
		if err := WriteJSONL(&first, episodes); err != nil {
			t.Fatalf("WriteJSONL of accepted episodes: %v", err)
		}
		again, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written trace: %v", err)
		}
		var second bytes.Buffer
		if err := WriteJSONL(&second, again); err != nil {
			t.Fatalf("second WriteJSONL: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip not byte-stable:\n--- first\n%s--- second\n%s", first.String(), second.String())
		}
	})
}
