package core

import (
	"context"
	"fmt"

	"faultstudy/internal/classify"
	"faultstudy/internal/dedup"
	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// Options tunes the study pipeline; the zero value is the paper
// configuration.
type Options struct {
	// Dedup tunes the duplicate detector.
	Dedup dedup.Options
	// Classifier tunes the fault classifier.
	Classifier classify.Options
}

// Classified pairs a canonical report with its classification.
type Classified struct {
	// Report is the canonical bug report.
	Report *report.Report
	// Result is the classifier's decision.
	Result classify.Result
}

// AppResult is the study output for one application.
type AppResult struct {
	// App is the application.
	App taxonomy.Application
	// Raw is the number of reports mined before any filtering (for the
	// mailing list: keyword-matching threads).
	Raw int
	// Qualifying is the count after the study's inclusion bar.
	Qualifying int
	// Duplicates is the number of qualifying reports marked as duplicates.
	Duplicates int
	// Unique is the number of canonical (unique) faults.
	Unique int
	// Counts tallies the unique faults per class — the paper's table row.
	Counts map[taxonomy.FaultClass]int
	// Faults holds the classified canonical reports.
	Faults []Classified
}

// Table renders the result in the layout of the paper's Tables 1–3.
func (r *AppResult) Table() string {
	out := fmt.Sprintf("Classification of faults for %s (%d unique of %d reports):\n", r.App, r.Unique, r.Raw)
	for _, c := range taxonomy.Classes() {
		out += fmt.Sprintf("  %-36s %d\n", c.String(), r.Counts[c])
	}
	return out
}

// Classify runs the post-mining stages over raw reports: inclusion filter,
// duplicate narrowing, and per-fault classification.
func Classify(raw []*report.Report, opts Options) *AppResult {
	res := &AppResult{Raw: len(raw), Counts: make(map[taxonomy.FaultClass]int, 3)}
	if len(raw) > 0 {
		res.App = raw[0].App
	}

	qualifying := report.FilterQualifying(raw)
	res.Qualifying = len(qualifying)
	sortReports(qualifying)

	res.Duplicates = dedup.Mark(qualifying, opts.Dedup)
	canonical := report.Canonical(qualifying)
	res.Unique = len(canonical)

	classifier := classify.New(opts.Classifier)
	for _, r := range canonical {
		decision := classifier.Classify(r)
		res.Counts[decision.Class]++
		res.Faults = append(res.Faults, Classified{Report: r, Result: decision})
	}
	return res
}

// StudyResult is the full three-application study.
type StudyResult struct {
	// Apps holds per-application results keyed by application.
	Apps map[taxonomy.Application]*AppResult
}

// Totals aggregates the per-class counts across applications (the §5.4
// discussion numbers).
func (s *StudyResult) Totals() (counts map[taxonomy.FaultClass]int, total int) {
	counts = make(map[taxonomy.FaultClass]int, 3)
	for _, r := range s.Apps {
		for c, n := range r.Counts {
			counts[c] += n
			total += n
		}
	}
	return counts, total
}

// Sources names the tracker base URLs for a full study run.
type Sources struct {
	// ApacheBase serves the GNATS tracker under /bugdb/.
	ApacheBase string
	// GnomeBase serves the debbugs tracker under /bugs/ and the CVS log
	// under /cvs/log.
	GnomeBase string
	// MySQLBase serves the mbox archive under /archive/.
	MySQLBase string
}

// Study mines all three sources and runs the full pipeline over each — the
// paper's methodology end to end.
func Study(ctx context.Context, src Sources, opts Options) (*StudyResult, error) {
	out := &StudyResult{Apps: make(map[taxonomy.Application]*AppResult, 3)}

	apache, err := MineApache(ctx, src.ApacheBase)
	if err != nil {
		return nil, err
	}
	out.Apps[taxonomy.AppApache] = Classify(apache, opts)

	gnome, err := MineGnome(ctx, src.GnomeBase)
	if err != nil {
		return nil, err
	}
	out.Apps[taxonomy.AppGnome] = Classify(gnome, opts)

	mysql, err := MineMySQL(ctx, src.MySQLBase)
	if err != nil {
		return nil, err
	}
	out.Apps[taxonomy.AppMySQL] = Classify(mysql, opts)
	return out, nil
}
