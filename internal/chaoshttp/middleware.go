package chaoshttp

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"
)

// Middleware is the server-side shape of the chaos layer: it wraps a served
// bugsite and perturbs responses under the same seed-deterministic fault
// plan an Injector would apply client-side. bugminer -chaos uses it to serve
// a genuinely misbehaving simulated tracker over a real socket.
//
// Kind mapping on the server side: status faults write the synthetic status
// (with Retry-After); connection-level faults (reset, DNS, exhaustion) abort
// the connection mid-response, which the client observes as a transport
// error; latency faults sleep real, context-bounded time — the client's
// deadline, not the middleware, decides how long that is tolerated;
// truncation writes half the body under a full Content-Length.
type Middleware struct {
	in   *Injector
	next http.Handler
}

// zeroClock stamps middleware injection-log entries when the caller supplies
// no clock; the real latency faults sleep wall time regardless.
type zeroClock struct{}

// Now always reads zero: log entries from a clockless middleware carry no
// meaningful time.
func (zeroClock) Now() time.Duration { return 0 }

// Advance does nothing; the middleware's latency faults sleep wall time.
func (zeroClock) Advance(time.Duration) {}

// NewMiddleware wraps next with the fault plan in cfg. The clock only stamps
// the injection log; pass nil to use a zero clock.
func NewMiddleware(cfg Config, clock Clock, next http.Handler) *Middleware {
	if clock == nil {
		clock = zeroClock{}
	}
	return &Middleware{in: NewInjector(cfg, noopTransport{}, clock), next: next}
}

// noopTransport satisfies NewInjector's non-nil contract; the middleware
// never forwards through it.
type noopTransport struct{}

// RoundTrip always refuses: the middleware serves via its wrapped handler,
// never through a transport.
func (noopTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return nil, http.ErrNotSupported
}

// Injections returns the injection log, in firing order.
func (m *Middleware) Injections() []Injection { return m.in.Injections() }

// Outcomes returns the per-URL chaos outcomes.
func (m *Middleware) Outcomes() []URLOutcome { return m.in.Outcomes() }

// ServeHTTP applies the fault plan to one request, delegating untargeted
// traffic to the wrapped handler unchanged.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.in.mu.Lock()
	m.in.requests++
	f, injected := m.in.pick(r.URL.Path, m.in.clock.Now())
	m.in.mu.Unlock()

	if !injected {
		m.next.ServeHTTP(w, r)
		m.in.markClean(r.URL.Path, m.in.clock.Now())
		return
	}

	switch f.Kind {
	case KindStatusOnce, KindStatusAlways:
		if f.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(f.RetryAfter/time.Second)))
		}
		http.Error(w, "chaos: injected "+f.Name, f.Status)
	case KindConnResetOnce, KindDNSOnce, KindHostExhaust:
		// Aborting the handler drops the connection; the client observes a
		// transport-level error, the closest real-socket analogue to the
		// injected reset/DNS/exhaustion errors.
		panic(http.ErrAbortHandler)
	case KindLatencyOnce, KindSlowAlways:
		if !sleepCtx(r.Context(), f.Latency) {
			panic(http.ErrAbortHandler) // client gave up first
		}
		m.next.ServeHTTP(w, r)
	case KindTruncateOnce:
		rec := httptest.NewRecorder()
		m.next.ServeHTTP(rec, r)
		full := rec.Body.Bytes()
		for k, vs := range rec.Header() {
			w.Header()[k] = vs
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(full)))
		w.WriteHeader(rec.Code)
		w.Write(full[:len(full)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		// Abort so the connection closes short of the declared length
		// instead of the server quietly repairing the framing.
		panic(http.ErrAbortHandler)
	default:
		http.Error(w, "chaos: unknown fault kind", http.StatusInternalServerError)
	}
}

// sleepCtx sleeps real time d, returning false if ctx expired first. The
// middleware injects latency into a live server, so wall time is the point;
// the virtual-clock path (Injector) is what experiments use.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d) //faultlint:ignore wallclock chaos middleware injects real latency into a live HTTP server; the client deadline bounds it
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
