package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"faultstudy/internal/faultlint"
)

// -update regenerates the golden files from current output.
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// runFixture drives the full report pipeline over the scopeworld fixture.
func runFixture(t *testing.T, cfg config) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cfg.dir = filepath.Join("testdata", "scopeworld")
	code := report(&stdout, &stderr, cfg)
	return stdout.String(), stderr.String(), code
}

// The fixture has active gating findings (envcheck in appb, scopegap in
// appa), so -scope runs exit 1 — the gate, not an error.
func TestScopeTextGolden(t *testing.T) {
	out, errOut, code := runFixture(t, config{scope: true, verbose: true})
	if errOut != "" {
		t.Fatalf("stderr: %s", errOut)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 (active gating findings)", code)
	}
	checkGolden(t, "scopeworld.txt", []byte(out))
}

func TestScopeJSONGolden(t *testing.T) {
	out, errOut, code := runFixture(t, config{scope: true, jsonOut: true})
	if errOut != "" {
		t.Fatalf("stderr: %s", errOut)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 (active gating findings)", code)
	}
	checkGolden(t, "scopeworld.json", []byte(out))
}

// The merged -scope report must stay in file/line/col/rule order across
// packages — the CLI-layer sort the golden diffs depend on.
func TestMergedDiagnosticsSorted(t *testing.T) {
	out, _, _ := runFixture(t, config{scope: true})
	type key struct {
		file      string
		line, col int
		rule      string
	}
	var keys []key
	for _, ln := range strings.Split(out, "\n") {
		parts := strings.SplitN(ln, ": [", 2)
		if len(parts) != 2 {
			continue
		}
		pos := strings.Split(parts[0], ":")
		if len(pos) != 3 {
			continue
		}
		rule := strings.SplitN(parts[1], " ", 2)[0]
		keys = append(keys, key{file: pos[0], line: atoi(pos[1]), col: atoi(pos[2]), rule: rule})
	}
	if len(keys) < 6 {
		t.Fatalf("parsed %d findings, want at least 6:\n%s", len(keys), out)
	}
	sorted := sort.SliceIsSorted(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.rule < b.rule
	})
	if !sorted {
		t.Errorf("findings out of file/line/col/rule order:\n%s", out)
	}
	files := make(map[string]bool)
	for _, k := range keys {
		files[filepath.Dir(k.file)] = true
	}
	if len(files) < 2 {
		t.Errorf("findings span %d packages, want at least 2 to exercise the cross-package sort", len(files))
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// The scopegap suppression in appa must hide the finding from the gate
// count while keeping the other gap active.
func TestScopegapSuppression(t *testing.T) {
	out, _, _ := runFixture(t, config{scope: true, verbose: true})
	if !strings.Contains(out, "appa/orphan") {
		t.Errorf("active scopegap for appa/orphan missing:\n%s", out)
	}
	if !strings.Contains(out, "[scopegap, suppressed]") {
		t.Errorf("suppressed scopegap for appa/hushed not shown under -v:\n%s", out)
	}
}

// Without -scope the same fixture yields no scope/scopegap findings: the
// flag is strictly additive.
func TestScopeFlagAdditive(t *testing.T) {
	out, _, _ := runFixture(t, config{})
	if strings.Contains(out, "[scope") {
		t.Errorf("scope findings without -scope:\n%s", out)
	}
}

// The -list output includes the scope pseudo-analyzers.
func TestListIncludesScope(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %s", code, stderr.String())
	}
	for _, rule := range append(ruleNames(), "scope", "scopegap") {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list missing %s:\n%s", rule, stdout.String())
		}
	}
}

func ruleNames() []string {
	var out []string
	for _, a := range faultlint.Analyzers() {
		out = append(out, a.Name)
	}
	return out
}
