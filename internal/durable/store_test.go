package durable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"faultstudy/internal/simenv"
)

const testDir = "/var/lib/store"

func openTest(t *testing.T, env *simenv.Env, opts Options) (*Store, *RecoveryInfo) {
	t.Helper()
	s, info, err := Open(env, "app", testDir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s, info
}

func TestPutGetReopenReplay(t *testing.T) {
	env := simenv.New(1)
	s, info := openTest(t, env, Options{CheckpointEvery: -1})
	if info.Replayed != 0 || info.CheckpointSeq != 0 {
		t.Fatalf("fresh open recovered something: %+v", info)
	}
	mustPut(t, s, "k1", "v1")
	mustPut(t, s, "k2", "v2")
	if err := s.Delete("k1"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got, ok := s.Get("k2"); !ok || string(got) != "v2" {
		t.Fatalf("get k2: %q %v", got, ok)
	}
	s.Close()
	if err := s.Put("late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("put on closed store: %v", err)
	}

	s2, info2 := openTest(t, env, Options{CheckpointEvery: -1})
	if info2.Replayed != 3 {
		t.Fatalf("replayed %d, want 3", info2.Replayed)
	}
	if _, ok := s2.Get("k1"); ok {
		t.Fatal("deleted key resurrected")
	}
	if got, ok := s2.Get("k2"); !ok || string(got) != "v2" {
		t.Fatalf("replayed k2: %q %v", got, ok)
	}
	if s2.Seq() != 3 {
		t.Fatalf("seq %d, want 3", s2.Seq())
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	env := simenv.New(2)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	for i := 0; i < 5; i++ {
		mustPut(t, s, fmt.Sprintf("k%d", i), "v")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mustPut(t, s, "after", "ckpt")
	s.Close()

	s2, info := openTest(t, env, Options{CheckpointEvery: -1})
	if info.CheckpointSeq != 5 {
		t.Fatalf("checkpoint seq %d, want 5", info.CheckpointSeq)
	}
	if info.Replayed != 1 {
		t.Fatalf("replayed %d, want 1 (only the post-checkpoint record)", info.Replayed)
	}
	if s2.Len() != 6 {
		t.Fatalf("len %d, want 6", s2.Len())
	}
}

func TestAutomaticCheckpoint(t *testing.T) {
	env := simenv.New(3)
	s, _ := openTest(t, env, Options{CheckpointEvery: 4})
	for i := 0; i < 9; i++ {
		mustPut(t, s, fmt.Sprintf("k%d", i), "v")
	}
	if got := s.Stats().Checkpoints; got != 2 {
		t.Fatalf("auto checkpoints %d, want 2", got)
	}
	if s.CheckpointSeq() != 8 {
		t.Fatalf("checkpoint seq %d, want 8", s.CheckpointSeq())
	}
}

// TestKillAtEveryWriteBoundary is the crash matrix in miniature: a scripted
// workload is killed at every disk write boundary (with a torn tail), and
// recovery must preserve every acknowledged batch and detect — never
// silently absorb — whatever the crash damaged.
func TestKillAtEveryWriteBoundary(t *testing.T) {
	script := func(s *Store, acked map[string]string) error {
		steps := []struct {
			key, val string
		}{
			{"a", "1"}, {"b", "2"}, {"a", "3"}, {"c", "4"}, {"d", "5"}, {"b", "6"},
		}
		for i, st := range steps {
			if i == 3 {
				if err := s.Checkpoint(); err != nil {
					return err
				}
			}
			if err := s.Put(st.key, []byte(st.val)); err != nil {
				return err
			}
			acked[st.key] = st.val
		}
		if err := s.Delete("c"); err != nil {
			return err
		}
		delete(acked, "c")
		return nil
	}

	// Dry run counts the workload's write boundaries.
	dry := simenv.New(10)
	s0, _ := openTest(t, dry, Options{CheckpointEvery: -1})
	if err := script(s0, map[string]string{}); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	boundaries := int(dry.Disk().WriteOps())
	if boundaries < 10 {
		t.Fatalf("suspiciously few boundaries: %d", boundaries)
	}

	for b := 0; b < boundaries; b++ {
		for _, tear := range []int64{0, 3} {
			env := simenv.New(10)
			s, _ := openTest(t, env, Options{CheckpointEvery: -1})
			acked := map[string]string{}
			env.Disk().ScheduleCrash(b, tear)
			err := script(s, acked)
			if err == nil {
				t.Fatalf("boundary %d: workload survived its own crash", b)
			}
			if !errors.Is(err, simenv.ErrDiskCrashed) {
				t.Fatalf("boundary %d: %v, want ErrDiskCrashed", b, err)
			}
			s.Close()
			env.Disk().ClearCrash()

			s2, info, oerr := Open(env, "app", testDir, Options{CheckpointEvery: -1})
			if oerr != nil {
				t.Fatalf("boundary %d tear %d: recovery open: %v", b, tear, oerr)
			}
			for k, v := range acked {
				got, ok := s2.Get(k)
				if !ok || string(got) != v {
					t.Fatalf("boundary %d tear %d: acked %q=%q lost (got %q, %v; info %+v)",
						b, tear, k, v, got, ok, info)
				}
			}
			// No undetected garbage: every surviving key must carry a value
			// some prefix of the script produced.
			legal := map[string][]string{
				"a": {"1", "3"}, "b": {"2", "6"}, "c": {"4"}, "d": {"5"},
			}
			for _, k := range s2.Keys() {
				got, _ := s2.Get(k)
				ok := false
				for _, v := range legal[k] {
					if string(got) == v {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("boundary %d tear %d: undetected corruption: %q=%q", b, tear, k, got)
				}
			}
			s2.Close()
		}
	}
}

func TestDiskFullTypedAndResumable(t *testing.T) {
	env := simenv.New(4, simenv.WithDiskBytes(256))
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	var failed bool
	for i := 0; i < 20; i++ {
		err := s.Put(fmt.Sprintf("key%02d", i), []byte("0123456789abcdef"))
		if err != nil {
			if !errors.Is(err, simenv.ErrDiskFull) {
				t.Fatalf("put %d: %v, want ErrDiskFull", i, err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("disk never filled")
	}
	before := s.Len()
	// Heal (the §6.2 grow-the-disk mitigation) and resume.
	if err := env.Disk().SetCapacity(1 << 20); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := s.Put("resumed", []byte("yes")); err != nil {
		t.Fatalf("resumed put: %v", err)
	}
	if s.Len() != before+1 {
		t.Fatalf("len %d, want %d", s.Len(), before+1)
	}
	s.Close()
	s2, _ := openTest(t, env, Options{CheckpointEvery: -1})
	if got, ok := s2.Get("resumed"); !ok || string(got) != "yes" {
		t.Fatalf("resumed key lost: %q %v", got, ok)
	}
}

func TestFDExhaustionTyped(t *testing.T) {
	env := simenv.New(5, simenv.WithFDLimit(3))
	for {
		if _, err := env.FDs().Open("hog"); err != nil {
			break
		}
	}
	_, _, err := Open(env, "app", testDir, Options{})
	if !errors.Is(err, simenv.ErrFDExhausted) {
		t.Fatalf("open under fd exhaustion: %v, want ErrFDExhausted", err)
	}
	env.FDs().ReleaseOwner("hog")
	s, _ := openTest(t, env, Options{})
	s.Close()
}

func TestShortWriteRepaired(t *testing.T) {
	env := simenv.New(6)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	mustPut(t, s, "good", "before")
	env.Disk().ArmShortWrite(4)
	if err := s.Put("short", []byte("doomed")); !errors.Is(err, simenv.ErrShortWrite) {
		t.Fatalf("short put: %v, want ErrShortWrite", err)
	}
	if _, ok := s.Get("short"); ok {
		t.Fatal("failed put applied")
	}
	// The next append repairs the torn tail first.
	mustPut(t, s, "next", "after")
	if s.Stats().Repairs != 1 {
		t.Fatalf("repairs %d, want 1", s.Stats().Repairs)
	}
	s.Close()
	s2, info := openTest(t, env, Options{CheckpointEvery: -1})
	if info.TornTail || info.Corrupt {
		t.Fatalf("damage leaked to recovery: %+v", info)
	}
	if got, ok := s2.Get("next"); !ok || string(got) != "after" {
		t.Fatalf("post-repair record lost: %q %v", got, ok)
	}
}

func TestSyncFailureLeavesStateConsistent(t *testing.T) {
	env := simenv.New(7)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	mustPut(t, s, "k", "v1")
	env.Disk().ArmSyncFail()
	if err := s.Put("k", []byte("v2")); !errors.Is(err, simenv.ErrIOFault) {
		t.Fatalf("put under sync failure: %v, want ErrIOFault", err)
	}
	if got, _ := s.Get("k"); string(got) != "v1" {
		t.Fatalf("unacknowledged write applied: %q", got)
	}
	mustPut(t, s, "k", "v3")
	s.Close()
	s2, _ := openTest(t, env, Options{CheckpointEvery: -1})
	if got, _ := s2.Get("k"); string(got) != "v3" {
		t.Fatalf("recovered %q, want v3", got)
	}
}

func TestCrashBeforeRenameKeepsOldCheckpoint(t *testing.T) {
	env := simenv.New(8)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	mustPut(t, s, "k", "v1")
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	mustPut(t, s, "k", "v2")
	env.Disk().ArmCrashBeforeRename()
	if err := s.Checkpoint(); !errors.Is(err, simenv.ErrDiskCrashed) {
		t.Fatalf("doomed checkpoint: %v, want ErrDiskCrashed", err)
	}
	s.Close()
	env.Disk().ClearCrash()
	s2, info := openTest(t, env, Options{CheckpointEvery: -1})
	if !info.TmpRemoved {
		t.Fatalf("mid-checkpoint temp not swept: %+v", info)
	}
	if info.CheckpointSeq != 1 {
		t.Fatalf("checkpoint seq %d, want the old checkpoint's 1", info.CheckpointSeq)
	}
	if got, _ := s2.Get("k"); string(got) != "v2" {
		t.Fatalf("recovered %q, want v2 from log replay", got)
	}
}

func TestTornWriteDetectedAtRecovery(t *testing.T) {
	env := simenv.New(9)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	mustPut(t, s, "good", "kept")
	env.Disk().ArmTornWrite(5) // device lies: persists 5 bytes, reports success
	mustPut(t, s, "torn", "liar")
	s.Close()
	s2, info := openTest(t, env, Options{CheckpointEvery: -1})
	if !info.TornTail && !info.Corrupt {
		t.Fatalf("silent corruption not detected: %+v", info)
	}
	if got, ok := s2.Get("good"); !ok || string(got) != "kept" {
		t.Fatalf("clean prefix lost: %q %v", got, ok)
	}
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("torn record served as if intact")
	}
}

func TestRollbackTo(t *testing.T) {
	env := simenv.New(11)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	mustPut(t, s, "a", "1")
	mustPut(t, s, "b", "2")
	mark := s.Seq()
	mustPut(t, s, "a", "3")
	mustPut(t, s, "c", "4")
	if !s.CanRollbackTo(mark) {
		t.Fatal("rollback target unreachable")
	}
	if err := s.RollbackTo(mark); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if got, _ := s.Get("a"); string(got) != "1" {
		t.Fatalf("a=%q, want pre-rollback 1", got)
	}
	if _, ok := s.Get("c"); ok {
		t.Fatal("rolled-back key survived")
	}
	// The discarded suffix is physically gone: reopen replays to the mark.
	mustPut(t, s, "d", "5")
	if s.Seq() != mark+1 {
		t.Fatalf("seq %d, want %d", s.Seq(), mark+1)
	}
	s.Close()
	s2, info := openTest(t, env, Options{CheckpointEvery: -1})
	if info.Replayed != int(mark)+1 {
		t.Fatalf("replayed %d, want %d", info.Replayed, mark+1)
	}
	if _, ok := s2.Get("c"); ok {
		t.Fatal("rolled-back key recovered")
	}

	// A rollback target older than the checkpoint is typed unreachable.
	if err := s2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := s2.RollbackTo(1); !errors.Is(err, ErrRollbackUnreachable) {
		t.Fatalf("pre-checkpoint rollback: %v, want ErrRollbackUnreachable", err)
	}
}

// TestDoubleFaultCrashDuringRecovery crashes the repair write that recovery
// itself performs: the first Open dies mid-repair with a typed error, and a
// second Open after the heal must complete the recovery.
func TestDoubleFaultCrashDuringRecovery(t *testing.T) {
	env := simenv.New(12)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	mustPut(t, s, "k", "acked")
	// Crash at the sync boundary, after the record hit the buffer, tearing
	// the unsynced tail to 2 bytes — a repairable torn record.
	env.Disk().ScheduleCrash(1, 2)
	if err := s.Put("torn", []byte("x")); !errors.Is(err, simenv.ErrDiskCrashed) {
		t.Fatalf("crashing put: %v", err)
	}
	s.Close()
	env.Disk().ClearCrash()

	// Second fault: the recovery's TruncateTo repair crashes too.
	env.Disk().ScheduleCrash(0, 0)
	if _, _, err := Open(env, "app", testDir, Options{CheckpointEvery: -1}); !errors.Is(err, simenv.ErrDiskCrashed) {
		t.Fatalf("recovery under crash: %v, want ErrDiskCrashed", err)
	}
	env.Disk().ClearCrash()

	s2, info, err := Open(env, "app", testDir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "acked" {
		t.Fatalf("acked record lost across double fault: %q %v (info %+v)", got, ok, info)
	}
}

func TestDestroyForgetsEverything(t *testing.T) {
	env := simenv.New(13)
	s, _ := openTest(t, env, Options{})
	mustPut(t, s, "k", "v")
	if err := s.Destroy(); err != nil {
		t.Fatalf("destroy: %v", err)
	}
	s2, info := openTest(t, env, Options{})
	if s2.Len() != 0 || info.Replayed != 0 {
		t.Fatalf("state survived destroy: len %d, %+v", s2.Len(), info)
	}
}

func TestApplyBatchAtomicInReplay(t *testing.T) {
	env := simenv.New(14)
	s, _ := openTest(t, env, Options{CheckpointEvery: -1})
	err := s.Apply([]Op{
		{Kind: OpPut, Key: "x", Value: []byte("1")},
		{Kind: OpPut, Key: "y", Value: []byte("2")},
		{Kind: OpDelete, Key: "x"},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	s.Close()
	s2, info := openTest(t, env, Options{CheckpointEvery: -1})
	if info.Replayed != 1 {
		t.Fatalf("replayed %d, want 1 batch", info.Replayed)
	}
	if _, ok := s2.Get("x"); ok {
		t.Fatal("intra-batch delete not replayed")
	}
	if got, _ := s2.Get("y"); !bytes.Equal(got, []byte("2")) {
		t.Fatalf("y=%q", got)
	}
}

func mustPut(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}
