package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportion(t *testing.T) {
	p := Proportion{Hits: 36, N: 50}
	if math.Abs(p.Value()-0.72) > 1e-9 {
		t.Errorf("Value = %v", p.Value())
	}
	if p.Percent() != "72%" {
		t.Errorf("Percent = %q", p.Percent())
	}
	zero := Proportion{}
	if zero.Value() != 0 {
		t.Error("empty proportion should be 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	p := Proportion{Hits: 7, N: 50}
	lo, hi := p.Wilson()
	if lo >= p.Value() || hi <= p.Value() {
		t.Errorf("interval [%v,%v] does not bracket %v", lo, hi, p.Value())
	}
	if lo < 0 || hi > 1 {
		t.Errorf("interval [%v,%v] out of [0,1]", lo, hi)
	}
	// Empty sample spans everything.
	lo, hi = Proportion{}.Wilson()
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval [%v,%v]", lo, hi)
	}
	// Extreme proportions stay clamped.
	lo, hi = Proportion{Hits: 50, N: 50}.Wilson()
	if hi > 1 || lo > 1 || lo < 0 {
		t.Errorf("clamped interval [%v,%v]", lo, hi)
	}
}

// Property: Wilson intervals shrink as N grows at a fixed ratio.
func TestWilsonShrinksProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k)%100 + 2
		small := Proportion{Hits: n / 2, N: n}
		big := Proportion{Hits: n * 5, N: n * 10}
		slo, shi := small.Wilson()
		blo, bhi := big.Wilson()
		return (bhi - blo) <= (shi - slo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Perfectly proportional table: chi2 ~ 0.
	chi2, dof := ChiSquare([][]float64{{10, 20}, {20, 40}})
	if chi2 > 1e-9 {
		t.Errorf("proportional table chi2 = %v", chi2)
	}
	if dof != 1 {
		t.Errorf("dof = %d", dof)
	}
	// Strong association: chi2 large.
	chi2, _ = ChiSquare([][]float64{{30, 0}, {0, 30}})
	if chi2 < 30 {
		t.Errorf("diagonal table chi2 = %v, want large", chi2)
	}
	// Degenerate inputs.
	if c, d := ChiSquare(nil); c != 0 || d != 0 {
		t.Error("nil table should be zero")
	}
	if c, d := ChiSquare([][]float64{{0, 0}}); c != 0 || d != 0 {
		t.Error("zero table should be zero")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"class", "count"}}
	tbl.Add("environment-independent", "36")
	tbl.Add("edt", "7")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "class") || !strings.Contains(lines[2], "36") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	// Columns align: header and separator equal width.
	if len(lines[1]) < len("class")+len("count") {
		t.Errorf("separator too short: %q", lines[1])
	}
}

func TestStackedBars(t *testing.T) {
	out := StackedBars(
		[]string{"1.3.0", "1.3.4"},
		[]StackedSeries{
			{Label: "EI", Glyph: '#', Counts: []int{4, 10}},
			{Label: "EDT", Glyph: '+', Counts: []int{1, 2}},
		})
	if !strings.Contains(out, "####") {
		t.Errorf("missing EI bar:\n%s", out)
	}
	if !strings.Contains(out, "++") {
		t.Errorf("missing EDT bar:\n%s", out)
	}
	if !strings.Contains(out, "#=EI") || !strings.Contains(out, "+=EDT") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, " 12\n") {
		t.Errorf("missing bucket total:\n%s", out)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose: Quantile must not mutate
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-sample quantile = %v, want 7", got)
	}
}

// TestQuantileEdgeCases pins the degenerate-input contract the parallel
// engine's merged summaries rely on: empty and all-NaN samples return 0, NaN
// samples are ignored rather than poisoning the interpolation, and a NaN q
// returns 0 instead of corrupting an index computation.
func TestQuantileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty slice", []float64{}, 0.5, 0},
		{"nil slice", nil, 0, 0},
		{"all NaN", []float64{nan, nan}, 0.5, 0},
		{"NaN ignored low", []float64{nan, 1, 3}, 0, 1},
		{"NaN ignored high", []float64{3, nan, 1}, 1, 3},
		{"NaN ignored median", []float64{nan, 1, 3, nan}, 0.5, 2},
		{"single after NaN filter", []float64{nan, 5}, 0.75, 5},
		{"NaN q", []float64{1, 2, 3}, nan, 0},
		{"NaN q empty", nil, nan, 0},
		{"negative infinity sample", []float64{math.Inf(-1), 0}, 0, math.Inf(-1)},
	}
	for _, c := range cases {
		if got := Quantile(c.xs, c.q); got != c.want && !(math.IsInf(c.want, -1) && math.IsInf(got, -1)) {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", c.name, c.xs, c.q, got, c.want)
		}
	}
	// A NaN result must never escape: sweep q over a NaN-laced sample.
	xs := []float64{nan, 2, nan, 8, 5}
	for q := -0.5; q <= 1.5; q += 0.125 {
		if got := Quantile(xs, q); math.IsNaN(got) {
			t.Errorf("Quantile(%v, %v) = NaN", xs, q)
		}
	}
}
