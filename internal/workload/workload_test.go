package workload

import (
	"testing"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/simenv"
)

func TestHTTPRequestsDeterministic(t *testing.T) {
	a := HTTPRequests(1, DefaultHTTPMix(), 200)
	b := HTTPRequests(1, DefaultHTTPMix(), 200)
	if len(a) != 200 {
		t.Fatalf("generated %d requests", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical workloads")
		}
	}
	c := HTTPRequests(2, DefaultHTTPMix(), 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestHTTPMixProportions(t *testing.T) {
	reqs := HTTPRequests(3, DefaultHTTPMix(), 2000)
	static := 0
	for _, r := range reqs {
		if r.Path == "/index.html" {
			static++
		}
	}
	// 70% +- 5 points.
	if static < 1250 || static > 1550 {
		t.Errorf("static share = %d/2000", static)
	}
	// Zero mix falls back to the default.
	if got := HTTPRequests(1, HTTPMix{}, 10); len(got) != 10 {
		t.Errorf("zero mix generated %d", len(got))
	}
}

func TestHTTPWorkloadRunsCleanly(t *testing.T) {
	env := simenv.New(5)
	srv := httpd.New(env, nil, httpd.Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	for i, req := range HTTPRequests(7, DefaultHTTPMix(), 500) {
		resp, err := srv.Serve(req)
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, req.Path, err)
		}
		if resp.Status != 200 && resp.Status != 404 {
			t.Fatalf("request %d: status %d", i, resp.Status)
		}
	}
}

func TestSQLWorkloadRunsCleanly(t *testing.T) {
	env := simenv.New(5)
	srv := sqldb.New(env, nil)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	stmts := SQLStatements(9, 400)
	if len(stmts) != 400 {
		t.Fatalf("generated %d statements", len(stmts))
	}
	for i, sql := range stmts {
		if _, err := srv.Exec(sql); err != nil {
			t.Fatalf("statement %d (%q): %v", i, sql, err)
		}
	}
}

func TestDesktopWorkloadRunsCleanly(t *testing.T) {
	env := simenv.New(5)
	d := desktop.New(env, nil)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for i, ev := range DesktopEvents(11, 400) {
		if err := d.Dispatch(ev); err != nil {
			t.Fatalf("event %d (%+v): %v", i, ev, err)
		}
	}
}

func TestSQLStatementsDeterministic(t *testing.T) {
	a := SQLStatements(1, 100)
	b := SQLStatements(1, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical statements")
		}
	}
}
