package faultlint

import (
	"go/ast"
	"go/token"
	"strings"

	"faultstudy/internal/taxonomy"
)

// envsite classifies seeded fault-raise sites. A call to faultinject.Fail or
// faultinject.FailCause is the static signature of one corpus fault
// transplanted into a simulated application; the environmental facility
// consulted on the path to the raise decides the predicted class, exactly as
// the paper's manual classification reasoned from the triggering condition:
//
//   - no environment operation near the raise  -> workload-only   -> EI
//   - persistent-condition facility (disk, fd,
//     host config, network resource)           -> nontransient    -> EDN
//   - self-healing facility (DNS, scheduler,
//     process table, entropy, link speed)      -> transient       -> EDT
//
// Each diagnostic carries the mechanism keys resolved from the raise's first
// argument (or from the enclosing switch case list), which is what the LINT
// validation experiment cross-checks against the seeded registry.
var envsiteAnalyzer = &Analyzer{
	Name:     "envsite",
	Doc:      "classify seeded fault-raise sites by the environmental facility they depend on",
	Class:    taxonomy.ClassUnknown, // per-site
	Advisory: true,                  // classification of the corpus, not a defect
	Run:      runEnvsite,
}

// envMethodTrigger maps Facility.Method of a recognized environment call to
// the trigger kind it stands for; TriggerKind.DefaultClass then yields the
// predicted fault class under the paper's §5 rules.
var envMethodTrigger = map[string]taxonomy.TriggerKind{
	"FDs.Open":             taxonomy.TriggerFDExhaustion,
	"Disk.Append":          taxonomy.TriggerDiskFull,
	"Disk.FillFrom":        taxonomy.TriggerDiskFull,
	"Disk.Truncate":        taxonomy.TriggerDiskFull,
	"Disk.Size":            taxonomy.TriggerFileSizeLimit,
	"Disk.IllegalOwner":    taxonomy.TriggerHostConfig,
	"DNS.Lookup":           taxonomy.TriggerDNSFailure,
	"DNS.Reverse":          taxonomy.TriggerHostConfig,
	"Procs.Spawn":          taxonomy.TriggerProcessTable,
	"Net.BindPort":         taxonomy.TriggerProcessTable,
	"Net.AcquireResource":  taxonomy.TriggerNetworkResource,
	"Net.InterfacePresent": taxonomy.TriggerNetworkResource,
	"Net.Slow":             taxonomy.TriggerSlowNetwork,
	"Entropy.Draw":         taxonomy.TriggerEntropy,
	"Sched.RaceFires":      taxonomy.TriggerRace,
	"Env.Hostname":         taxonomy.TriggerHostConfig,
}

// envFacilityTrigger is the per-facility fallback for unmapped methods.
var envFacilityTrigger = map[string]taxonomy.TriggerKind{
	"FDs":     taxonomy.TriggerFDExhaustion,
	"Disk":    taxonomy.TriggerDiskFull,
	"DNS":     taxonomy.TriggerDNSFailure,
	"Procs":   taxonomy.TriggerProcessTable,
	"Net":     taxonomy.TriggerNetworkResource,
	"Sched":   taxonomy.TriggerRace,
	"Entropy": taxonomy.TriggerEntropy,
	"Env":     taxonomy.TriggerHostConfig,
}

// envCallTrigger resolves the trigger kind an environment call stands for.
func envCallTrigger(c envCall) taxonomy.TriggerKind {
	if t, ok := envMethodTrigger[c.Facility+"."+c.Method]; ok {
		return t
	}
	if t, ok := envFacilityTrigger[c.Facility]; ok {
		return t
	}
	return taxonomy.TriggerUnknownKind
}

// isFaultinjectPath reports whether an import path denotes the faultinject
// package (the real one or a fixture stand-in).
func isFaultinjectPath(path string) bool {
	return path == "faultinject" || strings.HasSuffix(path, "/faultinject")
}

// asFailCall recognizes faultinject.Fail / faultinject.FailCause calls and
// reports which form was used.
func (p *Package) asFailCall(f *ast.File, call *ast.CallExpr) (isFail, withCause bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	path, name, ok := p.pkgQualified(f, sel)
	if !ok || !isFaultinjectPath(path) {
		return false, false
	}
	switch name {
	case "Fail":
		return true, false
	case "FailCause":
		return true, true
	}
	return false, false
}

// mechanismsOf resolves the mechanism keys a raise site speaks for: the
// constant value of the first argument, or — when the key is computed (the
// template-bug pattern switch(key) { case MechA, MechB: ... }) — the
// constants enumerated by the enclosing case clause.
func (p *Package) mechanismsOf(call *ast.CallExpr, stack []ast.Node) []string {
	if len(call.Args) > 0 {
		if v, ok := p.constString(call.Args[0]); ok {
			return []string{v}
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CaseClause)
		if !ok {
			continue
		}
		var keys []string
		for _, expr := range cc.List {
			if v, ok := p.constString(expr); ok && strings.Contains(v, "/") {
				keys = append(keys, v)
			}
		}
		if len(keys) > 0 {
			return keys
		}
	}
	return nil
}

// collectEnvCalls gathers all recognized environment calls inside a subtree.
func collectEnvCalls(n ast.Node, out *[]envCall) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if ec, ok := asEnvCall(call); ok {
				*out = append(*out, ec)
			}
		}
		return true
	})
}

// isSimpleStmt reports whether a sibling statement is scanned during the
// backward walk: plain assignments, expressions, declarations, and
// increments — but not nested control flow, whose interior belongs to a
// different path.
func isSimpleStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.IncDecStmt:
		return true
	}
	return false
}

// nearestEnvCall finds the environment operation that guards a raise site:
// the latest-positioned recognized env call that precedes the site, drawn
// from (a) the init/cond of enclosing if/switch/for statements and (b) the
// simple sibling statements above the site in each enclosing block, all
// bounded by the enclosing function.
func nearestEnvCall(site token.Pos, stack []ast.Node) (envCall, bool) {
	var candidates []envCall
	for _, n := range GuardNodes(site, stack) {
		collectEnvCalls(n, &candidates)
	}
	best := envCall{}
	found := false
	for _, c := range candidates {
		if c.Pos < site && (!found || c.Pos > best.Pos) {
			best, found = c, true
		}
	}
	return best, found
}

func runEnvsite(p *Pass) {
	for _, f := range p.Pkg.Files {
		file := f
		withStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			isFail, withCause := p.Pkg.asFailCall(file, call)
			if !isFail {
				return true
			}
			mechs := p.Pkg.mechanismsOf(call, stack)
			ec, found := nearestEnvCall(call.Pos(), stack)
			switch {
			case found:
				trigger := envCallTrigger(ec)
				class := trigger.DefaultClass()
				p.ReportSite(call.Pos(), class, mechs,
					"fault raise depends on env %s.%s (trigger %s): predicted %s",
					ec.Facility, ec.Method, trigger, class.Short())
			case withCause:
				// FailCause wraps an environment error by contract; with no
				// visible facility the persistent-condition prior applies.
				class := taxonomy.ClassEnvDependentNonTransient
				p.ReportSite(call.Pos(), class, mechs,
					"fault raise wraps an environment error from an unrecognized facility: predicted %s", class.Short())
			default:
				class := taxonomy.ClassEnvIndependent
				p.ReportSite(call.Pos(), class, mechs,
					"fault raise has no environmental dependence in scope (workload-only): predicted %s", class.Short())
			}
			return true
		})
	}
}
