package dedup

import (
	"testing"

	"faultstudy/internal/corpus"
)

// The corpus's synthesized faults share defect-type templates; if two
// distinct faults' texts were near-duplicates, the mining pipeline would
// merge them and under-count the tables. Guard the margin.
func TestDistinctCorpusFaultsStayBelowThreshold(t *testing.T) {
	faults := corpus.All()
	texts := make([]string, len(faults))
	for i, f := range faults {
		texts[i] = f.Report().Text()
	}
	worst := 0.0
	var worstPair [2]string
	for i := range faults {
		for j := i + 1; j < len(faults); j++ {
			if faults[i].App != faults[j].App {
				continue
			}
			if sim := Similarity(texts[i], texts[j], 3); sim > worst {
				worst = sim
				worstPair = [2]string{faults[i].ID, faults[j].ID}
			}
		}
	}
	t.Logf("worst intra-app cross-fault similarity %.3f (%s vs %s)", worst, worstPair[0], worstPair[1])
	if worst >= 0.55 {
		t.Errorf("faults %s and %s are %.2f similar; too close to the dedup threshold 0.6",
			worstPair[0], worstPair[1], worst)
	}
}
