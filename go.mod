module faultstudy

go 1.22
