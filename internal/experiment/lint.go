package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/faultlint"
	"faultstudy/internal/parallel"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// The LINT validation experiment cross-checks faultlint's static
// classification against the seeded ground truth. Every mechanism in the
// registry carries a trigger kind whose DefaultClass is the class the paper's
// manual analysis would assign; every faultinject.Fail site in the simulated
// applications is a raise site the envsite analyzer classifies from source
// alone. Agreement between the two is measured as precision/recall per
// class — a static, pre-execution analogue of the paper's 72–87%
// environment-independent headline (§4, Table 2).

// lintAppDirs maps each studied application to the directory holding its
// simulated implementation, relative to the module root.
var lintAppDirs = map[taxonomy.Application]string{
	taxonomy.AppApache: "internal/apps/httpd",
	taxonomy.AppMySQL:  "internal/apps/sqldb",
	taxonomy.AppGnome:  "internal/apps/desktop",
}

// ClassScore accumulates the confusion tallies for one fault class.
type ClassScore struct {
	Class taxonomy.FaultClass
	// TP counts mechanisms of this truth class that faultlint predicted as
	// this class at some raise site.
	TP int
	// FP counts (mechanism, class) predictions of this class whose ground
	// truth is a different class.
	FP int
	// FN counts mechanisms of this truth class with no raise site predicted
	// as this class.
	FN int
}

// Precision is TP/(TP+FP); 1 when nothing of this class was predicted.
func (s ClassScore) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall is TP/(TP+FN); 1 when no mechanism of this class exists.
func (s ClassScore) Recall() float64 {
	if s.TP+s.FN == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// LintApp is the per-application slice of the validation.
type LintApp struct {
	App taxonomy.Application
	Dir string
	// Sites is the number of envsite diagnostics with attributed mechanisms.
	Sites int
	// Unattributed counts envsite diagnostics whose mechanism key could not
	// be resolved statically (computed keys outside a case clause).
	Unattributed int
	// Scores holds one entry per fault class, in taxonomy.Classes order.
	Scores []ClassScore
	// Predicted maps each mechanism key to its resolved predicted class.
	Predicted map[string]taxonomy.FaultClass
	// Missing lists registry mechanisms with no attributed raise site.
	Missing []string
}

// TruePositives sums TP across classes.
func (a *LintApp) TruePositives() int {
	n := 0
	for _, s := range a.Scores {
		n += s.TP
	}
	return n
}

// LintReport is the full validation result.
type LintReport struct {
	Root string
	// Result is the raw analyzer output over the three application packages.
	Result *faultlint.Result
	Apps   []LintApp
	// Total aggregates the per-app scores, in taxonomy.Classes order.
	Total []ClassScore
	// PredictedEI is faultlint's predicted environment-independent share
	// over mechanisms it attributed; TruthEI is the registry's share. The
	// paper's per-application EI range is 72–87%.
	PredictedEI stats.Proportion
	TruthEI     stats.Proportion
}

// ModuleRoot locates the module root by walking up from the working
// directory to the first go.mod.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("experiment: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// resolvePredicted collapses the per-site class votes for one mechanism into
// a single predicted class: any environment-dependent site makes the
// mechanism environment-dependent (one env-guarded raise suffices to trigger
// it from the environment); among env-dependent votes the majority wins,
// ties falling to nontransient (the persistent-condition prior). A
// mechanism is EI only when every site is.
func resolvePredicted(votes map[taxonomy.FaultClass]int) taxonomy.FaultClass {
	edn := votes[taxonomy.ClassEnvDependentNonTransient]
	edt := votes[taxonomy.ClassEnvDependentTransient]
	switch {
	case edt > edn:
		return taxonomy.ClassEnvDependentTransient
	case edn > 0:
		return taxonomy.ClassEnvDependentNonTransient
	case votes[taxonomy.ClassEnvIndependent] > 0:
		return taxonomy.ClassEnvIndependent
	}
	return taxonomy.ClassUnknown
}

// RunLint loads the three application packages under root, runs the envsite
// analyzer, and scores its predictions against the seeded registry. It is
// the single-worker case of RunLintWorkers.
func RunLint(root string) (*LintReport, error) {
	return RunLintWorkers(root, 1)
}

// scoreLintApp scores one application's envsite predictions against the
// seeded registry — a pure function of the (read-only) analyzer result and
// the app's registry slice, so the three applications score in parallel.
func scoreLintApp(result *faultlint.Result, reg *faultinject.Registry, app taxonomy.Application) LintApp {
	dir := lintAppDirs[app]
	la := LintApp{App: app, Dir: dir, Predicted: make(map[string]taxonomy.FaultClass)}

	// Gather per-mechanism class votes from the diagnostics raised in
	// this application's directory.
	votes := make(map[string]map[taxonomy.FaultClass]int)
	for _, d := range result.Diagnostics {
		if d.Rule != "envsite" || !strings.Contains(filepath.ToSlash(d.File), dir+"/") {
			continue
		}
		if len(d.Mechanisms) == 0 {
			la.Unattributed++
			continue
		}
		la.Sites++
		for _, mech := range d.Mechanisms {
			if votes[mech] == nil {
				votes[mech] = make(map[taxonomy.FaultClass]int)
			}
			votes[mech][d.Class]++
		}
	}
	for mech, v := range votes {
		la.Predicted[mech] = resolvePredicted(v)
	}

	// Score against ground truth. Predictions for unknown mechanisms
	// (none expected) are ignored; mechanisms never attributed are
	// false negatives for their truth class.
	truth := make(map[string]taxonomy.FaultClass)
	for _, m := range reg.ByApp(app) {
		truth[m.Key] = m.Trigger.DefaultClass()
	}
	for _, class := range taxonomy.Classes() {
		score := ClassScore{Class: class}
		for mech, tc := range truth {
			pc, predicted := la.Predicted[mech]
			switch {
			case tc == class && predicted && pc == class:
				score.TP++
			case tc == class && (!predicted || pc != class):
				score.FN++
			case tc != class && predicted && pc == class:
				score.FP++
			}
		}
		la.Scores = append(la.Scores, score)
	}
	for mech := range truth {
		if _, ok := la.Predicted[mech]; !ok {
			la.Missing = append(la.Missing, mech)
		}
	}
	sort.Strings(la.Missing)
	return la
}

// RunLintWorkers is RunLint with per-application scoring sharded over a
// worker pool (workers ≤ 0 means one per processor). Scoring is pure
// computation over the shared, read-only analyzer result, and the per-app
// reports are reduced in application order, so the report is identical at
// every worker count.
func RunLintWorkers(root string, workers int) (*LintReport, error) {
	reg := Registry()
	report := &LintReport{Root: root}

	apps := taxonomy.Applications()
	var patterns []string
	for _, app := range apps {
		patterns = append(patterns, lintAppDirs[app])
	}
	pkgs, err := faultlint.Load(root, patterns)
	if err != nil {
		return nil, err
	}
	result, err := faultlint.Run(pkgs, []string{"envsite"})
	if err != nil {
		return nil, err
	}
	report.Result = result

	report.Apps, err = parallel.MapOrdered(workers, len(apps), func(i int) (LintApp, error) {
		return scoreLintApp(result, reg, apps[i]), nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate totals and the EI-share headline.
	for i, class := range taxonomy.Classes() {
		total := ClassScore{Class: class}
		for _, la := range report.Apps {
			total.TP += la.Scores[i].TP
			total.FP += la.Scores[i].FP
			total.FN += la.Scores[i].FN
		}
		report.Total = append(report.Total, total)
	}
	predEI, predN := 0, 0
	for _, la := range report.Apps {
		for _, pc := range la.Predicted {
			predN++
			if pc == taxonomy.ClassEnvIndependent {
				predEI++
			}
		}
	}
	report.PredictedEI = stats.Proportion{Hits: predEI, N: predN}
	truthEI, truthN := 0, 0
	for _, app := range apps {
		for _, m := range reg.ByApp(app) {
			truthN++
			if m.Trigger.DefaultClass() == taxonomy.ClassEnvIndependent {
				truthEI++
			}
		}
	}
	report.TruthEI = stats.Proportion{Hits: truthEI, N: truthN}
	return report, nil
}

// String renders the per-app and aggregate precision/recall tables, the
// EI-share comparison against the paper's headline, and the unattributed
// residue (EXPERIMENTS.md, LINT).
func (r *LintReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LINT: static classification vs seeded ground truth\n\n")
	tbl := &stats.Table{Header: []string{"app", "class", "TP", "FP", "FN", "precision", "recall"}}
	for _, la := range r.Apps {
		for _, s := range la.Scores {
			tbl.Add(la.App.String(), s.Class.Short(),
				fmt.Sprint(s.TP), fmt.Sprint(s.FP), fmt.Sprint(s.FN),
				fmt.Sprintf("%.2f", s.Precision()), fmt.Sprintf("%.2f", s.Recall()))
		}
	}
	for _, s := range r.Total {
		tbl.Add("all", s.Class.Short(),
			fmt.Sprint(s.TP), fmt.Sprint(s.FP), fmt.Sprint(s.FN),
			fmt.Sprintf("%.2f", s.Precision()), fmt.Sprintf("%.2f", s.Recall()))
	}
	b.WriteString(tbl.String())

	fmt.Fprintf(&b, "\npredicted EI share: %d/%d (%.0f%%); seeded truth %d/%d (%.0f%%); paper per-app range 72%%-87%%\n",
		r.PredictedEI.Hits, r.PredictedEI.N, 100*r.PredictedEI.Value(),
		r.TruthEI.Hits, r.TruthEI.N, 100*r.TruthEI.Value())
	for _, la := range r.Apps {
		if la.Unattributed > 0 || len(la.Missing) > 0 {
			fmt.Fprintf(&b, "%s: %d attributed site(s), %d unattributed, missing mechanisms: %s\n",
				la.App, la.Sites, la.Unattributed, strings.Join(la.Missing, " "))
		}
	}
	return b.String()
}
