package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Request outcomes, in decreasing order of user happiness. OBSERVABILITY.md
// documents the vocabulary alongside the request-log schema.
const (
	// OutcomeOK is a request served within the SLO latency threshold.
	OutcomeOK = "ok"
	// OutcomeSlow is a request served, but over the SLO latency threshold.
	OutcomeSlow = "slow"
	// OutcomeRefused is a request that fast-failed with a DownError because
	// a component on its route was mid-reboot — siblings kept serving.
	OutcomeRefused = "refused"
	// OutcomeError is a request that failed against a live process (a fault
	// fired, or the request hit corrupted state).
	OutcomeError = "error"
	// OutcomeLost is a request that arrived while the whole process was down
	// or the outage was not yet detected — nothing answered at all.
	OutcomeLost = "lost"
)

// Record is what one simulated user's request experienced, on the virtual
// clock. The serving tier emits one per scheduled arrival; the JSONL stream
// of records is the request log the SERVE experiment's determinism contract
// is stated over.
type Record struct {
	// Seq is the request's schedule position.
	Seq int `json:"seq"`
	// User is the simulated user the request belonged to.
	User int `json:"user"`
	// At is the scheduled arrival time in virtual nanoseconds.
	At time.Duration `json:"at_ns"`
	// Category is the operation-mix category the request mapped to
	// ("static", "select", ... or "trigger" for a fault-triggering op).
	Category string `json:"category"`
	// Latency is the request's observed latency in virtual nanoseconds
	// (zero for requests nothing answered).
	Latency time.Duration `json:"latency_ns"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Component names the down component that refused the request, when
	// Outcome is "refused".
	Component string `json:"component,omitempty"`
	// Err is the failure message for refused/error/lost requests.
	Err string `json:"error,omitempty"`
}

// validOutcomes gates ReadRecords the way obsv's trace reader gates spans.
var validOutcomes = map[string]bool{
	OutcomeOK:      true,
	OutcomeSlow:    true,
	OutcomeRefused: true,
	OutcomeError:   true,
	OutcomeLost:    true,
}

// WriteRecords writes records as JSONL, one record per line, in slice order.
// The encoding is deterministic: fixed field order, no map iteration.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("traffic: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords parses a JSONL request log, validating each line against the
// schema: outcomes must be known, sequence numbers non-negative, and refused
// records must name their component.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("traffic: request log line %d: %w", line, err)
		}
		if !validOutcomes[rec.Outcome] {
			return nil, fmt.Errorf("traffic: request log line %d: unknown outcome %q", line, rec.Outcome)
		}
		if rec.Seq < 0 {
			return nil, fmt.Errorf("traffic: request log line %d: negative seq %d", line, rec.Seq)
		}
		if rec.Outcome == OutcomeRefused && rec.Component == "" {
			return nil, fmt.Errorf("traffic: request log line %d: refused record names no component", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: request log: %w", err)
	}
	return out, nil
}
