package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"faultstudy/internal/bugsite"
	"faultstudy/internal/chaoshttp"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/resilient"
	"faultstudy/internal/scrape"
	"faultstudy/internal/stats"
	"faultstudy/internal/taxonomy"
)

// resilHost is the synthetic host every RESIL crawl targets; the whole sweep
// runs over in-memory handlers, so the name never resolves.
const resilHost = "http://chaos.test"

// ResilPolicies is the fixed client-policy axis of the RESIL sweep, in arm
// order: the bare client, the retry-centric middle, and the full ladder with
// hedging and breakers.
func ResilPolicies() []string { return []string{"naive", "retry", "full"} }

// ResilConfig tunes the RESIL chaos sweep: every chaoshttp catalogue fault
// crossed with every client policy, each arm a fresh mine of the Apache
// bugsite through an injector.
type ResilConfig struct {
	// Seed drives the bugsite, the fault targeting, and the retry jitter.
	Seed int64
	// MaxPages caps each arm's crawl (0 means 150).
	MaxPages int
	// Telemetry, when non-nil, receives per-URL fault episodes and the resil
	// metric family from every arm. Nil costs nothing.
	Telemetry *Telemetry
	// Workers bounds the worker pool the arms are sharded over (0 or
	// negative means one per processor; 1 is serial). Reports and telemetry
	// are byte-identical at every worker count.
	Workers int
}

func (c ResilConfig) withDefaults() ResilConfig {
	if c.MaxPages <= 0 {
		c.MaxPages = 150
	}
	return c
}

// ResilArm is one (fault, policy) cell of the sweep: the coverage of its
// crawl, the fate of the URLs the injector targeted, and what the client
// spent getting there.
type ResilArm struct {
	// Fault is the chaos fault active in this arm.
	Fault string
	// Class is the fault's paper class (EDT or EDN).
	Class taxonomy.FaultClass
	// Policy is the resilient-client policy name.
	Policy string
	// Attempted, Fetched, NonOK, Gaps summarize the crawl's coverage.
	Attempted, Fetched, NonOK, Gaps int
	// Targeted counts URLs the injector actually faulted.
	Targeted int
	// Recovered counts targeted URLs that were eventually fetched clean.
	Recovered int
	// Retries, Hedges, FastFails, BudgetDenied, Truncations are the client's
	// recovery spend.
	Retries, Hedges, FastFails, BudgetDenied, Truncations int
	// MTTR is the mean time to repair over recovered URLs (first injected
	// failure to first clean fetch, virtual clock).
	MTTR time.Duration
}

// Survival is the arm's recovered-over-targeted proportion.
func (a ResilArm) Survival() stats.Proportion {
	return stats.Proportion{Hits: a.Recovered, N: a.Targeted}
}

// ResilReport is the assembled sweep, arms in (fault, policy) order.
type ResilReport struct {
	// Seed is the sweep's root seed.
	Seed int64
	// MaxPages is the per-arm crawl cap used.
	MaxPages int
	// Arms holds every (fault, policy) cell.
	Arms []ResilArm
}

// RunResil runs the RESIL sweep: chaoshttp.Catalog() × ResilPolicies(), one
// arm per cell. Each arm crawls a fresh in-memory Apache bugsite through a
// chaos injector with exactly one fault active, using a resilient client
// configured by the arm's policy, all on a shared virtual clock.
//
// Arms are independent shards on a pool of cfg.Workers workers: each derives
// its seed from (Seed, arm index) via the parallel engine's SplitMix64
// stream and records into a private telemetry, and the shards are reduced in
// fixed arm order — so reports, traces, and metric dumps are byte-identical
// at every worker count.
func RunResil(cfg ResilConfig) (*ResilReport, error) {
	cfg = cfg.withDefaults()
	faults := chaoshttp.Catalog()
	policies := ResilPolicies()
	type shardOut struct {
		arm ResilArm
		tel *Telemetry
	}
	n := len(faults) * len(policies)
	outs, err := parallel.MapOrdered(cfg.Workers, n, func(i int) (shardOut, error) {
		var tel *Telemetry
		if cfg.Telemetry != nil {
			tel = NewTelemetry()
		}
		arm, err := runResilArm(cfg, i, faults[i/len(policies)], policies[i%len(policies)], tel)
		return shardOut{arm: arm, tel: tel}, err
	})
	if err != nil {
		return nil, err
	}
	rep := &ResilReport{Seed: cfg.Seed, MaxPages: cfg.MaxPages, Arms: make([]ResilArm, 0, n)}
	tels := make([]*Telemetry, 0, n)
	for _, o := range outs {
		rep.Arms = append(rep.Arms, o.arm)
		tels = append(tels, o.tel)
	}
	if err := cfg.Telemetry.Merge(tels...); err != nil {
		return nil, err
	}
	return rep, nil
}

// runResilArm runs one (fault, policy) cell: build the chaos-wrapped site,
// crawl it with the policy's client, and distill the arm. Everything it does
// is a pure function of (cfg, arm index); it shares no state with other
// arms.
func runResilArm(cfg ResilConfig, armIdx int, fault chaoshttp.Fault, policy string, tel *Telemetry) (ResilArm, error) {
	arm := ResilArm{Fault: fault.Name, Class: fault.Class, Policy: policy}
	armSeed := parallel.Derive(cfg.Seed, uint64(armIdx))
	clock := chaoshttp.NewVirtualClock()
	site := bugsite.NewApacheSite(bugsite.Config{Seed: cfg.Seed})
	inj := chaoshttp.NewInjector(
		chaoshttp.Config{Seed: armSeed, Faults: []chaoshttp.Fault{fault}},
		chaoshttp.HandlerTransport{Handler: site}, clock)
	pol, err := resilient.PolicyByName(policy)
	if err != nil {
		return arm, fmt.Errorf("experiment: resil arm %d: %w", armIdx, err)
	}
	client := resilient.New(pol,
		resilient.WithTransport(inj),
		resilient.WithClock(clock),
		resilient.WithRand(rand.New(rand.NewSource(armSeed))))
	crawler := scrape.NewCrawler(
		scrape.WithClient(client.HTTPClient()),
		scrape.WithSleeper(clock),
		scrape.WithPathFilter("/bugdb/"),
		scrape.WithRetryAfterCap(0), // all Retry-After handling belongs to the policy under test
		scrape.WithMaxPages(cfg.MaxPages))
	pages, err := crawler.Crawl(context.Background(), resilHost+"/bugdb/")
	if err != nil {
		return arm, fmt.Errorf("experiment: resil arm %d (%s × %s): %w", armIdx, fault.Name, policy, err)
	}

	cov := scrape.CoverageOf(pages)
	arm.Attempted, arm.Fetched, arm.NonOK, arm.Gaps = cov.Attempted, cov.Fetched, cov.NonOK, cov.Gaps
	st := client.Stats()
	arm.Retries, arm.Hedges, arm.FastFails = st.Retries, st.Hedges, st.FastFails
	arm.BudgetDenied, arm.Truncations = st.BudgetDenied, st.Truncations

	var repair time.Duration
	outcomes := inj.Outcomes()
	for _, o := range outcomes {
		arm.Targeted++
		if o.Recovered {
			arm.Recovered++
			repair += o.RecoveredAt - o.FirstAt
		}
	}
	if arm.Recovered > 0 {
		arm.MTTR = repair / time.Duration(arm.Recovered)
	}
	observeResilArm(tel, arm, inj, clock.Now())
	return arm, nil
}

// observeResilArm folds one arm into its telemetry: an episode per targeted
// URL (activation, one failed-retry span per later injection, verdict) and
// the resil metric family. A nil telemetry records nothing.
func observeResilArm(tel *Telemetry, arm ResilArm, inj *chaoshttp.Injector, endAt time.Duration) {
	if tel == nil {
		return
	}
	obsv.RegisterBridgeHelp(tel.Registry)
	class := arm.Class.Short()
	rec := tel.Recorder
	rec.SetContext(obsv.Context{App: "miner", Class: class})
	laterInjections := make(map[string][]chaoshttp.Injection)
	for _, iv := range inj.Injections() {
		laterInjections[iv.URL] = append(laterInjections[iv.URL], iv)
	}
	for _, o := range inj.Outcomes() {
		rec.Begin(o.FirstAt, o.URL, o.Fault)
		rec.Note(o.FirstAt, obsv.Span{Kind: obsv.SpanActivation, Note: o.Fault})
		for _, iv := range laterInjections[o.URL][1:] {
			rec.Note(iv.At, obsv.Span{Kind: obsv.SpanRetry, Rung: arm.Policy, Outcome: "fail"})
		}
		verdict := obsv.OutcomeLost
		if o.Recovered {
			verdict = obsv.OutcomeRecovered
			rec.Note(o.RecoveredAt, obsv.Span{Kind: obsv.SpanRetry, Rung: arm.Policy, Outcome: "ok"})
			rec.End(o.RecoveredAt, obsv.OutcomeRecovered, arm.Policy)
			tel.Registry.Histogram(obsv.MetricResilMTTRSeconds, obsv.LatencyBuckets,
				obsv.L("policy", arm.Policy, "class", class)...).ObserveDuration(o.RecoveredAt - o.FirstAt)
		} else {
			rec.End(endAt, obsv.OutcomeLost, arm.Policy)
		}
		tel.Registry.Counter(obsv.MetricResilURLs,
			obsv.L("policy", arm.Policy, "fault", arm.Fault, "class", class, "outcome", verdict)...).Inc()
	}
	pageResults := []struct {
		result string
		n      int
	}{{"fetched", arm.Fetched}, {"non2xx", arm.NonOK}, {"gap", arm.Gaps}}
	for _, pr := range pageResults {
		if pr.n > 0 {
			tel.Registry.Counter(obsv.MetricResilPages,
				obsv.L("policy", arm.Policy, "fault", arm.Fault, "result", pr.result)...).Add(float64(pr.n))
		}
	}
	spend := []struct {
		metric string
		n      int
	}{
		{obsv.MetricResilRetries, arm.Retries},
		{obsv.MetricResilHedges, arm.Hedges},
		{obsv.MetricResilFastFails, arm.FastFails},
		{obsv.MetricResilBudgetDenied, arm.BudgetDenied},
		{obsv.MetricResilTruncations, arm.Truncations},
	}
	for _, sp := range spend {
		if sp.n > 0 {
			tel.Registry.Counter(sp.metric,
				obsv.L("policy", arm.Policy, "class", class)...).Add(float64(sp.n))
		}
	}
}

// SurvivalBy aggregates recovered-over-targeted across the arms of one
// class under one policy.
func (r *ResilReport) SurvivalBy(class taxonomy.FaultClass, policy string) stats.Proportion {
	var p stats.Proportion
	for _, a := range r.Arms {
		if a.Class != class || a.Policy != policy {
			continue
		}
		p.N += a.Targeted
		p.Hits += a.Recovered
	}
	return p
}

// Check asserts the sweep's headline claim — the paper's Table 8 logic
// replayed at the HTTP layer: under the full policy, retry-centric recovery
// survives at least 90% of transient (EDT) chaos and at most 10% of
// nontransient (EDN) chaos. It returns nil when both bounds hold.
func (r *ResilReport) Check() error {
	edt := r.SurvivalBy(taxonomy.ClassEnvDependentTransient, "full")
	edn := r.SurvivalBy(taxonomy.ClassEnvDependentNonTransient, "full")
	if edt.N == 0 || edn.N == 0 {
		return fmt.Errorf("experiment: resil check: empty class (EDT %d, EDN %d targeted URLs)", edt.N, edn.N)
	}
	if edt.Value() < 0.9 {
		return fmt.Errorf("experiment: resil check: full-policy EDT survival %s below 90%%", edt.Percent())
	}
	if edn.Value() > 0.1 {
		return fmt.Errorf("experiment: resil check: full-policy EDN survival %s above 10%%", edn.Percent())
	}
	return nil
}

// mttrCell renders an arm's MTTR for the matrix ("-" when nothing
// recovered).
func mttrCell(a ResilArm) string {
	if a.Recovered == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", a.MTTR.Seconds())
}

// String renders the full matrix, the per-class survival aggregate, and the
// headline.
func (r *ResilReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RESIL chaos sweep (seed %d, %d arms, <=%d pages/arm):\n",
		r.Seed, len(r.Arms), r.MaxPages)
	tbl := &stats.Table{Header: []string{
		"fault", "class", "policy", "fetched", "gaps", "survival", "retries", "hedges", "fastfail", "denied", "mttr"}}
	for _, a := range r.Arms {
		s := a.Survival()
		tbl.Add(a.Fault, a.Class.Short(), a.Policy,
			fmt.Sprintf("%d/%d", a.Fetched, a.Attempted),
			fmt.Sprint(a.Gaps),
			fmt.Sprintf("%d/%d (%s)", s.Hits, s.N, s.Percent()),
			fmt.Sprint(a.Retries), fmt.Sprint(a.Hedges), fmt.Sprint(a.FastFails),
			fmt.Sprint(a.BudgetDenied), mttrCell(a))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nSurvival of chaos-targeted URLs, by class x policy:\n")
	agg := &stats.Table{Header: []string{"class", "naive", "retry", "full"}}
	for _, class := range []taxonomy.FaultClass{
		taxonomy.ClassEnvDependentTransient, taxonomy.ClassEnvDependentNonTransient} {
		row := []string{class.Short()}
		for _, pol := range ResilPolicies() {
			p := r.SurvivalBy(class, pol)
			row = append(row, fmt.Sprintf("%d/%d (%s)", p.Hits, p.N, p.Percent()))
		}
		agg.Add(row...)
	}
	b.WriteString(agg.String())
	edt := r.SurvivalBy(taxonomy.ClassEnvDependentTransient, "full")
	edn := r.SurvivalBy(taxonomy.ClassEnvDependentNonTransient, "full")
	fmt.Fprintf(&b,
		"\nHeadline: the full client recovers %s of transient (EDT) chaos but only %s of\nnontransient (EDN) chaos — generic retry pays off exactly where the paper's\nTable 8 says it does, and almost nowhere else.\n",
		edt.Percent(), edn.Percent())
	return b.String()
}
