package recoveryscope

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"faultstudy/internal/faultlint"
)

// Component is one statically-extracted member of an application's
// Componentize decomposition.
type Component struct {
	// Name is the component name constant ("httpd/core").
	Name string
	// Deps are the component names this one depends on.
	Deps []string
	// KillWrites is the write set of the component's OnKill hook, expanded
	// through the call graph — the state a crash-stop of this component
	// discards or releases.
	KillWrites *WriteSet
	// StartWrites is the OnStart hook's expanded write set.
	StartWrites *WriteSet
}

// ComponentMap is the statically-extracted component decomposition of one
// package: the tree shape, each component's kill-released state, and the
// package's mechanism→component attribution map.
type ComponentMap struct {
	// Dir is the package directory.
	Dir string
	// Components indexes the extracted components by name.
	Components map[string]*Component
	// Order lists the component names in declaration order (the MustAdd
	// order, which is also dependency order).
	Order []string
	// Root is the first component declared with no dependencies.
	Root string
	// MechanismComponent maps each mechanism key to the component its
	// defect lives in, from the package's map[string]string literal.
	MechanismComponent map[string]string
	// FieldOwner maps each kill-released field to the first component (in
	// declaration order) whose OnKill hook writes it — the component whose
	// microreboot clears that state.
	FieldOwner map[string]string
	// HookTypes is the set of type qualifiers the hooks' write sets touch —
	// the structs holding component-owned state. A fault-path write to a
	// field on one of these types is component state; writes to other types
	// (a parsed statement, a scratch struct) are not.
	HookTypes map[string]bool
}

// dependents computes the inverse dependency edges: which components list
// name in their Deps.
func (cm *ComponentMap) dependents(name string) []string {
	var out []string
	for _, n := range cm.Order {
		for _, d := range cm.Components[n].Deps {
			if d == name {
				out = append(out, n)
			}
		}
	}
	return out
}

// Subtree returns the component and its transitive dependents — the members
// a subtree-reboot of name cycles.
func (cm *ComponentMap) Subtree(name string) map[string]bool {
	out := map[string]bool{name: true}
	queue := []string{name}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, d := range cm.dependents(n) {
			if !out[d] {
				out[d] = true
				queue = append(queue, d)
			}
		}
	}
	return out
}

// KillReleasedFields returns every field any component's OnKill hook writes.
func (cm *ComponentMap) KillReleasedFields() map[string]bool {
	out := make(map[string]bool)
	for _, n := range cm.Order {
		for f := range cm.Components[n].KillWrites.Fields {
			out[f] = true
		}
	}
	return out
}

// isComponentPath reports whether an import path denotes the component
// runtime package (the real one or a fixture stand-in).
func isComponentPath(path string) bool {
	return path == "component" || strings.HasSuffix(path, "/component")
}

// BuildComponentMaps extracts the component decomposition of every package
// in the graph that declares component.Spec literals, keyed by package
// directory.
func BuildComponentMaps(g *Graph) map[string]*ComponentMap {
	out := make(map[string]*ComponentMap)
	for _, p := range g.Pkgs {
		cm := &ComponentMap{
			Dir:                p.Dir,
			Components:         make(map[string]*Component),
			MechanismComponent: make(map[string]string),
			FieldOwner:         make(map[string]string),
			HookTypes:          make(map[string]bool),
		}
		type specLit struct {
			pos  token.Pos
			comp *Component
		}
		var specs []specLit
		for _, f := range p.Files {
			file := f
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				sel, ok := lit.Type.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Spec" {
					return true
				}
				if path, _, ok := p.PkgQualified(file, sel); !ok || !isComponentPath(path) {
					return true
				}
				if comp := g.parseSpec(p, file, lit); comp != nil {
					specs = append(specs, specLit{pos: lit.Pos(), comp: comp})
				}
				return true
			})
		}
		if len(specs) == 0 {
			continue
		}
		// Declaration order: file iteration follows sorted file names and
		// positions are monotone within a file set, so position order is the
		// MustAdd order.
		sort.Slice(specs, func(i, j int) bool { return specs[i].pos < specs[j].pos })
		for _, s := range specs {
			if _, dup := cm.Components[s.comp.Name]; dup {
				continue
			}
			cm.Components[s.comp.Name] = s.comp
			cm.Order = append(cm.Order, s.comp.Name)
			if cm.Root == "" && len(s.comp.Deps) == 0 {
				cm.Root = s.comp.Name
			}
		}
		for _, name := range cm.Order {
			c := cm.Components[name]
			for _, field := range c.KillWrites.SortedFields() {
				if _, taken := cm.FieldOwner[field]; !taken {
					cm.FieldOwner[field] = name
				}
			}
			for _, ws := range []*WriteSet{c.KillWrites, c.StartWrites} {
				for field := range ws.Fields {
					if t := fieldType(field); t != "" {
						cm.HookTypes[t] = true
					}
				}
			}
		}
		collectMechanismMap(g, p, cm)
		out[p.Dir] = cm
	}
	return out
}

// parseSpec reads one component.Spec literal: the NewPart name and hooks,
// and the Deps list.
func (g *Graph) parseSpec(p *faultlint.Package, f *ast.File, lit *ast.CompositeLit) *Component {
	comp := &Component{KillWrites: NewWriteSet(), StartWrites: NewWriteSet()}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Deps":
			if dl, ok := kv.Value.(*ast.CompositeLit); ok {
				for _, de := range dl.Elts {
					if v, ok := p.ConstString(de); ok {
						comp.Deps = append(comp.Deps, v)
					}
				}
			}
		case "Component":
			call, ok := kv.Value.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewPart" || len(call.Args) < 2 {
				continue
			}
			if v, ok := p.ConstString(call.Args[0]); ok {
				comp.Name = v
			}
			g.parseHooks(p, f, call.Args[1], comp)
		}
	}
	if comp.Name == "" {
		return nil
	}
	return comp
}

// parseHooks expands the OnKill/OnStart function literals of a
// component.Hooks value into write sets, following calls through the graph
// so a hook that delegates to closeLeakFDsLocked still owns leakFDs.
func (g *Graph) parseHooks(p *faultlint.Package, f *ast.File, hooksExpr ast.Expr, comp *Component) {
	hooks, ok := hooksExpr.(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range hooks.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			continue
		}
		ws := NewWriteSet()
		collectWrites(p, fl.Body, g.globalsByPkg[p.Dir], ws)
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, callee := range g.ResolveCall(p, f, call) {
					ws.Merge(callee.Reach)
				}
			}
			return true
		})
		switch key.Name {
		case "OnKill":
			comp.KillWrites.Merge(ws)
		case "OnStart":
			comp.StartWrites.Merge(ws)
		}
	}
}

// collectMechanismMap finds the package's mechanism→component attribution:
// any package-level map literal whose keys are mechanism-shaped constants
// (containing "/") and whose values name extracted components.
func collectMechanismMap(g *Graph, p *faultlint.Package, cm *ComponentMap) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, value := range vs.Values {
					ml, ok := value.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range ml.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						mech, ok := p.ConstString(kv.Key)
						if !ok || !strings.Contains(mech, "/") {
							continue
						}
						comp, ok := p.ConstString(kv.Value)
						if !ok {
							continue
						}
						if _, known := cm.Components[comp]; known {
							cm.MechanismComponent[mech] = comp
						}
					}
				}
			}
		}
	}
}
