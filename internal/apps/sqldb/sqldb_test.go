package sqldb

import (
	"fmt"
	"testing"
	"testing/quick"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

func newDB(t *testing.T, faults *faultinject.Set, opts ...simenv.Option) *Server {
	t.Helper()
	env := simenv.New(11, opts...)
	srv := New(env, faults)
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return srv
}

func mustExec(t *testing.T, srv *Server, sql string) *ResultSet {
	t.Helper()
	rs, err := srv.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return rs
}

func seed(t *testing.T, srv *Server, rows int) {
	t.Helper()
	mustExec(t, srv, "CREATE TABLE t (k INT, name TEXT)")
	mustExec(t, srv, "CREATE INDEX k_idx ON t (k)")
	for i := 1; i <= rows; i++ {
		mustExec(t, srv, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d')", i, i))
	}
}

func TestBasicCRUD(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 5)

	rs := mustExec(t, srv, "SELECT * FROM t WHERE k >= 2 ORDER BY k DESC LIMIT 3")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	if rs.Rows[0][0].I != 5 || rs.Rows[2][0].I != 3 {
		t.Errorf("order wrong: %v", rs.Rows)
	}

	rs = mustExec(t, srv, "SELECT COUNT(*) FROM t")
	if !rs.IsCount || rs.Count != 5 {
		t.Errorf("count = %+v", rs)
	}

	mustExec(t, srv, "UPDATE t SET name = 'zzz' WHERE k = 3")
	rs = mustExec(t, srv, "SELECT name FROM t WHERE k = 3")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "zzz" {
		t.Errorf("update result: %v", rs.Rows)
	}

	mustExec(t, srv, "DELETE FROM t WHERE k <= 2")
	rs = mustExec(t, srv, "SELECT COUNT(*) FROM t")
	if rs.Count != 3 {
		t.Errorf("count after delete = %d", rs.Count)
	}

	mustExec(t, srv, "OPTIMIZE TABLE t")
	rs = mustExec(t, srv, "SELECT * FROM t ORDER BY k")
	if len(rs.Rows) != 3 || rs.Rows[0][0].I != 3 {
		t.Errorf("after optimize: %v", rs.Rows)
	}
}

func TestSelfReferencingUpdateHealthy(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 5)
	mustExec(t, srv, "UPDATE t SET k = k + 1")
	rs := mustExec(t, srv, "SELECT k FROM t ORDER BY k")
	for i, row := range rs.Rows {
		if row[0].I != int64(i+2) {
			t.Fatalf("row %d = %v, want %d (each key incremented exactly once)", i, row[0], i+2)
		}
	}
}

func TestStatementErrorsDoNotKillServer(t *testing.T) {
	srv := newDB(t, nil)
	bad := []string{
		"SELEKT * FROM t",
		"SELECT * FROM missing",
		"CREATE TABLE x (c WEIRD)",
		"INSERT INTO missing VALUES (1)",
		"SELECT nope FROM t",
	}
	mustExec(t, srv, "CREATE TABLE t (k INT)")
	for _, sql := range bad {
		if _, err := srv.Exec(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
		if _, ok := faultinject.AsFailure(fmt.Errorf("w")); ok {
			t.Fatal("impossible")
		}
	}
	if !srv.Running() {
		t.Error("statement errors must leave the server up")
	}
}

func TestDuplicateTableAndIndex(t *testing.T) {
	srv := newDB(t, nil)
	mustExec(t, srv, "CREATE TABLE t (k INT)")
	if _, err := srv.Exec("CREATE TABLE t (k INT)"); err == nil {
		t.Error("duplicate table should fail")
	}
	mustExec(t, srv, "CREATE INDEX i ON t (k)")
	if _, err := srv.Exec("CREATE INDEX j ON t (k)"); err == nil {
		t.Error("duplicate index should fail")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	srv := newDB(t, nil)
	mustExec(t, srv, "CREATE TABLE t (k INT, s TEXT)")
	if _, err := srv.Exec("INSERT INTO t VALUES ('x', 'y')"); err == nil {
		t.Error("string into INT should fail")
	}
	if _, err := srv.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestIndexUpdateScanBug(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechIndexUpdateScan))
	seed(t, srv, 5)
	_, err := srv.Exec("UPDATE t SET k = k + 1")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechIndexUpdateScan || fe.Symptom != taxonomy.SymptomCrash {
		t.Fatalf("failure = %v", err)
	}
	if srv.Running() {
		t.Error("server should be down")
	}
	// Decrementing moves keys backward — never re-encountered, no crash.
	srv2 := newDB(t, faultinject.NewSet(MechIndexUpdateScan))
	seed(t, srv2, 5)
	mustExec(t, srv2, "UPDATE t SET name = 'same' WHERE k = 2")
}

func TestOrderByEmptyBug(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechOrderByEmpty))
	seed(t, srv, 3)
	// Non-empty results sort fine.
	mustExec(t, srv, "SELECT * FROM t WHERE k >= 1 ORDER BY k")
	_, err := srv.Exec("SELECT * FROM t WHERE k > 100 ORDER BY name")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechOrderByEmpty {
		t.Fatalf("failure = %v", err)
	}
}

func TestCountEmptyBug(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechCountEmpty))
	mustExec(t, srv, "CREATE TABLE e (c INT)")
	_, err := srv.Exec("SELECT COUNT(c) FROM e")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechCountEmpty {
		t.Fatalf("failure = %v", err)
	}
	// Non-empty tables count fine.
	srv2 := newDB(t, faultinject.NewSet(MechCountEmpty))
	mustExec(t, srv2, "CREATE TABLE e (c INT)")
	mustExec(t, srv2, "INSERT INTO e VALUES (1)")
	rs := mustExec(t, srv2, "SELECT COUNT(c) FROM e")
	if rs.Count != 1 {
		t.Errorf("count = %d", rs.Count)
	}
}

func TestOptimizeCrashBug(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechOptimizeCrash))
	seed(t, srv, 2)
	_, err := srv.Exec("OPTIMIZE TABLE t")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechOptimizeCrash {
		t.Fatalf("failure = %v", err)
	}
}

func TestFlushAfterLockBug(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechFlushAfterLock))
	seed(t, srv, 2)
	// FLUSH without a lock is fine even with the bug armed.
	mustExec(t, srv, "FLUSH TABLES")
	mustExec(t, srv, "LOCK TABLES t READ")
	_, err := srv.Exec("FLUSH TABLES")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechFlushAfterLock {
		t.Fatalf("failure = %v", err)
	}
	// UNLOCK then FLUSH is also fine on a fresh server.
	srv2 := newDB(t, faultinject.NewSet(MechFlushAfterLock))
	seed(t, srv2, 1)
	mustExec(t, srv2, "LOCK TABLES t WRITE")
	mustExec(t, srv2, "UNLOCK TABLES")
	mustExec(t, srv2, "FLUSH TABLES")
}

func TestGenericEIBugs(t *testing.T) {
	tests := []struct {
		key     string
		symptom taxonomy.Symptom
	}{
		{MechNullDeref, taxonomy.SymptomCrash},
		{MechStaleBuffer, taxonomy.SymptomError},
		{MechBadInit, taxonomy.SymptomCrash},
		{MechExecLoop, taxonomy.SymptomHang},
		{MechBounds, taxonomy.SymptomCrash},
		{MechMissingCheck, taxonomy.SymptomCrash},
	}
	for _, tt := range tests {
		srv := newDB(t, faultinject.NewSet(tt.key))
		tbl := "bug_" + underscore(tt.key[len("sqldb/"):])
		mustExec(t, srv, "CREATE TABLE "+tbl+" (c INT)")
		_, err := srv.Exec("SELECT * FROM " + tbl)
		fe, ok := faultinject.AsFailure(err)
		if !ok || fe.Mechanism != tt.key || fe.Symptom != tt.symptom {
			t.Errorf("%s: failure = %v", tt.key, err)
		}
		// Fault-free servers treat the same tables as ordinary tables.
		clean := newDB(t, nil)
		mustExec(t, clean, "CREATE TABLE "+tbl+" (c INT)")
		mustExec(t, clean, "SELECT * FROM "+tbl)
	}
}

func TestFDCompetition(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechFDCompetition), simenv.WithFDLimit(8))
	env := srv.Env()
	for env.FDs().Limit()-env.FDs().InUse() > 0 {
		if _, err := env.FDs().Open("httpd-neighbor"); err != nil {
			break
		}
	}
	_, err := srv.Exec("CREATE TABLE t (c INT)")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechFDCompetition {
		t.Fatalf("failure = %v", err)
	}
}

func TestNoReverseDNS(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechNoReverseDNS))
	srv.Env().DNS().AddHost("good.example.com", "10.0.0.1")
	if _, err := srv.Connect("10.0.0.1"); err != nil {
		t.Fatalf("connect with PTR: %v", err)
	}
	_, err := srv.Connect("10.9.9.9")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechNoReverseDNS || fe.Symptom != taxonomy.SymptomCrash {
		t.Fatalf("failure = %v", err)
	}
}

func TestDBFileLimit(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechDBFileLimit),
		simenv.WithDiskBytes(1<<20), simenv.WithMaxFileSize(256))
	mustExec(t, srv, "CREATE TABLE t (c INT)")
	var failure error
	for i := 0; i < 10; i++ {
		if _, err := srv.Exec("INSERT INTO t VALUES (1)"); err != nil {
			failure = err
			break
		}
	}
	fe, ok := faultinject.AsFailure(failure)
	if !ok || fe.Mechanism != MechDBFileLimit {
		t.Fatalf("failure = %v", failure)
	}
}

func TestFSFull(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechFSFull))
	mustExec(t, srv, "CREATE TABLE t (c INT)")
	if err := srv.Env().Disk().FillFrom("tenant", 10); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Exec("INSERT INTO t VALUES (1)")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechFSFull {
		t.Fatalf("failure = %v", err)
	}
}

func TestSignalMaskRace(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechSignalMaskRace))
	srv.Env().Sched().Force(MechSignalMaskRace, 0)
	_, err := srv.Exec("CREATE TABLE t (c INT)")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechSignalMaskRace {
		t.Fatalf("failure = %v", err)
	}
	// The winning interleaving survives.
	srv2 := newDB(t, faultinject.NewSet(MechSignalMaskRace))
	srv2.Env().Sched().Force(MechSignalMaskRace, 1)
	mustExec(t, srv2, "CREATE TABLE t (c INT)")
}

func TestLoginAdminRace(t *testing.T) {
	srv := newDB(t, faultinject.NewSet(MechLoginAdminRace))
	srv.Env().Sched().Force(MechLoginAdminRace, 0)
	mustExec(t, srv, "GRANT SELECT ON t TO bob")
	_, err := srv.Connect("10.0.0.2")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechLoginAdminRace {
		t.Fatalf("failure = %v", err)
	}
	// After FLUSH PRIVILEGES there is no reload window, so no race.
	srv2 := newDB(t, faultinject.NewSet(MechLoginAdminRace))
	srv2.Env().Sched().Force(MechLoginAdminRace, 0)
	mustExec(t, srv2, "GRANT SELECT ON t TO bob")
	mustExec(t, srv2, "FLUSH PRIVILEGES")
	if _, err := srv2.Connect("10.0.0.2"); err != nil {
		t.Fatalf("connect after flush: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 4)
	mustExec(t, srv, "DELETE FROM t WHERE k = 2")
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	srv.Env().ReclaimOwner(Owner)
	if err := srv.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rs := mustExec(t, srv, "SELECT k FROM t ORDER BY k")
	if len(rs.Rows) != 3 || rs.Rows[0][0].I != 1 || rs.Rows[2][0].I != 4 {
		t.Errorf("restored rows: %v", rs.Rows)
	}
	// Indexes survive restore.
	rs = mustExec(t, srv, "SELECT name FROM t WHERE k = 3")
	if len(rs.Rows) != 1 {
		t.Errorf("index lookup after restore: %v", rs.Rows)
	}
}

func TestResetDropsEverything(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 3)
	srv.Stop()
	if err := srv.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Exec("SELECT * FROM t"); err == nil {
		t.Error("table should be gone after reset")
	}
	if srv.Env().Disk().Exists("/var/db/t.ISD") {
		t.Error("datafile should be gone after reset")
	}
}

func TestConnectionsLifecycle(t *testing.T) {
	srv := newDB(t, nil)
	id, err := srv.Connect("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Connections() != 1 {
		t.Error("connection not recorded")
	}
	srv.Disconnect(id)
	if srv.Connections() != 0 {
		t.Error("disconnect not recorded")
	}
	srv.Stop()
	if _, err := srv.Connect("10.0.0.1"); err == nil {
		t.Error("connect while down should fail")
	}
	if _, err := srv.Exec("SELECT 1 FROM t"); err == nil {
		t.Error("exec while down should fail")
	}
}

func TestScenariosCoverEveryMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	srv := New(simenv.New(1), faultinject.NewSet())
	scenarios := Scenarios(srv)
	for _, key := range reg.Keys() {
		sc, ok := scenarios[key]
		if !ok {
			t.Errorf("mechanism %s has no scenario", key)
			continue
		}
		if sc.Mechanism != key || len(sc.Ops) == 0 {
			t.Errorf("scenario %s malformed", key)
		}
	}
	if len(scenarios) != len(reg.Keys()) {
		t.Errorf("%d scenarios vs %d mechanisms", len(scenarios), len(reg.Keys()))
	}
}

func TestEveryScenarioTriggersItsMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	for _, key := range reg.Keys() {
		key := key
		t.Run(key, func(t *testing.T) {
			env := simenv.New(7, simenv.WithFDLimit(64))
			srv := New(env, faultinject.NewSet(key))
			if err := srv.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			sc := Scenarios(srv)[key]
			if sc.Stage != nil {
				sc.Stage()
			}
			var failure *faultinject.FailureError
			for _, op := range sc.Ops {
				if err := op.Do(); err != nil {
					fe, ok := faultinject.AsFailure(err)
					if !ok {
						t.Fatalf("op %s returned non-failure error: %v", op.Name, err)
					}
					failure = fe
					break
				}
			}
			if failure == nil {
				t.Fatalf("scenario never triggered %s", key)
			}
			if failure.Mechanism != key {
				t.Errorf("scenario for %s triggered %s", key, failure.Mechanism)
			}
		})
	}
}

func TestBTreeBasics(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 200; i++ {
		bt.Insert(IntValue(int64(i%50)), i)
	}
	if bt.Len() != 50 {
		t.Errorf("distinct keys = %d, want 50", bt.Len())
	}
	rows := bt.Lookup(IntValue(7))
	if len(rows) != 4 {
		t.Errorf("postings for 7 = %v", rows)
	}
	if got := bt.Lookup(IntValue(999)); got != nil {
		t.Errorf("missing key lookup = %v", got)
	}
	if !bt.Delete(IntValue(7), 7) {
		t.Error("delete failed")
	}
	if bt.Delete(IntValue(7), 7) {
		t.Error("double delete should miss")
	}
	if len(bt.Lookup(IntValue(7))) != 3 {
		t.Error("posting not removed")
	}
}

func TestBTreeScanOrder(t *testing.T) {
	bt := newBTree()
	for _, k := range []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0} {
		bt.Insert(IntValue(k), int(k))
	}
	var keys []int64
	bt.Scan(func(k Value, _ int) bool {
		keys = append(keys, k.I)
		return true
	})
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan out of order: %v", keys)
		}
	}
	// Early stop works.
	count := 0
	bt.Scan(func(Value, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

// Property: a B-tree scan yields keys in nondecreasing order and exactly the
// inserted postings, for arbitrary insertion sequences.
func TestBTreeScanProperty(t *testing.T) {
	f := func(keys []int16) bool {
		bt := newBTree()
		want := make(map[int64]int)
		for i, k := range keys {
			bt.Insert(IntValue(int64(k)), i)
			want[int64(k)]++
		}
		got := make(map[int64]int)
		prev := int64(-1 << 62)
		ordered := true
		bt.Scan(func(k Value, _ int) bool {
			if k.I < prev {
				ordered = false
			}
			prev = k.I
			got[k.I]++
			return true
		})
		if !ordered {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: parsing never panics and either errors or produces a statement
// with the right kind, for a grammar-directed family of inputs.
func TestParseProperty(t *testing.T) {
	f := func(n uint8, desc bool) bool {
		sql := fmt.Sprintf("SELECT k FROM t WHERE k < %d ORDER BY k", int(n))
		if desc {
			sql += " DESC"
		}
		st, err := Parse(sql)
		if err != nil {
			return false
		}
		return st.Kind == StmtSelect && st.Where != nil && st.OrderBy == "k" && st.OrderDesc == desc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{StrValue("a"), StrValue("b"), -1},
		{IntValue(9), StrValue("a"), -1},
		{StrValue("a"), IntValue(9), 1},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, in := range []string{"SELECT 'unterminated", "/* open comment", "a ! b", "a @ b"} {
		if _, err := lex(in); err == nil {
			t.Errorf("lex(%q) should fail", in)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lex("SELECT /* hidden */ * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.text == "hidden" {
			t.Error("comment leaked")
		}
	}
}

func TestStringEscapes(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES ('it''s')")
	if err != nil {
		t.Fatal(err)
	}
	if st.Values[0].S != "it's" {
		t.Errorf("escaped string = %q", st.Values[0].S)
	}
}

// Property: an indexed equality lookup returns exactly the rows a full scan
// would, for arbitrary key multisets and probes.
func TestIndexedLookupEqualsScanProperty(t *testing.T) {
	f := func(keys []uint8, probe uint8) bool {
		if len(keys) > 60 {
			keys = keys[:60]
		}
		indexed := newDB(t, nil)
		scanned := newDB(t, nil)
		mustExec(t, indexed, "CREATE TABLE t (k INT, name TEXT)")
		mustExec(t, indexed, "CREATE INDEX ki ON t (k)")
		mustExec(t, scanned, "CREATE TABLE t (k INT, name TEXT)")
		for i, k := range keys {
			stmt := fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", int(k)%16, i)
			mustExec(t, indexed, stmt)
			mustExec(t, scanned, stmt)
		}
		q := fmt.Sprintf("SELECT name FROM t WHERE k = %d ORDER BY name", int(probe)%16)
		a := mustExec(t, indexed, q)
		b := mustExec(t, scanned, q)
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			if a.Rows[i][0].S != b.Rows[i][0].S {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIndexedLookupSkipsDeletedRows(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 5)
	mustExec(t, srv, "DELETE FROM t WHERE k = 3")
	rs := mustExec(t, srv, "SELECT * FROM t WHERE k = 3")
	if len(rs.Rows) != 0 {
		t.Errorf("deleted row surfaced via index: %v", rs.Rows)
	}
	rs = mustExec(t, srv, "SELECT * FROM t WHERE k = 4")
	if len(rs.Rows) != 1 {
		t.Errorf("live row missing via index: %v", rs.Rows)
	}
}

func TestWhereUnknownColumnErrors(t *testing.T) {
	srv := newDB(t, nil)
	mustExec(t, srv, "CREATE TABLE t (k INT)")
	if _, err := srv.Exec("SELECT * FROM t WHERE nope = 1"); err == nil {
		t.Error("unknown WHERE column should fail")
	}
}

func TestDropTable(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 2)
	before := srv.Env().FDs().OwnedBy(Owner)
	mustExec(t, srv, "DROP TABLE t")
	if _, err := srv.Exec("SELECT * FROM t"); err == nil {
		t.Error("table should be gone")
	}
	if srv.Env().Disk().Exists("/var/db/t.ISD") {
		t.Error("datafile should be removed")
	}
	if got := srv.Env().FDs().OwnedBy(Owner); got != before-1 {
		t.Errorf("fd not released on drop: %d -> %d", before, got)
	}
	if _, err := srv.Exec("DROP TABLE missing"); err == nil {
		t.Error("dropping a missing table should fail")
	}
}

func TestValueAndTypeStrings(t *testing.T) {
	if IntValue(5).String() != "5" || StrValue("x").String() != "x" {
		t.Error("value strings wrong")
	}
	if TypeInt.String() != "INT" || TypeText.String() != "TEXT" {
		t.Error("type strings wrong")
	}
	if ColType(9).String() == "" {
		t.Error("unknown type string empty")
	}
}

func TestBTreeKeys(t *testing.T) {
	bt := newBTree()
	for _, k := range []int64{3, 1, 2, 3, 1} {
		bt.Insert(IntValue(k), int(k))
	}
	keys := bt.Keys()
	if len(keys) != 3 || keys[0].I != 1 || keys[2].I != 3 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestParseErrorPaths(t *testing.T) {
	bad := []string{
		"",                                 // empty
		"CREATE",                           // bare create
		"CREATE TABLE",                     // no name
		"CREATE TABLE t",                   // no columns
		"CREATE TABLE t (",                 // unterminated
		"CREATE TABLE t (c)",               // missing type
		"CREATE INDEX i",                   // missing ON
		"CREATE INDEX i ON t",              // missing column
		"INSERT t VALUES (1)",              // missing INTO
		"INSERT INTO t (1)",                // missing VALUES
		"INSERT INTO t VALUES 1",           // missing paren
		"SELECT FROM t",                    // no columns
		"SELECT * t",                       // missing FROM
		"SELECT * FROM t WHERE",            // dangling where
		"SELECT * FROM t WHERE k",          // no operator
		"SELECT * FROM t WHERE k LIKE 'x'", // unsupported operator
		"SELECT * FROM t ORDER k",          // missing BY
		"SELECT * FROM t LIMIT x",          // non-numeric limit
		"UPDATE t",                         // missing SET
		"UPDATE t SET k",                   // missing =
		"UPDATE t SET k = k - 1",           // unsupported delta form
		"DELETE t",                         // missing FROM
		"LOCK t",                           // missing TABLES
		"UNLOCK t",                         // missing TABLES
		"FLUSH",                            // bare flush
		"OPTIMIZE t",                       // missing TABLE
		"WOBBLE TABLE t",                   // unknown verb
		"SELECT COUNT c FROM t",            // missing paren
		"SELECT * FROM t WHERE k = SELECT", // bad value
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseVarcharLength(t *testing.T) {
	st, err := Parse("CREATE TABLE t (name VARCHAR(255), k INT)")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 2 || st.Cols[0].Type != TypeText {
		t.Errorf("cols = %+v", st.Cols)
	}
}

func TestServerAccessors(t *testing.T) {
	srv := newDB(t, nil)
	if srv.Name() != "mysqld" {
		t.Errorf("Name = %q", srv.Name())
	}
	mustExec(t, srv, "CREATE TABLE t (k INT)")
	if srv.Queries() != 1 {
		t.Errorf("Queries = %d", srv.Queries())
	}
}

// Property: ORDER BY on an indexed column returns exactly the rows, in
// exactly the order, the sort path would — ascending and descending, with
// duplicate keys.
func TestOrderByIndexEqualsSortProperty(t *testing.T) {
	f := func(keys []uint8, desc bool, bound uint8) bool {
		if len(keys) > 50 {
			keys = keys[:50]
		}
		indexed := newDB(t, nil)
		plain := newDB(t, nil)
		mustExec(t, indexed, "CREATE TABLE t (k INT, name TEXT)")
		mustExec(t, indexed, "CREATE INDEX ki ON t (k)")
		mustExec(t, plain, "CREATE TABLE t (k INT, name TEXT)")
		for i, k := range keys {
			stmt := fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%03d')", int(k)%8, i)
			mustExec(t, indexed, stmt)
			mustExec(t, plain, stmt)
		}
		dir := ""
		if desc {
			dir = " DESC"
		}
		q := fmt.Sprintf("SELECT k, name FROM t WHERE k <= %d ORDER BY k%s", int(bound)%8, dir)
		a := mustExec(t, indexed, q)
		b := mustExec(t, plain, q)
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			if a.Rows[i][0].I != b.Rows[i][0].I || a.Rows[i][1].S != b.Rows[i][1].S {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrderByIndexSkipsDeleted(t *testing.T) {
	srv := newDB(t, nil)
	seed(t, srv, 6)
	mustExec(t, srv, "DELETE FROM t WHERE k = 3")
	rs := mustExec(t, srv, "SELECT k FROM t ORDER BY k DESC")
	if len(rs.Rows) != 5 || rs.Rows[0][0].I != 6 || rs.Rows[4][0].I != 1 {
		t.Errorf("rows = %v", rs.Rows)
	}
}
