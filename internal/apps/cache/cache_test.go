package cache

import (
	"strings"
	"testing"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

func newServer(t *testing.T, faults *faultinject.Set, cfg Config) *Server {
	t.Helper()
	env := simenv.New(1, simenv.WithFDLimit(64))
	srv := New(env, faults, cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return srv
}

func TestLifecycleAndBasicOps(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(), Config{})
	if err := srv.Start(); err == nil {
		t.Error("second start should fail")
	}
	if v, err := srv.Get("motd"); err != nil || v != "welcome to cached" {
		t.Fatalf("warm get = %q, %v", v, err)
	}
	if err := srv.Set("k", "v"); err != nil {
		t.Fatalf("set: %v", err)
	}
	if v, err := srv.Get("k"); err != nil || v != "v" {
		t.Fatalf("get after set = %q, %v", v, err)
	}
	if v, err := srv.Get("absent"); err != nil || v != "" {
		t.Fatalf("miss = %q, %v", v, err)
	}
	if err := srv.Del("k"); err != nil {
		t.Fatalf("del: %v", err)
	}
	if v, _ := srv.Get("k"); v != "" {
		t.Errorf("get after del = %q", v)
	}
	stats, err := srv.Stats()
	if err != nil || !strings.Contains(stats, "hits=") {
		t.Fatalf("stats = %q, %v", stats, err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if srv.Len() != 0 {
		t.Errorf("len after flush = %d", srv.Len())
	}
	if srv.Requests() == 0 {
		t.Error("requests not counted")
	}
	srv.Stop()
	srv.Stop() // idempotent
	if _, err := srv.Get("motd"); err == nil {
		t.Error("get on a stopped daemon should fail")
	}
	if err := srv.Set("k", "v"); err == nil {
		t.Error("set on a stopped daemon should fail")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(), Config{Capacity: 4})
	// Warm content is motd+version (LRU order: motd first). Fill to capacity,
	// then touch motd so version becomes the eviction victim.
	if err := srv.Set("k1", "v"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Set("k2", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Get("motd"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Set("k3", "v"); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 4 {
		t.Fatalf("len = %d, want 4 (capacity)", srv.Len())
	}
	if v, _ := srv.Get("version"); v != "" {
		t.Errorf("LRU victim survived: version = %q", v)
	}
	if v, _ := srv.Get("motd"); v == "" {
		t.Error("recently touched motd was evicted")
	}
	// Overwriting an existing key at capacity must not evict.
	if err := srv.Set("k1", "v2"); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 4 {
		t.Errorf("len after overwrite = %d", srv.Len())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(), Config{})
	if err := srv.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Get("k"); err != nil {
		t.Fatal(err)
	}
	keys, reqs := srv.Keys(), srv.Requests()
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Diverge, then roll back.
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Restore(snap); err == nil {
		t.Error("restore while running should fail")
	}
	srv.Stop()
	if err := srv.Restore([]byte("not json")); err == nil {
		t.Error("restore of a bad snapshot should fail")
	}
	if err := srv.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !srv.Running() {
		t.Fatal("daemon not running after restore")
	}
	if got := srv.Keys(); len(got) != len(keys) {
		t.Errorf("keys after restore = %v, want %v", got, keys)
	}
	if srv.Requests() != reqs {
		t.Errorf("requests after restore = %d, want %d", srv.Requests(), reqs)
	}
	if v, err := srv.Get("k"); err != nil || v != "v" {
		t.Errorf("get after restore = %q, %v", v, err)
	}
}

func TestRestoreReopensHeldDescriptors(t *testing.T) {
	// A generic recovery restores every resource the state says the daemon
	// held — leaked connection descriptors included.
	srv := newServer(t, faultinject.NewSet(MechConnFDLeak), Config{})
	for i := 0; i < 3; i++ {
		if _, err := srv.Get("motd"); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	srv.mu.Lock()
	held := len(srv.connFDs)
	srv.mu.Unlock()
	if held != 3 {
		t.Fatalf("held descriptors = %d, want 3", held)
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	if err := srv.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	srv.mu.Lock()
	held = len(srv.connFDs)
	srv.mu.Unlock()
	if held != 3 {
		t.Errorf("descriptors after restore = %d, want 3 (faithfully re-leaked)", held)
	}
}

func TestResetDiscardsAccumulatedState(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechConnFDLeak), Config{})
	for i := 0; i < 3; i++ {
		if _, err := srv.Get("motd"); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Reset(); err == nil {
		t.Error("reset while running should fail")
	}
	srv.Stop()
	if err := srv.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	srv.mu.Lock()
	held, want := len(srv.connFDs), srv.connFDWant
	srv.mu.Unlock()
	if held != 0 || want != 0 {
		t.Errorf("reset kept leaks: fds=%d want=%d", held, want)
	}
	if srv.Requests() != 0 {
		t.Errorf("requests after reset = %d", srv.Requests())
	}
	if v, err := srv.Get("motd"); err != nil || v != "welcome to cached" {
		t.Errorf("pristine content missing after reset: %q, %v", v, err)
	}
}

func TestDegradedModeSuspendsEnvironmentPaths(t *testing.T) {
	// A flapping resolver fails miss fills on a healthy daemon; degraded mode
	// keeps serving from the local index instead.
	env := simenv.New(1)
	srv := New(env, faultinject.NewSet(MechPeerDNSFlap), Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	env.DNS().AddHost(peerHost, "10.9.9.9")
	env.DNS().Fail(healTTR)
	if _, err := srv.Get("missing"); err == nil {
		t.Fatal("miss fill should fail while the resolver flaps")
	}
	srv.SetDegraded(true)
	if !srv.Degraded() {
		t.Fatal("degraded flag not set")
	}
	if _, err := srv.Get("missing"); err != nil {
		t.Errorf("degraded miss should skip the peer fill: %v", err)
	}
	if v, err := srv.Get("motd"); err != nil || v == "" {
		t.Errorf("degraded hit = %q, %v", v, err)
	}
	srv.SetDegraded(false)
}

func TestCrashMechanismStopsTheDaemon(t *testing.T) {
	srv := newServer(t, faultinject.NewSet(MechEmptyKeyDeref), Config{})
	_, err := srv.Get("")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechEmptyKeyDeref {
		t.Fatalf("empty-key get = %v", err)
	}
	if srv.Running() {
		t.Fatal("daemon alive after seeded crash")
	}
	if _, err := srv.Get("motd"); err == nil {
		t.Error("crashed daemon still serving")
	}
}

func TestScenariosCoverEveryMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	env := simenv.New(1)
	srv := New(env, faultinject.NewSet(), Config{})
	scenarios := Scenarios(srv)
	for _, key := range reg.Keys() {
		sc, ok := scenarios[key]
		if !ok {
			t.Errorf("mechanism %s has no scenario", key)
			continue
		}
		if sc.Mechanism != key {
			t.Errorf("scenario for %s names %s", key, sc.Mechanism)
		}
		if len(sc.Ops) == 0 {
			t.Errorf("scenario %s has no ops", key)
		}
	}
	if len(scenarios) != len(reg.Keys()) {
		t.Errorf("%d scenarios vs %d mechanisms", len(scenarios), len(reg.Keys()))
	}
}

func TestEveryScenarioTriggersItsMechanism(t *testing.T) {
	reg := faultinject.NewRegistry()
	RegisterMechanisms(reg)
	for _, key := range reg.Keys() {
		key := key
		t.Run(key, func(t *testing.T) {
			env := simenv.New(7, simenv.WithFDLimit(64))
			srv := New(env, faultinject.NewSet(key), Config{})
			if err := srv.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			sc := Scenarios(srv)[key]
			if sc.Stage != nil {
				sc.Stage()
			}
			var failure *faultinject.FailureError
			for _, op := range sc.Ops {
				if err := op.Do(); err != nil {
					fe, ok := faultinject.AsFailure(err)
					if !ok {
						t.Fatalf("op %s returned non-failure error: %v", op.Name, err)
					}
					failure = fe
					break
				}
			}
			if failure == nil {
				t.Fatalf("scenario never triggered %s", key)
			}
			if failure.Mechanism != key {
				t.Errorf("scenario for %s triggered %s", key, failure.Mechanism)
			}
		})
	}
}

func TestLatentBugsStayQuietOffTrigger(t *testing.T) {
	// A daemon carrying several latent bugs serves benign traffic untouched;
	// each defect fires only on its own trigger.
	srv := newServer(t, faultinject.NewSet(
		MechEmptyKeyDeref, MechTTLParseLoop, MechBigValueBounds, MechFlushDoubleFree,
	), Config{})
	if err := srv.Set("k", "v"); err != nil {
		t.Fatalf("benign set: %v", err)
	}
	if _, err := srv.Get("k"); err != nil {
		t.Fatalf("benign get: %v", err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatalf("single flush: %v", err)
	}
	if err := srv.Set("k", "v"); err != nil {
		t.Fatalf("set after flush: %v", err)
	}
	if !srv.Running() {
		t.Fatal("daemon died on benign traffic")
	}
}
