package taxonomy

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestFaultClassString(t *testing.T) {
	tests := []struct {
		class FaultClass
		want  string
		short string
	}{
		{ClassUnknown, "unknown", "?"},
		{ClassEnvIndependent, "environment-independent", "EI"},
		{ClassEnvDependentNonTransient, "environment-dependent-nontransient", "EDN"},
		{ClassEnvDependentTransient, "environment-dependent-transient", "EDT"},
		{FaultClass(99), "FaultClass(99)", "?"},
	}
	for _, tt := range tests {
		if got := tt.class.String(); got != tt.want {
			t.Errorf("FaultClass(%d).String() = %q, want %q", int(tt.class), got, tt.want)
		}
		if got := tt.class.Short(); got != tt.short {
			t.Errorf("FaultClass(%d).Short() = %q, want %q", int(tt.class), got, tt.short)
		}
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
}

func TestParseClassAliases(t *testing.T) {
	tests := []struct {
		in   string
		want FaultClass
	}{
		{"EI", ClassEnvIndependent},
		{"edn", ClassEnvDependentNonTransient},
		{"EDT", ClassEnvDependentTransient},
		{"Heisenbug", ClassEnvDependentTransient},
		{"bohrbug", ClassEnvIndependent},
		{"  transient  ", ClassEnvDependentTransient},
		{"", ClassUnknown},
	}
	for _, tt := range tests {
		got, err := ParseClass(tt.in)
		if err != nil {
			t.Errorf("ParseClass(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseClass(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseClassError(t *testing.T) {
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) should fail")
	}
}

func TestClassValidity(t *testing.T) {
	if ClassUnknown.Valid() {
		t.Error("ClassUnknown should not be valid")
	}
	for _, c := range Classes() {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
}

func TestDeterministic(t *testing.T) {
	if !ClassEnvIndependent.Deterministic() {
		t.Error("environment-independent faults are deterministic")
	}
	if ClassEnvDependentTransient.Deterministic() {
		t.Error("transient faults are not deterministic")
	}
	if ClassEnvDependentNonTransient.Deterministic() {
		t.Error("nontransient env-dependent faults are not deterministic")
	}
}

func TestTriggerRoundTrip(t *testing.T) {
	kinds := []TriggerKind{
		TriggerWorkloadOnly, TriggerResourceLeak, TriggerFDExhaustion,
		TriggerDiskFull, TriggerFileSizeLimit, TriggerNetworkResource,
		TriggerHostConfig, TriggerDNSFailure, TriggerProcessTable,
		TriggerRequestTiming, TriggerRace, TriggerSlowNetwork, TriggerEntropy,
	}
	for _, k := range kinds {
		got, err := ParseTrigger(k.String())
		if err != nil {
			t.Fatalf("ParseTrigger(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseTrigger(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func TestTriggerDefaultClass(t *testing.T) {
	tests := []struct {
		kind TriggerKind
		want FaultClass
	}{
		{TriggerWorkloadOnly, ClassEnvIndependent},
		{TriggerResourceLeak, ClassEnvDependentNonTransient},
		{TriggerFDExhaustion, ClassEnvDependentNonTransient},
		{TriggerDiskFull, ClassEnvDependentNonTransient},
		{TriggerFileSizeLimit, ClassEnvDependentNonTransient},
		{TriggerNetworkResource, ClassEnvDependentNonTransient},
		{TriggerHostConfig, ClassEnvDependentNonTransient},
		{TriggerDNSFailure, ClassEnvDependentTransient},
		{TriggerProcessTable, ClassEnvDependentTransient},
		{TriggerRequestTiming, ClassEnvDependentTransient},
		{TriggerRace, ClassEnvDependentTransient},
		{TriggerSlowNetwork, ClassEnvDependentTransient},
		{TriggerEntropy, ClassEnvDependentTransient},
		{TriggerUnknownKind, ClassUnknown},
	}
	for _, tt := range tests {
		if got := tt.kind.DefaultClass(); got != tt.want {
			t.Errorf("%v.DefaultClass() = %v, want %v", tt.kind, got, tt.want)
		}
	}
}

func TestSeverityQualifies(t *testing.T) {
	tests := []struct {
		sev  Severity
		want bool
	}{
		{SeverityUnknown, false},
		{SeverityWishlist, false},
		{SeverityMinor, false},
		{SeverityNormal, false},
		{SeveritySerious, true},
		{SeverityCritical, true},
	}
	for _, tt := range tests {
		if got := tt.sev.Qualifies(); got != tt.want {
			t.Errorf("%v.Qualifies() = %v, want %v", tt.sev, got, tt.want)
		}
	}
}

func TestParseSeveritySpellings(t *testing.T) {
	tests := []struct {
		in   string
		want Severity
	}{
		{"grave", SeverityCritical},
		{"critical", SeverityCritical},
		{"serious", SeveritySerious},
		{"important", SeveritySerious},
		{"non-critical", SeverityNormal},
		{"wishlist", SeverityWishlist},
		{"trivial", SeverityMinor},
	}
	for _, tt := range tests {
		got, err := ParseSeverity(tt.in)
		if err != nil {
			t.Errorf("ParseSeverity(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseSeverity(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if _, err := ParseSeverity("spicy"); err == nil {
		t.Error("ParseSeverity(spicy) should fail")
	}
}

func TestSymptomHighImpact(t *testing.T) {
	high := []Symptom{SymptomCrash, SymptomError, SymptomHang, SymptomSecurity}
	for _, s := range high {
		if !s.HighImpact() {
			t.Errorf("%v should be high impact", s)
		}
	}
	if SymptomUnknown.HighImpact() {
		t.Error("SymptomUnknown should not be high impact")
	}
}

func TestSymptomRoundTrip(t *testing.T) {
	for _, s := range []Symptom{SymptomCrash, SymptomError, SymptomHang, SymptomSecurity} {
		got, err := ParseSymptom(s.String())
		if err != nil {
			t.Fatalf("ParseSymptom(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v != %v", got, s)
		}
	}
}

func TestParseApplication(t *testing.T) {
	tests := []struct {
		in   string
		want Application
	}{
		{"apache", AppApache},
		{"httpd", AppApache},
		{"GNOME", AppGnome},
		{"mysqld", AppMySQL},
	}
	for _, tt := range tests {
		got, err := ParseApplication(tt.in)
		if err != nil {
			t.Errorf("ParseApplication(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseApplication(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if _, err := ParseApplication("notepad"); err == nil {
		t.Error("ParseApplication(notepad) should fail")
	}
}

// Property: every trigger kind maps to a class, and every non-unknown trigger
// maps to a valid class. Exercised with testing/quick over the valid range.
func TestTriggerClassTotalProperty(t *testing.T) {
	f := func(raw uint8) bool {
		k := TriggerKind(int(raw) % (int(TriggerEntropy) + 1))
		c := k.DefaultClass()
		if k == TriggerUnknownKind {
			return c == ClassUnknown
		}
		return c.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/ParseClass round trips for all valid classes regardless of
// surrounding whitespace.
func TestParseClassWhitespaceProperty(t *testing.T) {
	f := func(pre, post uint8) bool {
		pad := func(n uint8) string {
			s := ""
			for i := uint8(0); i < n%4; i++ {
				s += " "
			}
			return s
		}
		for _, c := range Classes() {
			got, err := ParseClass(pad(pre) + c.String() + pad(post))
			if err != nil || got != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllStringersCovered(t *testing.T) {
	// Severity strings.
	for _, s := range []Severity{SeverityUnknown, SeverityWishlist, SeverityMinor,
		SeverityNormal, SeveritySerious, SeverityCritical} {
		if s.String() == "" {
			t.Errorf("empty severity string for %d", int(s))
		}
	}
	if Severity(42).String() != "Severity(42)" {
		t.Error("unknown severity string")
	}
	// Symptom strings.
	for _, s := range []Symptom{SymptomUnknown, SymptomCrash, SymptomError, SymptomHang, SymptomSecurity} {
		if s.String() == "" {
			t.Errorf("empty symptom string for %d", int(s))
		}
	}
	if Symptom(42).String() != "Symptom(42)" {
		t.Error("unknown symptom string")
	}
	// Trigger strings.
	if TriggerKind(42).String() != "TriggerKind(42)" {
		t.Error("unknown trigger string")
	}
	// Application strings.
	if Application(42).String() != "Application(42)" {
		t.Error("unknown application string")
	}
	if _, err := ParseTrigger("nope"); err == nil {
		t.Error("ParseTrigger(nope) should fail")
	}
	if _, err := ParseSymptom("nope"); err == nil {
		t.Error("ParseSymptom(nope) should fail")
	}
}

func TestApplicationsList(t *testing.T) {
	apps := Applications()
	if len(apps) != 3 || apps[0] != AppApache || apps[1] != AppGnome || apps[2] != AppMySQL {
		t.Errorf("Applications = %v", apps)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	type doc struct {
		Class    FaultClass  `json:"class"`
		Trigger  TriggerKind `json:"trigger"`
		Symptom  Symptom     `json:"symptom"`
		Severity Severity    `json:"severity"`
		App      Application `json:"app"`
	}
	in := doc{
		Class:    ClassEnvDependentTransient,
		Trigger:  TriggerRace,
		Symptom:  SymptomCrash,
		Severity: SeverityCritical,
		App:      AppMySQL,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"environment-dependent-transient"`) {
		t.Errorf("class not marshaled by name: %s", data)
	}
	if !strings.Contains(string(data), `"race"`) || !strings.Contains(string(data), `"mysql"`) {
		t.Errorf("enums not marshaled by name: %s", data)
	}
	var out doc
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	// Bad names fail cleanly.
	var c FaultClass
	if err := json.Unmarshal([]byte(`"sideways"`), &c); err == nil {
		t.Error("bad class name should fail")
	}
	if err := json.Unmarshal([]byte(`17`), &c); err == nil {
		t.Error("numeric class should fail")
	}
}
