// Package scopeapp is a fixture: one miniature componentized application
// exercising every prediction path of the recoveryscope analysis — direct
// and interprocedural class evidence, path/function taint in all three
// state domains, and each recovery rung from retry to restart.
package scopeapp

import (
	"sim/component"
	"sim/faultinject"
)

const (
	compCore   = "app/core"
	compWorker = "app/worker"
	compCache  = "app/cache"
)

const (
	mechPureBug    = "app/pure-bug"
	mechSlowLeak   = "app/slow-leak"
	mechFDLeak     = "app/fd-leak"
	mechDiskFull   = "app/disk-full"
	mechDNSFlap    = "app/dns-flap"
	mechRaceCrash  = "app/race-crash"
	mechCrossTaint = "app/cross-taint"
	mechLedgerSkew = "app/ledger-skew"
	mechWildWrite  = "app/wild-write"
	mechOrphan     = "app/orphan"
)

// componentFor attributes each mechanism to its component; mechOrphan is
// deliberately missing (the scopegap case).
var componentFor = map[string]string{
	mechPureBug:    compCore,
	mechSlowLeak:   compCore,
	mechFDLeak:     compWorker,
	mechDiskFull:   compCore,
	mechDNSFlap:    compWorker,
	mechRaceCrash:  compCache,
	mechCrossTaint: compWorker,
	mechLedgerSkew: compCore,
	mechWildWrite:  compCore,
}

type fdsT struct{}

func (fdsT) Open(owner string) (int, error) { return 0, nil }

type diskT struct{}

func (diskT) Append(name string, n int) error { return nil }

type dnsT struct{}

func (dnsT) Lookup(host string) (string, error) { return "", nil }

type schedT struct{}

func (schedT) RaceFires(key string) bool { return false }

type simEnv struct{}

func (simEnv) FDs() fdsT     { return fdsT{} }
func (simEnv) Disk() diskT   { return diskT{} }
func (simEnv) DNS() dnsT     { return dnsT{} }
func (simEnv) Sched() schedT { return schedT{} }

type kv struct{}

func (kv) Incr(bucket, key string) int { return 0 }

type server struct {
	env     simEnv
	store   kv
	running bool

	leakBufs   int
	fds        []int
	jobs       int
	cacheDirty int
	genCount   int
}

// Componentize declares the three-part tree: core <- worker <- cache.
func (s *server) Componentize(add func(component.Spec)) {
	add(component.Spec{Component: component.NewPart(compCore, component.Hooks{
		OnKill: func() { s.leakBufs = 0 },
	})})
	add(component.Spec{Deps: []string{compCore}, Component: component.NewPart(compWorker, component.Hooks{
		OnKill: func() { s.closeFDs(); s.jobs = 0 },
	})})
	add(component.Spec{Deps: []string{compWorker}, Component: component.NewPart(compCache, component.Hooks{
		OnKill: func() { s.cacheDirty = 0 },
	})})
}

// closeFDs releases the worker's descriptors; the worker OnKill hook
// delegates here, so fds is kill-released through the call graph.
func (s *server) closeFDs() {
	s.fds = nil
}

// pureBug: EI, error symptom, no path taint -> retry.
func (s *server) pureBug(n int) error {
	if n > 100 {
		return faultinject.Fail(mechPureBug, "error", "bounds")
	}
	return nil
}

// slowLeak: EI crash with path taint on leakBufs (kill-released by core)
// -> microreboot app/core.
func (s *server) slowLeak() error {
	s.leakBufs++
	if s.leakBufs > 10 {
		s.running = false
		return faultinject.Fail(mechSlowLeak, "crash", "leak tipped over")
	}
	return nil
}

// openScratch reaches the environment; callers that guard on it inherit its
// FD-exhaustion trigger interprocedurally.
func (s *server) openScratch() (int, error) {
	fd, err := s.env.FDs().Open("scopeapp")
	if err != nil {
		return 0, err
	}
	s.fds = append(s.fds, fd)
	return fd, nil
}

// fdLeak: no env call visible here — the dependence flows through
// openScratch. EDN with fds kill-releasable -> microreboot app/worker.
func (s *server) fdLeak() error {
	fd, err := s.openScratch()
	if err != nil || fd < 0 {
		return faultinject.Fail(mechFDLeak, "crash", "out of descriptors")
	}
	return nil
}

// diskFull: direct EDN evidence, nothing releasable -> restart.
func (s *server) diskFull(n int) error {
	if err := s.env.Disk().Append("wal", n); err != nil {
		return faultinject.Fail(mechDiskFull, "error", "disk full")
	}
	return nil
}

// dnsFlap: direct EDT evidence, still serving -> retry.
func (s *server) dnsFlap(host string) error {
	addr, err := s.env.DNS().Lookup(host)
	if err != nil || addr == "" {
		return faultinject.Fail(mechDNSFlap, "error", "lookup failed")
	}
	return nil
}

// raceCrash: EDT but crash-like -> contain in the owning component
// (microreboot app/cache).
func (s *server) raceCrash() error {
	if s.env.Sched().RaceFires(mechRaceCrash) {
		s.running = false
		return faultinject.Fail(mechRaceCrash, "crash", "lost the race")
	}
	return nil
}

// crossTaint: the fault path dirties worker state and cache state; the
// blast radius {worker, cache} is exactly worker's subtree
// -> subtree-reboot app/worker.
func (s *server) crossTaint() error {
	s.jobs++
	s.cacheDirty++
	if s.jobs > 50 {
		return faultinject.Fail(mechCrossTaint, "crash", "cross-component slip")
	}
	return nil
}

// ledgerSkew: the fault path mutates an externalized-store bucket — outside
// every component's failure domain -> restart.
func (s *server) ledgerSkew(key string) error {
	n := s.store.Incr("ledger/ops", key)
	if n < 0 {
		return faultinject.Fail(mechLedgerSkew, "crash", "ledger skewed")
	}
	return nil
}

// wildWrite: path taint on genCount, which no OnKill hook releases — a
// reboot cannot clear it -> restore.
func (s *server) wildWrite() error {
	s.genCount++
	if s.genCount > 7 {
		return faultinject.Fail(mechWildWrite, "crash", "untracked state")
	}
	return nil
}

// orphan: a crash with no component attribution (mechOrphan is absent from
// componentFor) -> restore, plus a gating scopegap finding.
func (s *server) orphan() error {
	if s.jobs < 0 {
		return faultinject.Fail(mechOrphan, "crash", "unattributed")
	}
	return nil
}

// jobsSnapshot exists so the mechanism constants and fields are all used.
func (s *server) jobsSnapshot() (int, bool) { return s.jobs, s.running }
