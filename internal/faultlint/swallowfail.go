package faultlint

import (
	"go/ast"
	"strings"

	"faultstudy/internal/taxonomy"
)

// swallowfail flags a caught *faultinject.FailureError that is dropped
// without reclassification. A FailureError carries the mechanism and symptom
// that the recovery harness scores; a handler that detects one and then
// returns success (or blanks the error) erases the fault from every
// downstream ledger — the recovery matrix, the supervisor report, the
// class tallies. The fault itself persists, unobserved: a latent EDN
// pattern. Handlers must either propagate the failure, wrap it, or
// explicitly reclassify it.
//
// Recognized catch shapes:
//
//	if fe, ok := faultinject.AsFailure(err); ok { ... }
//	var fe *faultinject.FailureError
//	if errors.As(err, &fe) { ... }
//
// The catch is a swallow when its body terminates by dropping the error:
// an empty body, a return whose results are all zero literals (nil, 0, "",
// false), or an assignment of nil to the error — with no path that returns
// or rethrows the failure.
var swallowfailAnalyzer = &Analyzer{
	Name:  "swallowfail",
	Doc:   "caught faultinject.FailureError dropped without reclassification",
	Class: taxonomy.ClassEnvDependentNonTransient,
	Run:   runSwallowfail,
}

// failureCatch recognizes the two catch shapes and returns the identifiers
// bound to the failure and to the original error.
func (p *Package) failureCatch(f *ast.File, ifStmt *ast.IfStmt) (failIdent, errIdent string, ok bool) {
	// Shape 1: if fe, ok := faultinject.AsFailure(err); ok { ... }
	if init, isAssign := ifStmt.Init.(*ast.AssignStmt); isAssign && len(init.Rhs) == 1 {
		if call, isCall := init.Rhs[0].(*ast.CallExpr); isCall {
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				if path, name, resolved := p.pkgQualified(f, sel); resolved &&
					isFaultinjectPath(path) && name == "AsFailure" {
					fe := ""
					if len(init.Lhs) > 0 {
						if id, isIdent := init.Lhs[0].(*ast.Ident); isIdent {
							fe = id.Name
						}
					}
					errName := ""
					if len(call.Args) == 1 {
						if id, isIdent := call.Args[0].(*ast.Ident); isIdent {
							errName = id.Name
						}
					}
					return fe, errName, true
				}
			}
		}
	}
	// Shape 2: if errors.As(err, &fe) { ... } with fe declared as a
	// *FailureError somewhere in the file.
	if call, isCall := ifStmt.Cond.(*ast.CallExpr); isCall && len(call.Args) == 2 {
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if path, name, resolved := p.pkgQualified(f, sel); resolved && path == "errors" && name == "As" {
				if unary, isUnary := call.Args[1].(*ast.UnaryExpr); isUnary {
					if target, isIdent := unary.X.(*ast.Ident); isIdent && fileDeclaresFailureVar(f, target.Name) {
						errName := ""
						if id, isIdent := call.Args[0].(*ast.Ident); isIdent {
							errName = id.Name
						}
						return target.Name, errName, true
					}
				}
			}
		}
	}
	return "", "", false
}

// fileDeclaresFailureVar reports whether the file declares a variable with
// the given name whose type mentions FailureError.
func fileDeclaresFailureVar(f *ast.File, name string) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			return !found
		}
		typeHasFailure := false
		ast.Inspect(vs.Type, func(m ast.Node) bool {
			if id, isIdent := m.(*ast.Ident); isIdent && strings.Contains(id.Name, "FailureError") {
				typeHasFailure = true
			}
			return !typeHasFailure
		})
		if !typeHasFailure {
			return !found
		}
		for _, vn := range vs.Names {
			if vn.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// isZeroExpr reports literal zero values: nil, 0, "", false.
func isZeroExpr(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == "nil" || e.Name == "false"
	case *ast.BasicLit:
		return e.Value == "0" || e.Value == `""` || e.Value == "``" || e.Value == "0.0"
	}
	return false
}

// bodyDropsFailure decides whether the catch body swallows: it must contain
// a dropping terminator and no statement that propagates the failure.
func bodyDropsFailure(body *ast.BlockStmt, failIdent, errIdent string) bool {
	if body == nil {
		return false
	}
	if len(body.List) == 0 {
		return true
	}
	drops, propagates := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			allZero := true
			for _, res := range s.Results {
				if isZeroExpr(res) {
					continue
				}
				allZero = false
				if identNamed(res, failIdent) || identNamed(res, errIdent) {
					propagates = true
				}
				// Returning any constructed error value counts as
				// reclassification.
				if _, isCall := res.(*ast.CallExpr); isCall {
					propagates = true
				}
			}
			if allZero {
				drops = true
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if errIdent != "" && identNamed(lhs, errIdent) && i < len(s.Rhs) && isNilIdent(s.Rhs[i]) {
					drops = true
				}
			}
		}
		return true
	})
	return drops && !propagates
}

func runSwallowfail(p *Pass) {
	for _, f := range p.Pkg.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			failIdent, errIdent, isCatch := p.Pkg.failureCatch(file, ifStmt)
			if !isCatch || !bodyDropsFailure(ifStmt.Body, failIdent, errIdent) {
				return true
			}
			p.Reportf(ifStmt.Pos(),
				"FailureError caught and dropped without reclassification; the fault's mechanism and class are erased from every downstream ledger")
			return true
		})
	}
}
