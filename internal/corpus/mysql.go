package corpus

import (
	"sync"

	"faultstudy/internal/taxonomy"
)

var (
	mysqlOnce   sync.Once
	mysqlFaults []*Fault
)

// MySQL returns the 44 classified MySQL faults (Table 3: 38
// environment-independent, 4 nontransient, 2 transient).
func MySQL() []*Fault {
	mysqlOnce.Do(func() {
		mysqlFaults = buildMySQL()
		if err := validateSet(mysqlFaults); err != nil {
			panic(err)
		}
	})
	return mysqlFaults
}

func buildMySQL() []*Fault {
	named := mysqlNamed()
	ei := filterClass(named, taxonomy.ClassEnvIndependent)
	ei = append(ei, expandEI(
		taxonomy.AppMySQL, "mysql",
		mysqlEITemplates,
		[]string{"mysqld", "optimizer", "isam", "parser", "replication"},
		[]string{
			"a SELECT with 33 joined tables",
			"a GROUP BY on a column that is also aliased in the select list",
			"an ALTER TABLE that drops the only index",
			"a LIKE pattern ending in an escape character",
			"an INSERT of a negative value into an AUTO_INCREMENT column",
			"a DELETE with a LIMIT larger than the row count",
			"a UNION of two empty tables",
			"a WHERE clause comparing a DATE to an empty string",
			"a temporary table reused inside the same query",
			"a HAVING clause without GROUP BY",
		},
		38-len(ei),
	)...)
	edn := filterClass(named, taxonomy.ClassEnvDependentNonTransient)
	edt := filterClass(named, taxonomy.ClassEnvDependentTransient)

	buckets := []releaseBucket{
		{release: "3.21.33", date: date(1998, 7, 8), ei: 6, edn: 1, edt: 0},
		{release: "3.22.20", date: date(1999, 3, 2), ei: 8, edn: 1, edt: 0},
		{release: "3.22.25", date: date(1999, 6, 10), ei: 9, edn: 1, edt: 1},
		{release: "3.22.29", date: date(1999, 9, 4), ei: 12, edn: 1, edt: 1},
		// The last release is very new, so very few users run it (paper §5.3).
		{release: "3.23.2", date: date(1999, 11, 20), ei: 3, edn: 0, edt: 0},
	}
	assignSchedule(buckets, ei, edn, edt)

	out := make([]*Fault, 0, 44)
	out = append(out, ei...)
	out = append(out, edn...)
	out = append(out, edt...)
	return out
}

// mysqlNamed transcribes the faults the paper describes individually in §5.3.
func mysqlNamed() []*Fault {
	M := taxonomy.AppMySQL
	return []*Fault{
		// --- representative environment-independent faults ---
		{
			ID: "mysql/ei-index-update", App: M,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "isam",
			Synopsis:  "updating an index to a value found later in the scan crashes mysqld",
			Description: "Updating an index to a value that will be found later while " +
				"scanning the index tree creates duplicate values in the index and crashes " +
				"MySQL.",
			HowToRepeat: "UPDATE t SET k = k + 1 on an indexed column whose next value exists. " +
				"Crashes every time.",
			Fix:      "First scan for all matching rows, then update the found rows.",
			Severity: taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/index-update-scan",
		},
		{
			ID: "mysql/ei-orderby-empty", App: M,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "optimizer",
			Synopsis:  "SELECT matching zero records with ORDER BY crashes the server",
			Description: "A query which selects zero records and has an \"order by\" clause " +
				"causes the server to crash, due to missing initialization statements in the " +
				"sort setup.",
			HowToRepeat: "SELECT * FROM t WHERE 1=0 ORDER BY c. Crashes every time.",
			Fix:         "Add the missing initialization before sorting.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/orderby-empty",
		},
		{
			ID: "mysql/ei-count-empty", App: M,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "mysqld",
			Synopsis:  "COUNT on an empty table crashes mysqld",
			Description: "The use of a \"count\" clause on an empty table causes MySQL to " +
				"crash, due to a missing check for empty tables.",
			HowToRepeat: "CREATE TABLE t (c INT); SELECT COUNT(c) FROM t; crashes every time.",
			Fix:         "Check for the empty-table case before aggregating.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/count-empty",
		},
		{
			ID: "mysql/ei-optimize", App: M,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "isam",
			Synopsis:  "OPTIMIZE TABLE crashes the server",
			Description: "An \"OPTIMIZE TABLE\" query crashes the server, caused by a missing " +
				"initialization statement in the table-rebuild path.",
			HowToRepeat: "OPTIMIZE TABLE t on any table. Crashes every time.",
			Fix:         "Initialize the rebuild state before compacting.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/optimize-crash",
		},
		{
			ID: "mysql/ei-flush-lock", App: M,
			Class: taxonomy.ClassEnvIndependent, Trigger: taxonomy.TriggerWorkloadOnly,
			Component: "mysqld",
			Synopsis:  "FLUSH TABLES after LOCK TABLES crashes the server",
			Description: "A \"FLUSH TABLES\" command issued after a \"LOCK TABLES\" command " +
				"crashes the server.",
			HowToRepeat: "LOCK TABLES t READ; FLUSH TABLES; crashes every time.",
			Fix:         "Release the table locks before flushing the table cache.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/flush-after-lock",
		},

		// --- environment-dependent-nontransient faults (4) ---
		{
			ID: "mysql/edn-fd-competition", App: M,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerFDExhaustion,
			Component: "mysqld",
			Synopsis:  "descriptor shortage from competition with a co-hosted web server",
			Description: "A shortage of file descriptors due to competition between MySQL and " +
				"a web server on the same machine makes table opens fail. The competing " +
				"consumer persists across recovery of the database.",
			HowToRepeat: "Run the database beside a busy web server with a low descriptor limit.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "sqldb/fd-competition",
		},
		{
			ID: "mysql/edn-reverse-dns", App: M,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerHostConfig,
			Component: "mysqld",
			Synopsis:  "connection from a host without reverse DNS crashes the server",
			Description: "The server crashes when it receives a connection request from a " +
				"remote machine if reverse DNS is not configured for the remote host. The " +
				"missing PTR record persists until an administrator adds it.",
			HowToRepeat: "Connect from a machine with no PTR record. Crashes on each attempt.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/no-reverse-dns",
		},
		{
			ID: "mysql/edn-file-limit", App: M,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerFileSizeLimit,
			Component: "isam",
			Synopsis:  "database file exceeding the maximum allowed file size fails writes",
			Description: "The size of a database file is greater than the maximum allowed " +
				"file size; inserts fail and the condition persists across recovery.",
			HowToRepeat: "Grow a table datafile to the file system's size limit, then INSERT.",
			Severity:    taxonomy.SeveritySerious, Symptom: taxonomy.SymptomError,
			Mechanism: "sqldb/db-file-limit",
		},
		{
			ID: "mysql/edn-fs-full", App: M,
			Class: taxonomy.ClassEnvDependentNonTransient, Trigger: taxonomy.TriggerDiskFull,
			Component: "mysqld",
			Synopsis:  "full file system prevents all operations on the database",
			Description: "A full file system prevents all operations on the database; " +
				"the space shortage persists until an operator frees space.",
			HowToRepeat: "Fill the data partition, then run any write query.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomError,
			Mechanism: "sqldb/fs-full",
		},

		// --- environment-dependent-transient faults (2) ---
		{
			ID: "mysql/edt-signal-race", App: M,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerRace,
			Component: "mysqld",
			Synopsis:  "race between the masking of a signal and its arrival",
			Description: "A race condition between the masking of a signal and its arrival " +
				"kills the server. Race conditions depend on the exact timing of thread " +
				"scheduling events, which are likely to change during retry.",
			HowToRepeat: "Heavy connection churn; fails rarely and not reproducibly.",
			Severity:    taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/signal-mask-race",
		},
		{
			ID: "mysql/edt-login-race", App: M,
			Class: taxonomy.ClassEnvDependentTransient, Trigger: taxonomy.TriggerRace,
			Component: "mysqld",
			Synopsis:  "race between a new user login and commands issued by the administrator",
			Description: "A race condition between a new user login and administrative " +
				"commands (GRANT/FLUSH PRIVILEGES) crashes the server when they interleave " +
				"the wrong way.",
			HowToRepeat: "Log users in while the administrator reloads privileges; timing " +
				"dependent.",
			Severity: taxonomy.SeverityCritical, Symptom: taxonomy.SymptomCrash,
			Mechanism: "sqldb/login-admin-race",
		},
	}
}

// mysqlEITemplates are the defect-type templates for the synthesized
// environment-independent MySQL faults.
var mysqlEITemplates = []eiTemplate{
	{
		synopsis:    "{component} crashes on {input}",
		description: "{input} drives {component} down a path with a missing null check; the server dies with a segmentation fault.",
		howto:       "Issue {input}. Crashes every time, any platform.",
		fix:         "Check the handle before dereferencing.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "sqldb/null-deref",
	},
	{
		synopsis:    "{component} returns wrong results for {input}",
		description: "{input} makes {component} reuse a sort buffer without resetting its length; rows from the previous query leak into the result.",
		howto:       "Run any query, then {input}; compare row counts.",
		fix:         "Reset the buffer between queries.",
		symptom:     taxonomy.SymptomError,
		mechanism:   "sqldb/stale-buffer",
		severity:    taxonomy.SeveritySerious,
	},
	{
		synopsis:    "{component} hits a missing initialization on {input}",
		description: "A descriptor in {component} is used before it is initialized when the query is {input}; the server aborts with an assertion.",
		howto:       "Issue {input} as the first statement of a fresh connection.",
		fix:         "Add the missing initialization statement.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "sqldb/bad-init",
	},
	{
		synopsis:    "{component} loops forever executing {input}",
		description: "{input} makes the executor in {component} re-enqueue the same work item; the thread spins and the connection hangs.",
		howto:       "Issue {input}; the connection never returns.",
		fix:         "Advance the cursor on the empty-result path.",
		symptom:     taxonomy.SymptomHang,
		mechanism:   "sqldb/exec-loop",
	},
	{
		synopsis:    "{component} overflows a length field on {input}",
		description: "{input} produces a row longer than the 16-bit length field in {component}; adjacent record headers are overwritten and the table is corrupted.",
		howto:       "Issue {input} against a wide table.",
		fix:         "Widen the length field and validate row size.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "sqldb/bounds",
	},
	{
		synopsis:    "{component} mis-handles the empty result of {input}",
		description: "The empty result produced by {input} takes an untested branch in {component} missing a bounds check; the server crashes.",
		howto:       "Issue {input} on an empty table.",
		fix:         "Add the missing empty-result check.",
		symptom:     taxonomy.SymptomCrash,
		mechanism:   "sqldb/missing-check",
	},
}
