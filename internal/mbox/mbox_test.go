package mbox

import (
	"strings"
	"testing"
	"time"
)

const sampleMbox = `From alice@example.com Fri Oct  1 10:00:00 1999
Message-Id: <m1@list.example.com>
From: alice@example.com (Alice)
Subject: mysqld died during OPTIMIZE TABLE
Date: Fri, 01 Oct 1999 10:00:00 +0000

Running OPTIMIZE TABLE crashes the server every time.
>From my reading of the code it's a missing initialization.

From bob@example.com Fri Oct  1 11:00:00 1999
Message-Id: <m2@list.example.com>
In-Reply-To: <m1@list.example.com>
From: bob@example.com (Bob)
Subject: Re: mysqld died during OPTIMIZE TABLE
Date: Fri, 01 Oct 1999 11:00:00 +0000

Confirmed, same here.

From carol@example.com Sat Oct  2 09:00:00 1999
Message-Id: <m3@list.example.com>
From: carol@example.com (Carol)
Subject: slow queries on big joins
Date: Sat, 02 Oct 1999 09:00:00 +0000

Big joins take minutes, everything else is fine.

From dave@example.com Sun Oct  3 09:00:00 1999
Message-Id: <m4@list.example.com>
From: dave@example.com (Dave)
Subject: Re: mysqld died during OPTIMIZE TABLE
Date: Sun, 03 Oct 1999 09:00:00 +0000

Me too, segmentation fault in the index code.
`

func TestParseBasic(t *testing.T) {
	msgs, err := Parse(strings.NewReader(sampleMbox))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("parsed %d messages, want 4", len(msgs))
	}
	m := msgs[0]
	if m.MessageID != "m1@list.example.com" {
		t.Errorf("MessageID = %q", m.MessageID)
	}
	if m.Subject != "mysqld died during OPTIMIZE TABLE" {
		t.Errorf("Subject = %q", m.Subject)
	}
	if !strings.Contains(m.Body, "From my reading") {
		t.Errorf("mbox >From unescaping failed: %q", m.Body)
	}
	want := time.Date(1999, 10, 1, 10, 0, 0, 0, time.UTC)
	if !m.Date.Equal(want) {
		t.Errorf("Date = %v, want %v", m.Date, want)
	}
	if msgs[1].InReplyTo != "m1@list.example.com" {
		t.Errorf("InReplyTo = %q", msgs[1].InReplyTo)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("garbage before any From_ line\n")); err == nil {
		t.Error("content before first From_ line should fail")
	}
	noID := "From x Fri Oct  1 10:00:00 1999\nSubject: hi\n\nbody\n"
	if _, err := Parse(strings.NewReader(noID)); err == nil {
		t.Error("message without Message-Id should fail")
	}
}

func TestParseEmpty(t *testing.T) {
	msgs, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Errorf("empty mbox produced %d messages", len(msgs))
	}
}

func TestThreading(t *testing.T) {
	msgs, err := Parse(strings.NewReader(sampleMbox))
	if err != nil {
		t.Fatal(err)
	}
	threads := ThreadMessages(msgs)
	if len(threads) != 2 {
		t.Fatalf("got %d threads, want 2", len(threads))
	}
	var optimize *Thread
	for _, th := range threads {
		if strings.Contains(th.Subject, "optimize") {
			optimize = th
		}
	}
	if optimize == nil {
		t.Fatal("missing OPTIMIZE TABLE thread")
	}
	// m2 threads by In-Reply-To; m4 has no In-Reply-To but a Re: subject, so
	// it joins by normalized subject.
	if len(optimize.Messages) != 3 {
		t.Errorf("OPTIMIZE thread has %d messages, want 3", len(optimize.Messages))
	}
	if optimize.RootID != "m1@list.example.com" {
		t.Errorf("thread root = %q", optimize.RootID)
	}
	// Messages sorted by date.
	for i := 1; i < len(optimize.Messages); i++ {
		if optimize.Messages[i].Date.Before(optimize.Messages[i-1].Date) {
			t.Error("thread messages not date-ordered")
		}
	}
}

func TestThreadingByReferences(t *testing.T) {
	msgs := []*Message{
		{MessageID: "a", Subject: "root", Date: time.Unix(1, 0)},
		{MessageID: "b", Subject: "unrelated subject", References: []string{"x", "a"}, Date: time.Unix(2, 0)},
	}
	threads := ThreadMessages(msgs)
	if len(threads) != 1 {
		t.Fatalf("got %d threads, want 1 (References should thread)", len(threads))
	}
}

func TestReplyWithoutParentStartsOwnThreadWhenSubjectUnknown(t *testing.T) {
	msgs := []*Message{
		{MessageID: "only", Subject: "Re: lost thread", InReplyTo: "missing", Date: time.Unix(1, 0)},
	}
	threads := ThreadMessages(msgs)
	if len(threads) != 1 || threads[0].RootID != "only" {
		t.Errorf("orphan reply should start its own thread: %+v", threads)
	}
}

func TestNormalizeSubject(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Re: Re: crash", "crash"},
		{"[mysql] server died", "server died"},
		{"Fwd: [mysql] Re:  many   spaces ", "many spaces"},
		{"plain", "plain"},
	}
	for _, tt := range tests {
		if got := NormalizeSubject(tt.in); got != tt.want {
			t.Errorf("NormalizeSubject(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestKeywordFiltering(t *testing.T) {
	msgs, err := Parse(strings.NewReader(sampleMbox))
	if err != nil {
		t.Fatal(err)
	}
	threads := ThreadMessages(msgs)
	serious := FilterThreads(threads, DefaultKeywords())
	if len(serious) != 1 {
		t.Fatalf("got %d serious threads, want 1", len(serious))
	}
	if !strings.Contains(serious[0].Subject, "optimize") {
		t.Errorf("wrong thread selected: %q", serious[0].Subject)
	}
}

func TestMatchesKeywordsCaseInsensitive(t *testing.T) {
	m := &Message{Subject: "Server DIED", Body: ""}
	if !m.MatchesKeywords(DefaultKeywords()) {
		t.Error("case-insensitive match failed")
	}
	m2 := &Message{Subject: "slow query", Body: "nothing serious"}
	if m2.MatchesKeywords(DefaultKeywords()) {
		t.Error("false positive keyword match")
	}
}

func TestParseCRLF(t *testing.T) {
	crlf := strings.ReplaceAll(sampleMbox, "\n", "\r\n")
	msgs, err := Parse(strings.NewReader(crlf))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Errorf("CRLF mbox parsed %d messages, want 4", len(msgs))
	}
}
