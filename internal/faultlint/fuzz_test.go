package faultlint

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzParseIgnore drives the //faultlint:ignore directive parser with
// arbitrary comment text. The invariants: parseIgnore never panics, is
// deterministic, recognizes a directive exactly when the trimmed comment
// text starts with the directive word, never yields an empty or
// whitespace-bearing rule name, trims the reason, and keeps covers()
// consistent with the parsed rule set (a bare or wildcard directive covers
// everything; a rule list covers exactly its members).
func FuzzParseIgnore(f *testing.F) {
	f.Add("//faultlint:ignore")
	f.Add("//faultlint:ignore envcheck best-effort rotate")
	f.Add("//faultlint:ignore envcheck,wallclock two rules, one reason")
	f.Add("//faultlint:ignore all legacy file")
	f.Add("//faultlint:ignore * wildcard")
	f.Add("//faultlint:ignore scopegap legacy mechanism, retired next release")
	f.Add("//faultlint:ignore ,,,")
	f.Add("//   faultlint:ignore envcheck padded")
	f.Add("// faultlint:ignorance is bliss")
	f.Add("//faultlint:ignoreenvcheck")
	f.Add("// just a comment")
	f.Add("/* block comment */")
	f.Add("//")
	f.Add("")
	f.Add("//faultlint:ignore\tenvcheck\ttabbed reason")
	f.Add("//faultlint:ignore env\x00check")
	f.Fuzz(func(t *testing.T, text string) {
		sup, ok := parseIgnore(text)
		sup2, ok2 := parseIgnore(text)
		if ok != ok2 || sup.reason != sup2.reason || len(sup.rules) != len(sup2.rules) {
			t.Fatalf("parseIgnore not deterministic on %q", text)
		}

		trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
		if ok != strings.HasPrefix(trimmed, ignoreDirective) {
			t.Fatalf("parseIgnore(%q) ok=%v disagrees with directive prefix", text, ok)
		}
		if !ok {
			return
		}

		if sup.reason != strings.TrimSpace(sup.reason) {
			t.Fatalf("parseIgnore(%q) reason %q not trimmed", text, sup.reason)
		}
		for rule := range sup.rules {
			if rule == "" {
				t.Fatalf("parseIgnore(%q) produced an empty rule", text)
			}
			if strings.ContainsRune(rule, ',') || strings.ContainsFunc(rule, unicode.IsSpace) {
				t.Fatalf("parseIgnore(%q) rule %q contains a separator", text, rule)
			}
			if !sup.covers(rule) {
				t.Fatalf("parseIgnore(%q) does not cover its own rule %q", text, rule)
			}
		}
		if sup.rules == nil {
			// Bare or wildcard directive: covers everything.
			if !sup.covers("envcheck") || !sup.covers("") {
				t.Fatalf("parseIgnore(%q) bare directive fails to cover", text)
			}
		} else if got, want := sup.covers("no-such-rule-ever"), sup.rules["no-such-rule-ever"]; got != want {
			t.Fatalf("parseIgnore(%q) covers mismatch for unlisted rule: %v vs %v", text, got, want)
		}
	})
}
