package supervise

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"faultstudy/internal/stats"
)

// Rung is one level of the supervisor's escalation ladder, ordered from
// cheapest to most drastic. The ladder follows the microreboot argument
// (Candea & Fox): try the recovery that preserves the most state and costs
// the least first, and only discard more when the outcome doesn't change.
type Rung int

const (
	// RungRetry re-executes the operation in place (restoring the pre-op
	// checkpoint first if the failure killed the application) with a fresh,
	// deliberately perturbed interleaving — Wang93's induced environment
	// change. Survives the transient class.
	RungRetry Rung = iota + 1
	// RungMicroreboot stops the application, reclaims every operating-system
	// resource it held, and restores the pre-op checkpoint — a cheap
	// component-level reboot that preserves all logical state.
	RungMicroreboot
	// RungRestore rolls back to the last epoch checkpoint — older state, on
	// the theory that recently accumulated state is what's poisoned.
	RungRestore
	// RungRestart reinitializes the application to pristine state through
	// its application-specific recovery code, discarding everything.
	RungRestart
	// RungDegraded gives up on full service: writes are shed and the
	// application's degraded mode (when it has one) serves reads only.
	RungDegraded
)

// String names the rung.
func (r Rung) String() string {
	switch r {
	case RungRetry:
		return "retry"
	case RungMicroreboot:
		return "microreboot"
	case RungRestore:
		return "restore"
	case RungRestart:
		return "restart"
	case RungDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Rung(%d)", int(r))
	}
}

// Rungs returns the ladder in escalation order.
func Rungs() []Rung {
	return []Rung{RungRetry, RungMicroreboot, RungRestore, RungRestart, RungDegraded}
}

// EventKind discriminates supervisor trace events.
type EventKind int

const (
	// EventFailure is an operation failing.
	EventFailure EventKind = iota + 1
	// EventBackoff is the supervisor sleeping before a recovery attempt.
	EventBackoff
	// EventAction is a ladder rung's recovery action being applied.
	EventAction
	// EventRetryOK is a retried operation succeeding.
	EventRetryOK
	// EventEscalate is the ladder moving up a rung.
	EventEscalate
	// EventBreakerOpen is a mechanism's circuit breaker opening.
	EventBreakerOpen
	// EventFastFail is a failure hitting an already-open breaker: no retries
	// are spent.
	EventFastFail
	// EventWatchdog is the watchdog declaring an operation hung.
	EventWatchdog
	// EventDegraded is the supervisor entering degraded mode.
	EventDegraded
	// EventDegradedExit is the supervisor reverting degraded mode because it
	// did not change the outcome.
	EventDegradedExit
	// EventShed is a write operation shed in degraded mode.
	EventShed
	// EventGiveUp is an operation abandoned.
	EventGiveUp
	// EventCheckpoint is an application state snapshot being taken: the
	// initial checkpoint at Run start and each epoch refresh thereafter.
	EventCheckpoint
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventFailure:
		return "failure"
	case EventBackoff:
		return "backoff"
	case EventAction:
		return "action"
	case EventRetryOK:
		return "retry-ok"
	case EventEscalate:
		return "escalate"
	case EventBreakerOpen:
		return "breaker-open"
	case EventFastFail:
		return "fast-fail"
	case EventWatchdog:
		return "watchdog"
	case EventDegraded:
		return "degraded"
	case EventDegradedExit:
		return "degraded-exit"
	case EventShed:
		return "shed"
	case EventGiveUp:
		return "gave-up"
	case EventCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one step of a supervised run, delivered to Config.Trace.
type Event struct {
	// Kind is the event kind.
	Kind EventKind
	// At is the supervisor clock's reading when the event was emitted — a
	// monotonic virtual timestamp, deterministic for a deterministic clock.
	// Backoff events are stamped at the start of the sleep (At + Delay is the
	// wake time); every other event is stamped when it happens.
	At time.Duration
	// Op is the workload operation involved.
	Op string
	// Mechanism is the fault mechanism involved, when known.
	Mechanism string
	// Rung is the ladder rung in effect.
	Rung Rung
	// Attempt is the episode-wide recovery attempt number.
	Attempt int
	// Delay is the backoff delay (EventBackoff only).
	Delay time.Duration
	// Component names the component a real microreboot targeted (EventAction
	// on the microreboot rung only; empty for process-level actions).
	Component string
	// Err is the error involved, when any.
	Err error
}

// durQuantile computes a duration quantile (rounded to the microsecond, the
// trace schema's resolution) over an episode-duration sample.
func durQuantile(ds []time.Duration, q float64) time.Duration {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	sec := stats.Quantile(xs, q)
	return (time.Duration(sec*1e6) * time.Microsecond).Round(time.Microsecond)
}

// MechStats are the per-mechanism supervisor counters.
type MechStats struct {
	// Failures counts every observed failure of the mechanism, initial and
	// retried.
	Failures int
	// Retries counts recovery attempts spent on the mechanism.
	Retries int
	// Recoveries counts retries that succeeded.
	Recoveries int
	// WatchdogTimeouts counts hangs the watchdog converted into failures.
	WatchdogTimeouts int
	// BreakerOpens counts the mechanism's breaker opening.
	BreakerOpens int
	// FastFails counts failures declined by an open breaker.
	FastFails int
	// Escalations counts ladder escalations charged to the mechanism.
	Escalations int
}

// Report is the outcome of one supervised run: the per-mechanism counters
// plus service-level accounting.
type Report struct {
	// Mechanisms maps each fault mechanism observed to its counters.
	Mechanisms map[string]*MechStats
	// OpsTotal, OpsOK, OpsFailed, OpsShed account for every workload op:
	// served (possibly after recovery), abandoned, or shed in degraded mode.
	OpsTotal, OpsOK, OpsFailed, OpsShed int
	// Recovered counts ops that failed at least once and were still served.
	Recovered int
	// FirstFailureOp is the 1-based index of the first failing op (0 when
	// the run was failure-free) — the ops-to-failure measurement.
	FirstFailureOp int
	// Degraded reports whether the run ended in degraded mode.
	Degraded bool
	// DegradedAtOp is the 1-based op index at which degraded mode was
	// entered (0 when it never was).
	DegradedAtOp int
	// Escalations counts how many times each rung was escalated to.
	Escalations map[Rung]int
	// CrashLoopTrips counts retry-budget exhaustions (crash loops detected).
	CrashLoopTrips int
	// BackoffTotal is the cumulative time slept in backoff.
	BackoffTotal time.Duration
	// EpisodeDurations holds one entry per failure episode: the virtual time
	// from the failing operation's dispatch to the supervisor's final
	// decision about it (served, shed, or abandoned). The end stamp is taken
	// at decision time — after every backoff slept and every watchdog charge
	// incurred on the way to the verdict — so an episode that ends mid-ladder
	// still accounts for its final backoff. The percentile lines in String
	// and the MTTR column in the telemetry summary are computed from these.
	EpisodeDurations []time.Duration
	// RepairDurations is the subset of EpisodeDurations whose operation was
	// eventually served — the sample behind mean-time-to-repair.
	RepairDurations []time.Duration
	// Breakers is the final state of every mechanism breaker.
	Breakers []BreakerStatus
}

func newReport() *Report {
	return &Report{
		Mechanisms:  make(map[string]*MechStats),
		Escalations: make(map[Rung]int),
	}
}

// mech returns (allocating if needed) the counters for a mechanism.
func (r *Report) mech(mechanism string) *MechStats {
	ms, ok := r.Mechanisms[mechanism]
	if !ok {
		ms = &MechStats{}
		r.Mechanisms[mechanism] = ms
	}
	return ms
}

// Healthy reports whether the run completed at full service with no op lost.
func (r *Report) Healthy() bool {
	return r.OpsFailed == 0 && r.OpsShed == 0 && !r.Degraded
}

// Served reports whether every op was either served or deliberately shed —
// the availability criterion: nothing was lost, though service may be
// degraded.
func (r *Report) Served() bool { return r.OpsFailed == 0 }

// String renders the per-mechanism table and the service summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Supervisor report: %d ops — %d ok (%d recovered), %d failed, %d shed\n",
		r.OpsTotal, r.OpsOK, r.Recovered, r.OpsFailed, r.OpsShed)
	if r.FirstFailureOp > 0 {
		fmt.Fprintf(&b, "  first failure at op %d\n", r.FirstFailureOp)
	}
	if r.Degraded {
		fmt.Fprintf(&b, "  degraded mode entered at op %d\n", r.DegradedAtOp)
	}
	if r.CrashLoopTrips > 0 {
		fmt.Fprintf(&b, "  crash loops detected (retry budget exhausted): %d\n", r.CrashLoopTrips)
	}
	if r.BackoffTotal > 0 {
		fmt.Fprintf(&b, "  total backoff: %s\n", r.BackoffTotal)
	}
	if len(r.EpisodeDurations) > 0 {
		fmt.Fprintf(&b, "  episodes: %d, duration p50=%s p90=%s max=%s\n",
			len(r.EpisodeDurations),
			durQuantile(r.EpisodeDurations, 0.50), durQuantile(r.EpisodeDurations, 0.90),
			durQuantile(r.EpisodeDurations, 1))
	}
	if len(r.RepairDurations) > 0 {
		fmt.Fprintf(&b, "  MTTR (served episodes): p50=%s p90=%s max=%s\n",
			durQuantile(r.RepairDurations, 0.50), durQuantile(r.RepairDurations, 0.90),
			durQuantile(r.RepairDurations, 1))
	}
	if len(r.Escalations) > 0 {
		parts := make([]string, 0, len(r.Escalations))
		for _, rung := range Rungs() {
			if n := r.Escalations[rung]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", rung, n))
			}
		}
		fmt.Fprintf(&b, "  escalations: %s\n", strings.Join(parts, " "))
	}
	if len(r.Mechanisms) > 0 {
		tbl := &stats.Table{Header: []string{
			"mechanism", "failures", "retries", "recovered", "watchdog", "breaker", "fast-fail", "escalations",
		}}
		keys := make([]string, 0, len(r.Mechanisms))
		for k := range r.Mechanisms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ms := r.Mechanisms[k]
			tbl.Add(k,
				fmt.Sprint(ms.Failures), fmt.Sprint(ms.Retries), fmt.Sprint(ms.Recoveries),
				fmt.Sprint(ms.WatchdogTimeouts), fmt.Sprint(ms.BreakerOpens),
				fmt.Sprint(ms.FastFails), fmt.Sprint(ms.Escalations))
		}
		b.WriteString(tbl.String())
	}
	open := make([]string, 0, len(r.Breakers))
	for _, bs := range r.Breakers {
		if bs.State != BreakerClosed {
			open = append(open, fmt.Sprintf("%s (%s)", bs.Mechanism, bs.State))
		}
	}
	if len(open) > 0 {
		fmt.Fprintf(&b, "  breakers not closed: %s\n", strings.Join(open, ", "))
	}
	return b.String()
}
