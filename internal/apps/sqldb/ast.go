package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a column value: int64 or string.
type Value struct {
	// IsInt selects between I and S.
	IsInt bool
	// I is the integer value.
	I int64
	// S is the string value.
	S string
}

// IntValue builds an integer value.
func IntValue(i int64) Value { return Value{IsInt: true, I: i} }

// StrValue builds a string value.
func StrValue(s string) Value { return Value{S: s} }

// String renders the value.
func (v Value) String() string {
	if v.IsInt {
		return strconv.FormatInt(v.I, 10)
	}
	return v.S
}

// Compare orders two values: integers numerically, strings lexically, and
// integers before strings when types mix.
func (v Value) Compare(o Value) int {
	switch {
	case v.IsInt && o.IsInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	case !v.IsInt && !o.IsInt:
		return strings.Compare(v.S, o.S)
	case v.IsInt:
		return -1
	default:
		return 1
	}
}

// ColType is a column type.
type ColType int

const (
	// TypeInt is a 64-bit integer column.
	TypeInt ColType = iota + 1
	// TypeText is a string column.
	TypeText
)

// String renders the type name.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeText:
		return "TEXT"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type ColType
}

// Cond is a WHERE condition: Col Op Val.
type Cond struct {
	Col string
	Op  string // = < > <= >= !=
	Val Value
}

// Matches evaluates the condition against a value.
func (c Cond) Matches(v Value) bool {
	cmp := v.Compare(c.Val)
	switch c.Op {
	case "=":
		return cmp == 0
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	case ">=":
		return cmp >= 0
	case "!=", "<>":
		return cmp != 0
	default:
		return false
	}
}

// Statement is a parsed SQL statement; exactly one field group is set.
type Statement struct {
	Kind StmtKind

	// CREATE TABLE / DROP TABLE / OPTIMIZE TABLE
	Table string
	Cols  []ColDef

	// CREATE INDEX
	IndexName string
	IndexCol  string

	// INSERT
	Values []Value

	// SELECT
	SelectCols []string // ["*"] or column names; COUNT sets CountCol
	CountCol   string   // non-empty for SELECT COUNT(col|*)
	Where      *Cond
	OrderBy    string
	OrderDesc  bool
	Limit      int // -1 when absent

	// UPDATE
	SetCol string
	SetVal Value
	// SetDelta is non-zero for "SET col = col + n" self-referencing updates
	// (the shape that exercises the index-update-scan bug).
	SetDelta int64

	// LOCK TABLES
	LockWrite bool
}

// StmtKind discriminates statements.
type StmtKind int

// Statement kinds.
const (
	StmtCreateTable StmtKind = iota + 1
	StmtDropTable
	StmtCreateIndex
	StmtInsert
	StmtSelect
	StmtUpdate
	StmtDelete
	StmtLockTables
	StmtUnlockTables
	StmtFlushTables
	StmtFlushPrivileges
	StmtOptimizeTable
	StmtGrant
)

// Parse parses one SQL statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	c := &cursor{toks: toks}
	switch {
	case c.acceptKeyword("CREATE"):
		if c.acceptKeyword("TABLE") {
			return parseCreateTable(c)
		}
		if c.acceptKeyword("INDEX") {
			return parseCreateIndex(c)
		}
		return nil, fmt.Errorf("sqldb: CREATE must be followed by TABLE or INDEX")
	case c.acceptKeyword("DROP"):
		if err := c.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := c.expectIdent()
		if err != nil {
			return nil, err
		}
		return &Statement{Kind: StmtDropTable, Table: name}, nil
	case c.acceptKeyword("INSERT"):
		return parseInsert(c)
	case c.acceptKeyword("SELECT"):
		return parseSelect(c)
	case c.acceptKeyword("UPDATE"):
		return parseUpdate(c)
	case c.acceptKeyword("DELETE"):
		return parseDelete(c)
	case c.acceptKeyword("LOCK"):
		if err := c.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		name, err := c.expectIdent()
		if err != nil {
			return nil, err
		}
		st := &Statement{Kind: StmtLockTables, Table: name}
		if c.acceptKeyword("WRITE") {
			st.LockWrite = true
		} else {
			_ = c.acceptKeyword("READ")
		}
		return st, nil
	case c.acceptKeyword("UNLOCK"):
		if err := c.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return &Statement{Kind: StmtUnlockTables}, nil
	case c.acceptKeyword("FLUSH"):
		if c.acceptKeyword("TABLES") {
			return &Statement{Kind: StmtFlushTables}, nil
		}
		if c.acceptKeyword("PRIVILEGES") {
			return &Statement{Kind: StmtFlushPrivileges}, nil
		}
		return nil, fmt.Errorf("sqldb: FLUSH must be followed by TABLES or PRIVILEGES")
	case c.acceptKeyword("OPTIMIZE"):
		if err := c.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := c.expectIdent()
		if err != nil {
			return nil, err
		}
		return &Statement{Kind: StmtOptimizeTable, Table: name}, nil
	case c.acceptKeyword("GRANT"):
		// GRANT <anything>: recognized but minimally modeled.
		return &Statement{Kind: StmtGrant}, nil
	default:
		return nil, fmt.Errorf("sqldb: unrecognized statement %q", input)
	}
}

func parseCreateTable(c *cursor) (*Statement, error) {
	name, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectSymbol("("); err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtCreateTable, Table: name}
	for {
		col, err := c.expectIdent()
		if err != nil {
			return nil, err
		}
		typName, err := c.expectIdent()
		if err != nil {
			return nil, err
		}
		var typ ColType
		switch strings.ToUpper(typName) {
		case "INT", "INTEGER", "BIGINT":
			typ = TypeInt
		case "TEXT", "VARCHAR", "CHAR":
			typ = TypeText
			// Tolerate a length suffix: VARCHAR(255).
			if c.acceptSymbol("(") {
				if _, err := c.expectIdent(); err != nil {
					if c.peek().kind != tokNumber {
						return nil, fmt.Errorf("sqldb: bad varchar length")
					}
					c.next()
				}
				if err := c.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("sqldb: unknown column type %q", typName)
		}
		st.Cols = append(st.Cols, ColDef{Name: col, Type: typ})
		if c.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := c.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func parseCreateIndex(c *cursor) (*Statement, error) {
	idx, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &Statement{Kind: StmtCreateIndex, IndexName: idx, Table: table, IndexCol: col}, nil
}

func parseInsert(c *cursor) (*Statement, error) {
	if err := c.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := c.expectSymbol("("); err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtInsert, Table: name}
	for {
		v, err := parseValue(c)
		if err != nil {
			return nil, err
		}
		st.Values = append(st.Values, v)
		if c.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := c.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func parseValue(c *cursor) (Value, error) {
	t := c.next()
	switch t.kind {
	case tokNumber:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("sqldb: bad number %q: %w", t.text, err)
		}
		return IntValue(i), nil
	case tokString:
		return StrValue(t.text), nil
	default:
		return Value{}, fmt.Errorf("sqldb: expected value, got %q", t.text)
	}
}

func parseSelect(c *cursor) (*Statement, error) {
	st := &Statement{Kind: StmtSelect, Limit: -1}
	if c.acceptKeyword("COUNT") {
		if err := c.expectSymbol("("); err != nil {
			return nil, err
		}
		if c.acceptSymbol("*") {
			st.CountCol = "*"
		} else {
			col, err := c.expectIdent()
			if err != nil {
				return nil, err
			}
			st.CountCol = col
		}
		if err := c.expectSymbol(")"); err != nil {
			return nil, err
		}
	} else if c.acceptSymbol("*") {
		st.SelectCols = []string{"*"}
	} else {
		for {
			col, err := c.expectIdent()
			if err != nil {
				return nil, err
			}
			st.SelectCols = append(st.SelectCols, col)
			if !c.acceptSymbol(",") {
				break
			}
		}
	}
	if err := c.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if c.acceptKeyword("WHERE") {
		cond, err := parseCond(c)
		if err != nil {
			return nil, err
		}
		st.Where = cond
	}
	if c.acceptKeyword("ORDER") {
		if err := c.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := c.expectIdent()
		if err != nil {
			return nil, err
		}
		st.OrderBy = col
		if c.acceptKeyword("DESC") {
			st.OrderDesc = true
		} else {
			_ = c.acceptKeyword("ASC")
		}
	}
	if c.acceptKeyword("LIMIT") {
		t := c.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqldb: LIMIT needs a number, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	return st, nil
}

func parseCond(c *cursor) (*Cond, error) {
	col, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	op := c.next()
	if op.kind != tokSymbol {
		return nil, fmt.Errorf("sqldb: expected comparison operator, got %q", op.text)
	}
	switch op.text {
	case "=", "<", ">", "<=", ">=", "!=":
	default:
		return nil, fmt.Errorf("sqldb: unsupported operator %q", op.text)
	}
	v, err := parseValue(c)
	if err != nil {
		return nil, err
	}
	return &Cond{Col: col, Op: op.text, Val: v}, nil
}

func parseUpdate(c *cursor) (*Statement, error) {
	table, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("SET"); err != nil {
		return nil, err
	}
	col, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := c.expectSymbol("="); err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtUpdate, Table: table, SetCol: col}
	// Either a literal, or the self-referencing "col = col + n" form.
	if t := c.peek(); t.kind == tokIdent && strings.EqualFold(t.text, col) {
		c.next()
		if err := c.expectSymbol("+"); err != nil {
			return nil, err
		}
		t2 := c.next()
		if t2.kind != tokNumber {
			return nil, fmt.Errorf("sqldb: expected delta after %q, got %q", col, t2.text)
		}
		n, err := strconv.ParseInt(t2.text, 10, 64)
		if err != nil {
			return nil, err
		}
		st.SetDelta = n
	} else {
		v, err := parseValue(c)
		if err != nil {
			return nil, err
		}
		st.SetVal = v
	}
	if c.acceptKeyword("WHERE") {
		cond, err := parseCond(c)
		if err != nil {
			return nil, err
		}
		st.Where = cond
	}
	return st, nil
}

func parseDelete(c *cursor) (*Statement, error) {
	if err := c.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := c.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtDelete, Table: table}
	if c.acceptKeyword("WHERE") {
		cond, err := parseCond(c)
		if err != nil {
			return nil, err
		}
		st.Where = cond
	}
	return st, nil
}
