package obsv

import (
	"time"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/recovery"
	"faultstudy/internal/supervise"
)

// Metric names emitted by the bridges. The full catalogue — label sets,
// bucket bounds, semantics — is documented in OBSERVABILITY.md; these
// constants are the single point of truth the docs are checked against.
const (
	// MetricEpisodes counts closed fault episodes by outcome.
	MetricEpisodes = "faultstudy_episodes_total"
	// MetricFailures counts every observed failure, initial and retried.
	MetricFailures = "faultstudy_failures_total"
	// MetricRecoveryAttempts counts recovery actions applied, by ladder rung
	// (or one-shot strategy).
	MetricRecoveryAttempts = "faultstudy_recovery_attempts_total"
	// MetricRecoveries counts retries that served the failed operation.
	MetricRecoveries = "faultstudy_recoveries_total"
	// MetricEscalations counts escalation-ladder transitions by target rung.
	MetricEscalations = "faultstudy_escalations_total"
	// MetricBreakerOpens counts circuit breakers opening.
	MetricBreakerOpens = "faultstudy_breaker_opens_total"
	// MetricFastFails counts failures declined by an already-open breaker.
	MetricFastFails = "faultstudy_fast_fails_total"
	// MetricWatchdogTimeouts counts hangs the watchdog converted to failures.
	MetricWatchdogTimeouts = "faultstudy_watchdog_timeouts_total"
	// MetricBackoffSeconds accumulates virtual time slept in backoff.
	MetricBackoffSeconds = "faultstudy_backoff_seconds_total"
	// MetricCheckpoints counts application state snapshots taken.
	MetricCheckpoints = "faultstudy_checkpoints_total"
	// MetricShedOps counts write operations shed in degraded mode.
	MetricShedOps = "faultstudy_shed_ops_total"
	// MetricDegraded is 1 while the supervised service is degraded, else 0.
	MetricDegraded = "faultstudy_degraded"
	// MetricEpisodeSeconds is the episode-duration histogram (LatencyBuckets).
	MetricEpisodeSeconds = "faultstudy_episode_seconds"
	// MetricRetriesPerRecovery is the retries-per-served-episode histogram
	// (RetryBuckets).
	MetricRetriesPerRecovery = "faultstudy_retries_per_recovery"
	// MetricWorkloadOps counts generated workload items by stream and
	// category.
	MetricWorkloadOps = "faultstudy_workload_ops_total"
	// MetricResilURLs counts chaos-targeted URLs in the RESIL sweep by final
	// verdict (recovered or lost).
	MetricResilURLs = "faultstudy_resil_urls_total"
	// MetricResilPages counts crawled pages in the RESIL sweep by result
	// (fetched, non2xx, gap).
	MetricResilPages = "faultstudy_resil_pages_total"
	// MetricResilRetries counts resilient-client retries spent in the sweep.
	MetricResilRetries = "faultstudy_resil_retries_total"
	// MetricResilHedges counts hedged re-attempts after slow failures.
	MetricResilHedges = "faultstudy_resil_hedges_total"
	// MetricResilFastFails counts requests declined by an open host breaker.
	MetricResilFastFails = "faultstudy_resil_fast_fails_total"
	// MetricResilBudgetDenied counts retries refused by a drained budget.
	MetricResilBudgetDenied = "faultstudy_resil_budget_denied_total"
	// MetricResilTruncations counts Content-Length truncation detections.
	MetricResilTruncations = "faultstudy_resil_truncations_total"
	// MetricResilMTTRSeconds is the per-URL time-to-repair histogram
	// (LatencyBuckets): first injected failure to first clean fetch.
	MetricResilMTTRSeconds = "faultstudy_resil_mttr_seconds"
)

// registerHelp attaches the exporter help strings for every bridge metric.
func registerHelp(reg *Registry) {
	reg.Help(MetricEpisodes, "Fault episodes closed, by app, class and outcome.")
	reg.Help(MetricFailures, "Observed operation failures, initial and retried.")
	reg.Help(MetricRecoveryAttempts, "Recovery actions applied, by ladder rung or strategy.")
	reg.Help(MetricRecoveries, "Recovery retries that served the failed operation.")
	reg.Help(MetricEscalations, "Escalation-ladder transitions, by target rung.")
	reg.Help(MetricBreakerOpens, "Per-mechanism circuit breakers opening.")
	reg.Help(MetricFastFails, "Failures declined by an already-open breaker.")
	reg.Help(MetricWatchdogTimeouts, "Hangs the watchdog converted into failures.")
	reg.Help(MetricBackoffSeconds, "Virtual seconds slept in recovery backoff.")
	reg.Help(MetricCheckpoints, "Application state snapshots taken.")
	reg.Help(MetricShedOps, "Write operations shed in degraded mode.")
	reg.Help(MetricDegraded, "1 while the service is in degraded mode, else 0.")
	reg.Help(MetricEpisodeSeconds, "Episode duration from dispatch to verdict, virtual seconds.")
	reg.Help(MetricRetriesPerRecovery, "Recovery retries spent per served episode.")
	reg.Help(MetricWorkloadOps, "Workload items generated, by stream and category.")
	reg.Help(MetricResilURLs, "Chaos-targeted URLs, by policy, fault, class and verdict.")
	reg.Help(MetricResilPages, "RESIL crawl pages, by policy, fault and result.")
	reg.Help(MetricResilRetries, "Resilient-client retries spent, by policy and class.")
	reg.Help(MetricResilHedges, "Hedged re-attempts after slow failures, by policy and class.")
	reg.Help(MetricResilFastFails, "Requests declined by an open host breaker, by policy and class.")
	reg.Help(MetricResilBudgetDenied, "Retries refused by a drained retry budget, by policy and class.")
	reg.Help(MetricResilTruncations, "Content-Length truncation detections, by policy and class.")
	reg.Help(MetricResilMTTRSeconds, "Per-URL repair time: first injected failure to first clean fetch.")
}

// RegisterBridgeHelp attaches the exporter help strings for the bridge
// metric catalogue — the hook for instrumentation paths that write into a
// registry directly rather than through an Observer (the RESIL sweep).
// Nil-safe.
func RegisterBridgeHelp(reg *Registry) { registerHelp(reg) }

// Observer adapts the supervisor's trace-event stream into recorder episodes
// and registry metrics. One Observer instruments one supervised run; build it
// with NewObserver, point supervise.Config.Trace at SuperviseTrace(nil), and
// read the episodes and metrics afterwards. Both the registry and the
// recorder may be nil — a nil sink simply receives nothing, so callers can
// ask for metrics without traces or vice versa.
type Observer struct {
	reg *Registry
	rec *Recorder
	ctx Context
	// pending holds watchdog spans charged before the failure that opens the
	// episode was classified (chargeHang fires EventWatchdog first); they are
	// attached as the episode's opening spans.
	pending []Span
}

// NewObserver builds an observer writing to the given sinks under the given
// identity context. The context's App/FaultID/Class label every episode and
// metric the observer emits; SetContext switches identity between runs.
func NewObserver(reg *Registry, rec *Recorder, ctx Context) *Observer {
	registerHelp(reg)
	rec.SetContext(ctx)
	return &Observer{reg: reg, rec: rec, ctx: ctx}
}

// SetContext switches the identity attached to subsequent episodes and
// metrics — the soak and matrix paths reuse one observer across faults.
func (o *Observer) SetContext(ctx Context) {
	o.ctx = ctx
	o.rec.SetContext(ctx)
}

// Recorder returns the observer's episode sink (may be nil).
func (o *Observer) Recorder() *Recorder { return o.rec }

// class resolves the class label for a mechanism under the current context.
func (o *Observer) class(mechanism string) string {
	if o.ctx.Class != "" {
		return o.ctx.Class
	}
	if o.ctx.ClassFor != nil {
		if c := o.ctx.ClassFor(mechanism); c != "" {
			return c
		}
	}
	return "?"
}

// errText renders an error for span notes ("" for nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// SuperviseTrace returns a supervise trace hook feeding this observer; when
// next is non-nil every event is forwarded to it afterwards, so the observer
// composes with logging hooks.
func (o *Observer) SuperviseTrace(next func(supervise.Event)) func(supervise.Event) {
	return func(ev supervise.Event) {
		o.observe(ev)
		if next != nil {
			next(ev)
		}
	}
}

// observe folds one supervisor event into the recorder and the registry.
func (o *Observer) observe(ev supervise.Event) {
	app := o.ctx.App
	switch ev.Kind {
	case supervise.EventFailure:
		o.reg.Counter(MetricFailures,
			L("app", app, "class", o.class(ev.Mechanism), "mechanism", ev.Mechanism)...).Inc()
		if !o.rec.Active() {
			o.rec.Begin(ev.At, ev.Op, ev.Mechanism)
			for _, sp := range o.pending {
				o.rec.Note(time.Duration(sp.StartUS)*time.Microsecond, sp)
			}
			o.pending = nil
			o.rec.Note(ev.At, Span{Kind: SpanActivation, Note: errText(ev.Err)})
			return
		}
		// A failure inside an open episode is a retry that did not serve the
		// op; the mechanism may have drifted (e.g. a restore hitting a full
		// disk fails differently than the original crash).
		o.rec.Drift(ev.Mechanism)
		o.rec.Note(ev.At, Span{Kind: SpanRetry, Rung: rungName(ev.Rung), Outcome: "fail", Note: errText(ev.Err)})
	case supervise.EventWatchdog:
		o.reg.Counter(MetricWatchdogTimeouts,
			L("app", app, "mechanism", ev.Mechanism)...).Inc()
		sp := Span{Kind: SpanWatchdog, Note: errText(ev.Err)}
		if o.rec.Active() {
			o.rec.Note(ev.At, sp)
			return
		}
		// chargeHang runs before the failure is classified: hold the span and
		// attach it when the episode opens.
		sp.StartUS = US(ev.At)
		sp.EndUS = sp.StartUS
		o.pending = append(o.pending, sp)
	case supervise.EventBackoff:
		o.reg.Counter(MetricBackoffSeconds, L("app", app)...).Add(ev.Delay.Seconds())
		o.rec.Interval(ev.At, ev.At+ev.Delay,
			Span{Kind: SpanBackoff, Rung: rungName(ev.Rung), Attempt: ev.Attempt})
	case supervise.EventAction:
		o.reg.Counter(MetricRecoveryAttempts,
			L("app", app, "class", o.class(ev.Mechanism), "rung", rungName(ev.Rung))...).Inc()
		outcome := "ok"
		if ev.Err != nil {
			outcome = "fail" // the recovery action itself failed
		}
		o.rec.Note(ev.At, Span{Kind: SpanAction, Rung: rungName(ev.Rung), Attempt: ev.Attempt,
			Outcome: outcome, Component: ev.Component, Note: errText(ev.Err)})
	case supervise.EventRetryOK:
		o.reg.Counter(MetricRecoveries,
			L("app", app, "class", o.class(ev.Mechanism), "rung", rungName(ev.Rung))...).Inc()
		o.rec.Note(ev.At, Span{Kind: SpanRetry, Rung: rungName(ev.Rung), Attempt: ev.Attempt, Outcome: "ok"})
		outcome := OutcomeRecovered
		if ev.Rung == supervise.RungDegraded {
			outcome = OutcomeDegraded
		}
		o.closeEpisode(ev.At, outcome, rungName(ev.Rung))
	case supervise.EventEscalate:
		o.reg.Counter(MetricEscalations,
			L("app", app, "class", o.class(ev.Mechanism), "rung", rungName(ev.Rung))...).Inc()
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Rung: rungName(ev.Rung), Outcome: "escalate"})
	case supervise.EventBreakerOpen:
		o.reg.Counter(MetricBreakerOpens, L("app", app, "mechanism", ev.Mechanism)...).Inc()
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Rung: rungName(ev.Rung), Outcome: "breaker-open",
			Note: ev.Mechanism})
	case supervise.EventFastFail:
		o.reg.Counter(MetricFastFails, L("app", app, "mechanism", ev.Mechanism)...).Inc()
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Outcome: "fast-fail", Note: ev.Mechanism})
		o.closeEpisode(ev.At, OutcomeFastFail, "")
	case supervise.EventDegraded:
		o.reg.Gauge(MetricDegraded, L("app", app)...).Set(1)
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Rung: rungName(ev.Rung), Outcome: "degraded-enter"})
	case supervise.EventDegradedExit:
		o.reg.Gauge(MetricDegraded, L("app", app)...).Set(0)
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Outcome: "degraded-exit"})
	case supervise.EventShed:
		o.reg.Counter(MetricShedOps, L("app", app)...).Inc()
		if o.rec.Active() {
			// The op whose episode is open was itself shed at the degraded
			// rung; steady-state sheds (no open episode) are metrics-only.
			o.rec.Note(ev.At, Span{Kind: SpanDecision, Rung: rungName(ev.Rung), Outcome: "shed"})
			o.closeEpisode(ev.At, OutcomeShed, rungName(ev.Rung))
		}
	case supervise.EventGiveUp:
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Rung: rungName(ev.Rung), Outcome: "gave-up",
			Note: errText(ev.Err)})
		o.closeEpisode(ev.At, OutcomeLost, rungName(ev.Rung))
	case supervise.EventCheckpoint:
		o.reg.Counter(MetricCheckpoints, L("app", app)...).Inc()
		// Checkpoints happen between episodes; Note drops the span when no
		// episode is open, which keeps traces episode-shaped.
		o.rec.Note(ev.At, Span{Kind: SpanCheckpoint, Note: ev.Op})
	}
}

// rungName renders a supervisor rung for span and metric labels; the zero
// value (no rung in effect yet, e.g. the initial failure of an episode)
// renders as empty so instant spans stay compact in JSONL.
func rungName(r supervise.Rung) string {
	if r == 0 {
		return ""
	}
	return r.String()
}

// closeEpisode ends the open episode and feeds its duration and retry count
// into the histograms.
func (o *Observer) closeEpisode(at time.Duration, outcome, finalRung string) {
	ep := o.rec.End(at, outcome, finalRung)
	o.observeEpisode(ep, outcome, "")
}

// observeEpisode records the per-episode metrics. When the recorder is nil
// (metrics-only instrumentation) ep is nil and mechanism supplies the class
// label; retries are then unknown and the retry histogram is skipped.
func (o *Observer) observeEpisode(ep *Episode, outcome, mechanism string) {
	class := o.class(mechanism)
	if ep != nil {
		class = ep.Class
	}
	o.reg.Counter(MetricEpisodes,
		L("app", o.ctx.App, "class", class, "outcome", outcome)...).Inc()
	if ep == nil {
		return
	}
	o.reg.Histogram(MetricEpisodeSeconds, LatencyBuckets,
		L("app", o.ctx.App, "class", class)...).ObserveDuration(ep.Duration())
	if outcome == OutcomeRecovered || outcome == OutcomeDegraded {
		o.reg.Histogram(MetricRetriesPerRecovery, RetryBuckets,
			L("app", o.ctx.App, "class", class)...).Observe(float64(ep.Retries))
	}
}

// Flush closes any episode left open as lost (a run can end mid-episode
// when recovery is disabled) and returns it. Call once per instrumented run,
// after the workload finishes. Nil-safe.
func (o *Observer) Flush(at time.Duration) *Episode {
	if o == nil {
		return nil
	}
	ep := o.rec.Flush(at)
	if ep != nil {
		o.observeEpisode(ep, OutcomeLost, ep.Mechanism)
	}
	return ep
}

// RecoveryObserver adapts the one-shot recovery manager's trace stream
// (internal/recovery) into the same episode and metric vocabulary the
// supervisor bridge uses, with the strategy name standing in for the ladder
// rung. One observer instruments one Manager.Run.
type RecoveryObserver struct {
	obs      *Observer
	strategy string
}

// NewRecoveryObserver builds a recovery-run observer. The strategy name
// labels every action span and attempt metric the run emits.
func NewRecoveryObserver(reg *Registry, rec *Recorder, ctx Context, strategy string) *RecoveryObserver {
	return &RecoveryObserver{obs: NewObserver(reg, rec, ctx), strategy: strategy}
}

// Trace returns a recovery trace hook feeding this observer; a non-nil next
// receives every event afterwards.
func (ro *RecoveryObserver) Trace(next func(recovery.TraceEvent)) func(recovery.TraceEvent) {
	return func(ev recovery.TraceEvent) {
		ro.observe(ev)
		if next != nil {
			next(ev)
		}
	}
}

// mechanismOf extracts the seeded-bug mechanism from a trace error.
func mechanismOf(err error) string {
	if fe, ok := faultinject.AsFailure(err); ok {
		return fe.Mechanism
	}
	return ""
}

// observe folds one recovery-manager event into the sinks.
func (ro *RecoveryObserver) observe(ev recovery.TraceEvent) {
	o := ro.obs
	app := o.ctx.App
	switch ev.Kind {
	case recovery.TraceFailure:
		mech := mechanismOf(ev.Err)
		o.reg.Counter(MetricFailures,
			L("app", app, "class", o.class(mech), "mechanism", mech)...).Inc()
		if !o.rec.Active() {
			o.rec.Begin(ev.At, ev.Op, mech)
			o.rec.Note(ev.At, Span{Kind: SpanActivation, Note: errText(ev.Err)})
		}
	case recovery.TraceRecover:
		o.reg.Counter(MetricRecoveryAttempts,
			L("app", app, "class", o.class(""), "rung", ro.strategy)...).Inc()
		o.rec.Note(ev.At, Span{Kind: SpanAction, Rung: ro.strategy, Attempt: ev.Attempt, Outcome: "ok"})
	case recovery.TraceRetryOK:
		o.reg.Counter(MetricRecoveries,
			L("app", app, "class", o.class(""), "rung", ro.strategy)...).Inc()
		o.rec.Note(ev.At, Span{Kind: SpanRetry, Rung: ro.strategy, Attempt: ev.Attempt, Outcome: "ok"})
		ro.closeEpisode(ev.At, OutcomeRecovered)
	case recovery.TraceRetryFail:
		o.rec.Drift(mechanismOf(ev.Err))
		o.rec.Note(ev.At, Span{Kind: SpanRetry, Rung: ro.strategy, Attempt: ev.Attempt,
			Outcome: "fail", Note: errText(ev.Err)})
	case recovery.TraceGaveUp:
		o.rec.Note(ev.At, Span{Kind: SpanDecision, Rung: ro.strategy, Outcome: "gave-up",
			Note: errText(ev.Err)})
		ro.closeEpisode(ev.At, OutcomeLost)
	}
}

// closeEpisode ends the open episode under the strategy rung and observes it.
func (ro *RecoveryObserver) closeEpisode(at time.Duration, outcome string) {
	ep := ro.obs.rec.End(at, outcome, ro.strategy)
	ro.obs.observeEpisode(ep, outcome, "")
}

// Flush closes any episode the run left open (StrategyNone stops at the
// first failure) as lost.
func (ro *RecoveryObserver) Flush(at time.Duration) *Episode { return ro.obs.Flush(at) }

// WorkloadHook counts generated workload items in a registry; it satisfies
// workload.Hook without the workload package importing obsv. A nil
// *WorkloadHook (or one with a nil registry) records nothing.
type WorkloadHook struct {
	// Registry receives the workload-mix counters.
	Registry *Registry
}

// Generated counts one generated workload item.
func (h *WorkloadHook) Generated(stream, category string) {
	if h == nil {
		return
	}
	h.Registry.Counter(MetricWorkloadOps, L("stream", stream, "category", category)...).Inc()
}
