package experiment

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"faultstudy/internal/recovery"
	"faultstudy/internal/taxonomy"
)

// FigureCSV renders a figure's series as CSV: one row per bucket with
// per-class counts — the machine-readable form of Figures 1–3 for external
// plotting.
func FigureCSV(fig *FigureSeries) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := []string{"bucket"}
	for _, c := range taxonomy.Classes() {
		header = append(header, c.Short())
	}
	header = append(header, "total")
	if err := w.Write(header); err != nil {
		return "", err
	}
	totals := fig.Totals()
	for i, bucket := range fig.Buckets {
		row := []string{bucket}
		for _, c := range taxonomy.Classes() {
			row = append(row, strconv.Itoa(fig.PerClass[c][i]))
		}
		row = append(row, strconv.Itoa(totals[i]))
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// TableCSV renders a classification table as CSV with measured and paper
// columns.
func TableCSV(t *TableResult) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write([]string{"class", "measured", "paper"}); err != nil {
		return "", err
	}
	for _, c := range taxonomy.Classes() {
		if err := w.Write([]string{c.String(), strconv.Itoa(t.Counts[c]), strconv.Itoa(t.Paper[c])}); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// MatrixCSV renders the recovery matrix as CSV: one row per fault with its
// class, mechanism, and per-strategy outcome.
func MatrixCSV(m *Matrix) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := []string{"fault", "class", "mechanism"}
	for _, s := range m.Strategies {
		header = append(header, s.String())
	}
	if err := w.Write(header); err != nil {
		return "", err
	}
	for _, fo := range m.PerFault {
		row := []string{fo.FaultID, fo.Class.Short(), fo.Mechanism}
		for _, s := range m.Strategies {
			row = append(row, strconv.FormatBool(fo.Survived[s]))
		}
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// MatrixSummaryCSV renders the class-by-strategy survival rates as CSV.
func MatrixSummaryCSV(m *Matrix) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := []string{"class", "faults"}
	for _, s := range m.Strategies {
		header = append(header, s.String()+"_survived")
	}
	if err := w.Write(header); err != nil {
		return "", err
	}
	for _, c := range taxonomy.Classes() {
		n := m.Rate(recovery.StrategyNone, c).N
		row := []string{c.Short(), strconv.Itoa(n)}
		for _, s := range m.Strategies {
			row = append(row, strconv.Itoa(m.Rate(s, c).Hits))
		}
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

// ExportAll renders every artifact as named CSV documents (file name ->
// content), for a CLI to write out.
func ExportAll(m *Matrix) (map[string]string, error) {
	out := make(map[string]string, 8)
	for app, fig := range map[string]*FigureSeries{
		"figure1_apache.csv": Figure1Apache(),
		"figure2_gnome.csv":  Figure2Gnome(),
		"figure3_mysql.csv":  Figure3MySQL(),
	} {
		csvText, err := FigureCSV(fig)
		if err != nil {
			return nil, fmt.Errorf("experiment: export %s: %w", app, err)
		}
		out[app] = csvText
	}
	for name, app := range map[string]taxonomy.Application{
		"table1_apache.csv": taxonomy.AppApache,
		"table2_gnome.csv":  taxonomy.AppGnome,
		"table3_mysql.csv":  taxonomy.AppMySQL,
	} {
		csvText, err := TableCSV(Table(app, classifyDefaults()))
		if err != nil {
			return nil, fmt.Errorf("experiment: export %s: %w", name, err)
		}
		out[name] = csvText
	}
	if m != nil {
		full, err := MatrixCSV(m)
		if err != nil {
			return nil, err
		}
		out["recovery_matrix.csv"] = full
		summary, err := MatrixSummaryCSV(m)
		if err != nil {
			return nil, err
		}
		out["recovery_summary.csv"] = summary
	}
	return out, nil
}
