package experiment

import (
	"fmt"

	"faultstudy/internal/corpus"
	"faultstudy/internal/obsv"
	"faultstudy/internal/parallel"
	"faultstudy/internal/recovery"
	"faultstudy/internal/supervise"
)

// This file is the parallel experiment engine: the fault × strategy × app
// sweeps sharded over a bounded worker pool (internal/parallel). The
// determinism contract is worker-count invariance — every report, trace,
// timeline, and metrics dump an N-worker run produces is byte-identical to
// the 1-worker (serial) run — and it holds because:
//
//   - each shard is one corpus fault (matrix paths) or one application
//     (soak), with its own freshly seeded environment, application instance,
//     and supervisor: no shard shares mutable state with another (verified
//     under -race);
//   - every seed a shard uses is a pure function of the root seed and the
//     shard's position, never of scheduling (see parallel.Derive for the
//     SplitMix64 derivation used where shards need private streams);
//   - each shard writes into its own obsv sinks, and the engine reduces them
//     in shard order with Registry.Merge / Recorder.Append, which reproduces
//     exactly what a serial run sharing one sink would have recorded;
//   - outcomes land in index-addressed slots, so presentation order is the
//     corpus order regardless of completion order.

// RunMatrixWorkers is RunMatrix sharded over a worker pool: every corpus
// fault is one shard, run under every strategy with a fresh environment and
// application. workers ≤ 0 means one worker per processor. The resulting
// matrix is byte-identical at every worker count.
//
// With workers > 1 the policy's Trace hook, if any, is invoked concurrently
// from multiple shards; hooks must be safe for concurrent use (the CLI's
// -steps hook is only attached to single-mechanism runs).
func RunMatrixWorkers(policy recovery.Policy, seed int64, workers int) (*Matrix, error) {
	faults := corpus.All()
	m := &Matrix{
		Strategies: recovery.Strategies(),
		PerFault:   make([]FaultOutcome, len(faults)),
	}
	err := parallel.ForEach(workers, len(faults), func(i int) error {
		f := faults[i]
		mgr := recovery.NewManager(policy)
		fo := FaultOutcome{
			FaultID:   f.ID,
			Mechanism: f.Mechanism,
			Class:     f.Class,
			Survived:  make(map[recovery.Strategy]bool, len(m.Strategies)),
		}
		for si, strat := range m.Strategies {
			app, sc, err := BuildScenario(f.Mechanism, seed+int64(si))
			if err != nil {
				return fmt.Errorf("experiment: %s: %w", f.ID, err)
			}
			out, err := mgr.Run(app, sc, strat)
			if err != nil {
				return fmt.Errorf("experiment: %s under %s: %w", f.ID, strat, err)
			}
			fo.Survived[strat] = out.Survived
		}
		m.PerFault[i] = fo
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// AddSupervisedWorkers is the sharded supervised-column run: every corpus
// fault is one shard with a fresh environment, application, and supervisor.
// When t is non-nil each shard records into a private telemetry whose
// metrics and episodes are folded into t in corpus order afterwards, so the
// merged trace, timeline, summary, and exports are byte-identical at every
// worker count (workers ≤ 0 means one per processor).
func (m *Matrix) AddSupervisedWorkers(seed int64, cfg supervise.Config, t *Telemetry, workers int) error {
	shards := make([]*Telemetry, len(m.PerFault))
	err := parallel.ForEach(workers, len(m.PerFault), func(i int) error {
		fo := &m.PerFault[i]
		app, sc, err := BuildScenario(fo.Mechanism, seed)
		if err != nil {
			return fmt.Errorf("experiment: supervised %s: %w", fo.FaultID, err)
		}
		// Start before staging, like the bare-strategy runs: the staged
		// environmental condition hits a running application.
		if err := app.Start(); err != nil {
			return fmt.Errorf("experiment: supervised %s: start: %w", fo.FaultID, err)
		}
		if sc.Stage != nil {
			sc.Stage()
		}
		runCfg := cfg
		var obs *obsv.Observer
		if t != nil {
			shards[i] = NewTelemetry()
			mech, _ := Registry().Lookup(fo.Mechanism)
			runCfg, obs = shards[i].superviseConfig(cfg, obsv.Context{
				App:     mech.App.String(),
				FaultID: fo.FaultID,
				Class:   fo.Class.Short(),
			})
		}
		sup := supervise.New(app, runCfg)
		rep, err := sup.Run(wrapScenarioOps(fo.Mechanism, sc.Ops))
		if err != nil {
			return fmt.Errorf("experiment: supervised %s: %w", fo.FaultID, err)
		}
		obs.Flush(app.Env().Monotonic())
		fo.Supervised = verdictOf(rep)
		return nil
	})
	if err != nil {
		return err
	}
	return t.Merge(shards...)
}
