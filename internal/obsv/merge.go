package obsv

import (
	"fmt"
)

// This file is the observability half of the parallel experiment engine
// (internal/parallel): each shard writes into its own private Registry and
// Recorder, and the engine folds the shards back together with Merge and
// MergeEpisodes in shard order. Because every merge rule below is
// commutative-with-order-fixed (counters sum, histogram buckets sum, gauges
// take the last shard's word, episodes renumber in shard order), the merged
// result depends only on the shard decomposition — never on worker count or
// completion order.

// Merge folds src's series into r: counters sum, histograms merge
// bucket-wise, and gauges take src's value (last-merged-shard wins — the
// same answer a serial run's final Set would leave). Help strings are copied
// for names r has not documented yet. Merging is an error when the same
// (name, labels) series exists in both registries with different kinds, or
// when two histograms disagree about bucket bounds — both are
// instrumentation bugs, not runtime conditions, but during a merge they are
// reported rather than panicking so a CLI can surface them. A nil src (or
// nil r) merges nothing.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil {
		return nil
	}
	// Snapshot src's sorted series and help outside r's lock; the two
	// registries are distinct by contract (merging a registry into itself
	// would double its counters, so it is rejected).
	if r == src {
		return fmt.Errorf("obsv: cannot merge a registry into itself")
	}
	src.mu.Lock()
	help := make(map[string]string, len(src.help))
	for k, v := range src.help {
		help[k] = v
	}
	src.mu.Unlock()
	for name, h := range help {
		r.mu.Lock()
		if _, ok := r.help[name]; !ok {
			r.help[name] = h
		}
		r.mu.Unlock()
	}
	for _, s := range src.sortedSeries() {
		if err := r.mergeSeries(s); err != nil {
			return err
		}
	}
	return nil
}

// mergeSeries folds one source series into r, converting the lookup methods'
// kind-mismatch panics into errors — during a merge a clash between two
// registries' schemas is a reportable condition, not a crash.
func (r *Registry) mergeSeries(s *series) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("obsv: merge %s: %v", seriesKey(s.name, s.labels), v)
		}
	}()
	switch s.kind {
	case kindCounter:
		r.Counter(s.name, s.labels...).Add(s.c.Value())
	case kindGauge:
		r.Gauge(s.name, s.labels...).Set(s.g.Value())
	case kindHistogram:
		bounds, _, _, _ := s.h.snapshot()
		if err := r.Histogram(s.name, bounds, s.labels...).Merge(s.h); err != nil {
			return fmt.Errorf("obsv: merge %s: %w", seriesKey(s.name, s.labels), err)
		}
	}
	return nil
}

// Merge folds src's observations into h: per-bucket counts, the observation
// sum, and the total all add. The two histograms must share bucket bounds —
// merging histograms with different bounds would silently redistribute
// observations, so it is an error. Merging an empty histogram (or a nil src)
// is a no-op; merging h into itself is rejected.
func (h *Histogram) Merge(src *Histogram) error {
	if h == nil || src == nil {
		return nil
	}
	if h == src {
		return fmt.Errorf("cannot merge a histogram into itself")
	}
	src.mu.Lock()
	bounds := append([]float64(nil), src.buckets...)
	counts := append([]uint64(nil), src.counts...)
	sum, total := src.sum, src.total
	src.mu.Unlock()
	if total == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(bounds) != len(h.buckets) {
		return fmt.Errorf("bucket count mismatch: %d vs %d", len(h.buckets), len(bounds))
	}
	for i, b := range bounds {
		if h.buckets[i] != b {
			return fmt.Errorf("bucket bound %d mismatch: %v vs %v", i, h.buckets[i], b)
		}
	}
	for i, c := range counts {
		h.counts[i] += c
	}
	h.sum += sum
	h.total += total
	return nil
}

// MergeEpisodes folds per-shard episode streams into one stream, in
// virtual-time order: within a shard the recorder already emits episodes in
// the order its clock closed them, and distinct shards run on independent
// virtual clocks (every shard's environment starts at zero), so shard order
// — the serial execution order — is the deterministic interleave across
// clock domains. Episode IDs are renumbered 1..N in the merged order, which
// reproduces exactly the numbering a serial run sharing one recorder would
// have assigned. The input episodes are not mutated; renumbered episodes are
// shallow copies.
func MergeEpisodes(shards ...[]*Episode) []*Episode {
	n := 0
	for _, s := range shards {
		n += len(s)
	}
	if n == 0 {
		return nil
	}
	out := make([]*Episode, 0, n)
	id := 0
	for _, s := range shards {
		for _, e := range s {
			id++
			if e.ID == id {
				out = append(out, e)
				continue
			}
			c := *e
			c.ID = id
			out = append(out, &c)
		}
	}
	return out
}

// Append adopts already-closed episodes into the recorder, renumbering them
// to continue its own sequence — the reduction step that folds per-shard
// recorders into the run-level one. Nil-safe.
func (r *Recorder) Append(eps ...*Episode) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range eps {
		if e == nil {
			continue
		}
		r.nextID++
		if e.ID != r.nextID {
			c := *e
			c.ID = r.nextID
			e = &c
		}
		r.episodes = append(r.episodes, e)
	}
}
