// Package suppress is a fixture for the ignore-directive machinery: trailing
// and preceding directives, wildcard rules, and one finding left active.
package suppress

import "time"

func trailing() {
	time.Sleep(time.Millisecond) //faultlint:ignore wallclock deliberate demo pacing
}

func preceding() time.Time {
	//faultlint:ignore all covers the next line
	return time.Now()
}

func wrongRule() {
	time.Sleep(time.Millisecond) //faultlint:ignore rawrand does not cover wallclock
}

func active() time.Time {
	return time.Now() // want EDT
}
