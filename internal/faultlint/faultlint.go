// Package faultlint is a stdlib-only static-analysis suite that finds
// environment-dependence sites in Go source and predicts the fault class —
// environment-independent (EI), environment-dependent-nontransient (EDN), or
// environment-dependent-transient (EDT) — that a fault at each site would
// carry under Chandra & Chen's taxonomy (DSN 2000, §3).
//
// The paper classified every fault by hand; faultlint mechanizes the same
// judgment at the source level, in the spirit of Palix et al.'s
// pattern-mined Linux fault taxonomy. Each analyzer encodes one
// classification rule:
//
//   - envsite: classifies seeded fault-raise sites (faultinject.Fail /
//     FailCause) by the environmental facility consulted nearby.
//   - envcheck: discarded errors from environment-dependent acquire
//     operations — a latent EDN fault waiting for the environment to defect.
//   - retryloop: blind retry of environment-dependent operations with no
//     backoff — the paper's "unlikely to succeed on retry" EDN trap.
//   - wallclock: direct wall-clock reads outside the injectable-clock
//     packages — timing nondeterminism (EDT).
//   - rawrand: global math/rand draws — nondeterminism that breaks
//     reproducible experiments (EDT).
//   - swallowfail: a faultinject.FailureError caught and dropped without
//     reclassification — the failure's class is lost (latent EDN).
//   - sharedmut: package-level mutable state written near goroutine spawns
//     without synchronization — a lightweight race heuristic (EDT).
//
// The suite is built only on go/parser, go/ast, and go/types; imports are
// resolved with a stub importer so no compiled export data, module
// downloads, or go-command invocations are needed. Type information is
// therefore best-effort: analyzers consult it where available (constant
// values, package-name resolution) and degrade to syntactic resolution
// otherwise.
//
// Diagnostics may be suppressed with a trailing or preceding comment:
//
//	//faultlint:ignore <rule>[,<rule>...] [reason]
//
// where <rule> may be "all". Suppressed diagnostics are retained in reports
// (marked suppressed) so suppression density is itself observable.
package faultlint

import (
	"fmt"
	"go/ast"
	"go/token"

	"faultstudy/internal/taxonomy"
)

// Diagnostic is one finding: a source position, the rule that fired, and the
// fault class the rule predicts for a fault at that site.
type Diagnostic struct {
	// Rule is the analyzer name that produced the finding.
	Rule string `json:"rule"`
	// Class is the predicted fault class of the site.
	Class taxonomy.FaultClass `json:"class"`
	// File is the file path as loaded.
	File string `json:"file"`
	// Line and Col are 1-based source coordinates.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the finding.
	Message string `json:"message"`
	// Mechanisms lists the seeded-bug registry keys attributed to the site,
	// when the site raises a seeded fault (envsite only).
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Advisory marks a finding from a classification rule: it is reported
	// and counted but never fails the gate (envsite classifies seeded fault
	// sites — those sites are the corpus, not defects).
	Advisory bool `json:"advisory,omitempty"`
	// Suppressed marks a finding covered by a //faultlint:ignore comment.
	Suppressed bool `json:"suppressed,omitempty"`
	// SuppressReason carries the trailing text of the ignore comment.
	SuppressReason string `json:"suppressReason,omitempty"`
}

// Pos renders the file:line:col prefix.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// Analyzer is one checking rule.
type Analyzer struct {
	// Name is the rule name used in reports and ignore comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Class is the fault class the rule predicts for its findings; envsite
	// overrides it per diagnostic.
	Class taxonomy.FaultClass
	// Advisory marks a classification rule whose findings describe the
	// corpus rather than defects; they never fail the gate.
	Advisory bool
	// Run inspects one package through the pass.
	Run func(*Pass)
}

// Analyzers returns the full suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		envsiteAnalyzer,
		envcheckAnalyzer,
		retryloopAnalyzer,
		wallclockAnalyzer,
		rawrandAnalyzer,
		swallowfailAnalyzer,
		sharedmutAnalyzer,
	}
}

// AnalyzerNames returns the rule names in report order.
func AnalyzerNames() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// LookupAnalyzer finds one analyzer by rule name.
func LookupAnalyzer(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Pass is one analyzer's view of one loaded package.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset translates token positions.
	Fset *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos with the analyzer's default class.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportSite(pos, p.Analyzer.Class, nil, format, args...)
}

// ReportSite records a diagnostic with an explicit class prediction and an
// optional mechanism attribution.
func (p *Pass) ReportSite(pos token.Pos, class taxonomy.FaultClass, mechanisms []string, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:       p.Analyzer.Name,
		Class:      class,
		File:       position.Filename,
		Line:       position.Line,
		Col:        position.Column,
		Message:    fmt.Sprintf(format, args...),
		Mechanisms: mechanisms,
		Advisory:   p.Analyzer.Advisory,
	})
}

// Inspect walks every file of the package in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// Result is the outcome of running analyzers over a set of packages.
type Result struct {
	// Packages counts the packages analyzed.
	Packages int `json:"packages"`
	// Rules lists the analyzer names that ran.
	Rules []string `json:"rules"`
	// Diagnostics holds every finding, suppressed included, sorted by
	// file/line/col/rule.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Active returns the unsuppressed findings.
func (r *Result) Active() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Gating returns the findings that fail the gate: active and non-advisory.
func (r *Result) Gating() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed && !d.Advisory {
			out = append(out, d)
		}
	}
	return out
}

// ByRule tallies findings (suppressed included) per rule.
func (r *Result) ByRule() map[string]int {
	out := make(map[string]int)
	for _, d := range r.Diagnostics {
		out[d.Rule]++
	}
	return out
}

// Run executes the given analyzers (all, when rules is nil) over the
// packages and returns the merged, suppression-annotated result.
func Run(pkgs []*Package, rules []string) (*Result, error) {
	analyzers := Analyzers()
	if len(rules) > 0 {
		analyzers = analyzers[:0:0]
		for _, name := range rules {
			a, ok := LookupAnalyzer(name)
			if !ok {
				return nil, fmt.Errorf("faultlint: unknown rule %q (have %v)", name, AnalyzerNames())
			}
			analyzers = append(analyzers, a)
		}
	}
	res := &Result{Packages: len(pkgs)}
	for _, a := range analyzers {
		res.Rules = append(res.Rules, a.Name)
	}
	var diags []Diagnostic
	index := newSuppressionIndex()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, diags: &diags}
			a.Run(pass)
		}
		index.collect(pkg)
	}
	index.apply(diags)
	SortDiagnostics(diags)
	res.Diagnostics = diags
	return res, nil
}
