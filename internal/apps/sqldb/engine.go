package sqldb

import (
	"errors"
	"fmt"
	"sort"

	"faultstudy/internal/durable"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Row is one table row.
type Row []Value

// table is one stored table: schema, rows, and secondary indexes. Deleted
// rows leave nil holes until OPTIMIZE TABLE compacts them (as the ISAM
// format did).
type table struct {
	name    string
	cols    []ColDef
	rows    []Row // index = row id; nil = deleted
	live    int
	indexes map[string]*btree // column -> index
	fd      simenv.FD         // the table's open datafile descriptor
	hasFD   bool
}

func (t *table) colIndex(name string) (int, error) {
	for i, c := range t.cols {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqldb: no column %q in table %q", name, t.name)
}

func (t *table) dataFile() string { return "/var/db/" + t.name + ".ISD" }

// rowBytes is the disk accounting charge per stored row.
const rowBytes = 64

// ResultSet is the answer to a SELECT.
type ResultSet struct {
	// Cols names the returned columns.
	Cols []string
	// Rows holds the returned rows.
	Rows []Row
	// Count is the COUNT(...) answer when the query was an aggregate.
	Count int64
	// IsCount marks aggregate results.
	IsCount bool
}

// execStmt runs one parsed statement inside the server (s.mu held).
func (s *Server) execStmt(st *Statement) (*ResultSet, error) {
	switch st.Kind {
	case StmtCreateTable:
		return nil, s.createTable(st)
	case StmtDropTable:
		return nil, s.dropTable(st.Table)
	case StmtCreateIndex:
		return nil, s.createIndex(st)
	case StmtInsert:
		return nil, s.insertRow(st)
	case StmtSelect:
		return s.selectRows(st)
	case StmtUpdate:
		return nil, s.updateRows(st)
	case StmtDelete:
		return nil, s.deleteRows(st)
	case StmtLockTables:
		return nil, s.lockTable(st)
	case StmtUnlockTables:
		s.lockedTable = ""
		return nil, nil
	case StmtFlushTables:
		return nil, s.flushTables()
	case StmtFlushPrivileges:
		return nil, s.flushPrivileges()
	case StmtOptimizeTable:
		return nil, s.optimizeTable(st.Table)
	case StmtGrant:
		s.pendingGrants++
		return nil, nil
	default:
		return nil, fmt.Errorf("sqldb: unhandled statement kind %d", st.Kind)
	}
}

func (s *Server) lookupTable(name string) (*table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", name)
	}
	return t, nil
}

func (s *Server) createTable(st *Statement) error {
	if _, exists := s.tables[st.Table]; exists {
		return fmt.Errorf("sqldb: table %q already exists", st.Table)
	}
	t := &table{name: st.Table, cols: append([]ColDef(nil), st.Cols...), indexes: make(map[string]*btree)}
	if err := s.openTableFD(t); err != nil {
		return err
	}
	if err := s.logDurable("create table", []durable.Op{schemaOp(t, nil)}); err != nil {
		_ = s.env.FDs().Close(t.fd)
		return err
	}
	s.tables[st.Table] = t
	return nil
}

// openTableFD opens the table's datafile descriptor — the point where the
// fd-competition condition bites.
func (s *Server) openTableFD(t *table) error {
	fd, err := s.env.FDs().Open(Owner)
	if err != nil {
		if s.faults.Enabled(MechFDCompetition) {
			return faultinject.FailCause(MechFDCompetition, taxonomy.SymptomError,
				"cannot open table datafile: descriptors exhausted by a co-hosted server", err)
		}
		return fmt.Errorf("sqldb: open table %q: %w", t.name, err)
	}
	t.fd, t.hasFD = fd, true
	return nil
}

func (s *Server) dropTable(name string) error {
	t, err := s.lookupTable(name)
	if err != nil {
		return err
	}
	ops := []durable.Op{{Kind: durable.OpDelete, Key: schemaKey(name)}}
	for id := range t.rows {
		ops = append(ops, durable.Op{Kind: durable.OpDelete, Key: rowKey(name, id)})
	}
	if err := s.logDurable("drop table", ops); err != nil {
		return err
	}
	if t.hasFD {
		_ = s.env.FDs().Close(t.fd)
	}
	if s.env.Disk().Exists(t.dataFile()) {
		_ = s.env.Disk().Remove(t.dataFile())
	}
	delete(s.tables, name)
	return nil
}

func (s *Server) createIndex(st *Statement) error {
	t, err := s.lookupTable(st.Table)
	if err != nil {
		return err
	}
	ci, err := t.colIndex(st.IndexCol)
	if err != nil {
		return err
	}
	if _, dup := t.indexes[st.IndexCol]; dup {
		return fmt.Errorf("sqldb: column %q already indexed", st.IndexCol)
	}
	if err := s.logDurable("create index",
		[]durable.Op{schemaOp(t, append(indexList(t), st.IndexCol))}); err != nil {
		return err
	}
	idx := newBTree()
	for rowID, row := range t.rows {
		if row != nil {
			idx.Insert(row[ci], rowID)
		}
	}
	t.indexes[st.IndexCol] = idx
	return nil
}

func (s *Server) insertRow(st *Statement) error {
	t, err := s.lookupTable(st.Table)
	if err != nil {
		return err
	}
	if len(st.Values) != len(t.cols) {
		return fmt.Errorf("sqldb: table %q has %d columns, insert supplies %d",
			t.name, len(t.cols), len(st.Values))
	}
	for i, v := range st.Values {
		if t.cols[i].Type == TypeInt && !v.IsInt {
			return fmt.Errorf("sqldb: column %q wants INT, got %q", t.cols[i].Name, v.S)
		}
	}
	// Charge the datafile before committing the row.
	if err := s.env.Disk().Append(t.dataFile(), Owner, rowBytes); err != nil {
		switch {
		case errors.Is(err, simenv.ErrFileTooLarge) && s.faults.Enabled(MechDBFileLimit):
			return faultinject.FailCause(MechDBFileLimit, taxonomy.SymptomError,
				"database file exceeds the maximum allowed file size", err)
		case errors.Is(err, simenv.ErrDiskFull) && s.faults.Enabled(MechFSFull):
			return faultinject.FailCause(MechFSFull, taxonomy.SymptomError,
				"full file system prevents all operations", err)
		default:
			return fmt.Errorf("sqldb: insert into %q: %w", t.name, err)
		}
	}
	rowID := len(t.rows)
	row := append(Row(nil), st.Values...)
	if err := s.logDurable("insert", []durable.Op{rowOp(t.name, rowID, row)}); err != nil {
		// Un-charge the datafile bytes the uncommitted row claimed.
		_ = s.env.Disk().Shrink(t.dataFile(), rowBytes)
		return err
	}
	t.rows = append(t.rows, row)
	t.live++
	for col, idx := range t.indexes {
		ci, cerr := t.colIndex(col)
		if cerr != nil {
			return cerr
		}
		idx.Insert(row[ci], rowID)
	}
	return nil
}

func (s *Server) selectRows(st *Statement) (*ResultSet, error) {
	t, err := s.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}

	if st.CountCol != "" {
		if t.live == 0 && s.faults.Enabled(MechCountEmpty) {
			s.crash()
			return nil, faultinject.Fail(MechCountEmpty, taxonomy.SymptomCrash,
				"COUNT on an empty table dereferences the missing first block")
		}
		if st.CountCol != "*" {
			if _, err := t.colIndex(st.CountCol); err != nil {
				return nil, err
			}
		}
		count := int64(0)
		for rowID, row := range t.rows {
			if row == nil {
				continue
			}
			if st.Where != nil && !s.rowMatches(t, rowID, st.Where) {
				continue
			}
			count++
		}
		return &ResultSet{IsCount: true, Count: count}, nil
	}

	matched, err := s.matchRows(t, st.Where)
	if err != nil {
		return nil, err
	}

	if st.OrderBy != "" {
		ci, err := t.colIndex(st.OrderBy)
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 && s.faults.Enabled(MechOrderByEmpty) {
			s.crash()
			return nil, faultinject.Fail(MechOrderByEmpty, taxonomy.SymptomCrash,
				"sort setup reads uninitialized state when zero records match")
		}
		if idx, ok := t.indexes[st.OrderBy]; ok {
			matched = orderByIndex(idx, matched, st.OrderDesc)
		} else {
			sort.SliceStable(matched, func(i, j int) bool {
				cmp := t.rows[matched[i]][ci].Compare(t.rows[matched[j]][ci])
				if st.OrderDesc {
					return cmp > 0
				}
				return cmp < 0
			})
		}
	}

	if st.Limit >= 0 && len(matched) > st.Limit {
		matched = matched[:st.Limit]
	}

	cols, proj, err := projection(t, st.SelectCols)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Cols: cols}
	for _, rowID := range matched {
		src := t.rows[rowID]
		out := make(Row, len(proj))
		for i, ci := range proj {
			out[i] = src[ci]
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}

func projection(t *table, sel []string) (names []string, colIdx []int, err error) {
	if len(sel) == 1 && sel[0] == "*" {
		for i, c := range t.cols {
			names = append(names, c.Name)
			colIdx = append(colIdx, i)
		}
		return names, colIdx, nil
	}
	for _, name := range sel {
		ci, err := t.colIndex(name)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		colIdx = append(colIdx, ci)
	}
	return names, colIdx, nil
}

// orderByIndex orders the matched row ids by walking the sort column's
// B-tree instead of sorting — the index-order scan a real executor would
// plan. Row ids within one key keep ascending order (the stable-sort
// behaviour of the scan path).
func orderByIndex(idx *btree, matched []int, desc bool) []int {
	want := make(map[int]bool, len(matched))
	for _, rowID := range matched {
		want[rowID] = true
	}
	var (
		groups  [][]int
		perKey  []int
		lastKey *Value
	)
	flush := func() {
		if len(perKey) > 0 {
			sort.Ints(perKey)
			groups = append(groups, perKey)
			perKey = nil
		}
	}
	idx.Scan(func(key Value, rowID int) bool {
		if lastKey == nil || lastKey.Compare(key) != 0 {
			flush()
			k := key
			lastKey = &k
		}
		if want[rowID] {
			perKey = append(perKey, rowID)
		}
		return true
	})
	flush()
	if desc {
		for i, j := 0, len(groups)-1; i < j; i, j = i+1, j-1 {
			groups[i], groups[j] = groups[j], groups[i]
		}
	}
	ordered := make([]int, 0, len(matched))
	for _, g := range groups {
		ordered = append(ordered, g...)
	}
	return ordered
}

// matchRows returns the live row ids satisfying the condition, in row-id
// order. Equality conditions on an indexed column use the B-tree; everything
// else scans.
func (s *Server) matchRows(t *table, cond *Cond) ([]int, error) {
	if cond != nil {
		if _, err := t.colIndex(cond.Col); err != nil {
			return nil, err
		}
		if idx, ok := t.indexes[cond.Col]; ok && cond.Op == "=" {
			rows := idx.Lookup(cond.Val)
			sort.Ints(rows)
			live := rows[:0]
			for _, rowID := range rows {
				if t.rows[rowID] != nil {
					live = append(live, rowID)
				}
			}
			return live, nil
		}
	}
	matched := make([]int, 0, t.live)
	for rowID, row := range t.rows {
		if row == nil {
			continue
		}
		if cond != nil && !s.rowMatches(t, rowID, cond) {
			continue
		}
		matched = append(matched, rowID)
	}
	return matched, nil
}

func (s *Server) rowMatches(t *table, rowID int, cond *Cond) bool {
	ci, err := t.colIndex(cond.Col)
	if err != nil {
		return false
	}
	return cond.Matches(t.rows[rowID][ci])
}

func (s *Server) updateRows(st *Statement) error {
	t, err := s.lookupTable(st.Table)
	if err != nil {
		return err
	}
	ci, err := t.colIndex(st.SetCol)
	if err != nil {
		return err
	}
	idx := t.indexes[st.SetCol]

	newVal := func(old Value) (Value, error) {
		if st.SetDelta != 0 {
			if !old.IsInt {
				return Value{}, fmt.Errorf("sqldb: arithmetic update on non-integer column %q", st.SetCol)
			}
			return IntValue(old.I + st.SetDelta), nil
		}
		return st.SetVal, nil
	}

	// Plan the statement's final row images with the fixed algorithm and
	// WAL them before touching memory: the log carries the statement as one
	// atomic batch, so replay never sees a half-applied UPDATE even when the
	// in-place scan below dies halfway through.
	var planOps []durable.Op
	for rowID, row := range t.rows {
		if row == nil {
			continue
		}
		if st.Where != nil && !s.rowMatches(t, rowID, st.Where) {
			continue
		}
		nv, nerr := newVal(row[ci])
		if nerr != nil {
			return nerr
		}
		updated := append(Row(nil), row...)
		updated[ci] = nv
		planOps = append(planOps, rowOp(t.name, rowID, updated))
	}
	if len(planOps) > 0 {
		if err := s.logDurable("update", planOps); err != nil {
			return err
		}
	}

	// The seeded index-update-scan bug: when the updated column is indexed
	// and the bug is active, the engine walks the index and updates rows in
	// place. An update that moves a key *forward* is re-encountered later in
	// the same scan; the engine notices the duplicate and dies, as the
	// original did when the index grew duplicate values.
	if idx != nil && s.faults.Enabled(MechIndexUpdateScan) {
		updated := make(map[int]bool)
		var ferr error
		idx.Scan(func(key Value, rowID int) bool {
			row := t.rows[rowID]
			if row == nil {
				return true
			}
			if st.Where != nil && !s.rowMatches(t, rowID, st.Where) {
				return true
			}
			if updated[rowID] {
				s.crash()
				ferr = faultinject.Fail(MechIndexUpdateScan, taxonomy.SymptomCrash,
					"index scan re-encountered a row it already updated: duplicate index values")
				return false
			}
			nv, nerr := newVal(row[ci])
			if nerr != nil {
				ferr = nerr
				return false
			}
			idx.Delete(row[ci], rowID)
			row[ci] = nv
			idx.Insert(nv, rowID)
			updated[rowID] = true
			return true
		})
		return ferr
	}

	// The fixed algorithm (the paper's fix): first scan for all matching
	// rows, then update the found rows.
	var targets []int
	for rowID, row := range t.rows {
		if row == nil {
			continue
		}
		if st.Where != nil && !s.rowMatches(t, rowID, st.Where) {
			continue
		}
		targets = append(targets, rowID)
	}
	for _, rowID := range targets {
		nv, nerr := newVal(t.rows[rowID][ci])
		if nerr != nil {
			return nerr
		}
		if idx != nil {
			idx.Delete(t.rows[rowID][ci], rowID)
			idx.Insert(nv, rowID)
		}
		t.rows[rowID][ci] = nv
	}
	return nil
}

func (s *Server) deleteRows(st *Statement) error {
	t, err := s.lookupTable(st.Table)
	if err != nil {
		return err
	}
	// WAL the victims' tombstones as one atomic batch before deleting.
	var ops []durable.Op
	for rowID, row := range t.rows {
		if row == nil {
			continue
		}
		if st.Where != nil && !s.rowMatches(t, rowID, st.Where) {
			continue
		}
		ops = append(ops, rowOp(t.name, rowID, nil))
	}
	if len(ops) > 0 {
		if err := s.logDurable("delete", ops); err != nil {
			return err
		}
	}
	for rowID, row := range t.rows {
		if row == nil {
			continue
		}
		if st.Where != nil && !s.rowMatches(t, rowID, st.Where) {
			continue
		}
		for col, idx := range t.indexes {
			ci, cerr := t.colIndex(col)
			if cerr != nil {
				return cerr
			}
			idx.Delete(row[ci], rowID)
		}
		t.rows[rowID] = nil
		t.live--
	}
	return nil
}

func (s *Server) lockTable(st *Statement) error {
	if _, err := s.lookupTable(st.Table); err != nil {
		return err
	}
	s.lockedTable = st.Table
	return nil
}

func (s *Server) flushTables() error {
	if s.lockedTable != "" && s.faults.Enabled(MechFlushAfterLock) {
		s.crash()
		return faultinject.Fail(MechFlushAfterLock, taxonomy.SymptomCrash,
			"FLUSH TABLES while holding LOCK TABLES frees the locked handler twice")
	}
	// Healthy behaviour: close and reopen every table descriptor.
	for _, t := range s.tables {
		if t.hasFD {
			_ = s.env.FDs().Close(t.fd)
			t.hasFD = false
		}
		if err := s.openTableFD(t); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) optimizeTable(name string) error {
	t, err := s.lookupTable(name)
	if err != nil {
		return err
	}
	if s.faults.Enabled(MechOptimizeCrash) {
		s.crash()
		return faultinject.Fail(MechOptimizeCrash, taxonomy.SymptomCrash,
			"table rebuild uses an uninitialized merge buffer")
	}
	// Compact row holes and rebuild indexes. Row ids shift, so the WAL batch
	// rewrites every surviving row at its new id and drops the keys beyond
	// the compacted length — one atomic batch, like the datafile rewrite.
	var rows []Row
	for _, row := range t.rows {
		if row != nil {
			rows = append(rows, row)
		}
	}
	var ops []durable.Op
	for id, row := range rows {
		ops = append(ops, rowOp(t.name, id, row))
	}
	for id := len(rows); id < len(t.rows); id++ {
		ops = append(ops, durable.Op{Kind: durable.OpDelete, Key: rowKey(t.name, id)})
	}
	if len(ops) > 0 {
		if err := s.logDurable("optimize", ops); err != nil {
			return err
		}
	}
	t.rows = rows
	t.live = len(rows)
	for col := range t.indexes {
		ci, cerr := t.colIndex(col)
		if cerr != nil {
			return cerr
		}
		idx := newBTree()
		for rowID, row := range t.rows {
			idx.Insert(row[ci], rowID)
		}
		t.indexes[col] = idx
	}
	// Rewrite the datafile at its compacted size.
	if s.env.Disk().Exists(t.dataFile()) {
		if err := s.env.Disk().Truncate(t.dataFile()); err != nil {
			return err
		}
	}
	if t.live > 0 {
		if err := s.env.Disk().Append(t.dataFile(), Owner, int64(t.live)*rowBytes); err != nil {
			return fmt.Errorf("sqldb: optimize rewrite: %w", err)
		}
	}
	return nil
}
