package obsv

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// usDur converts schema microseconds back to a duration.
func usDur(us int64) time.Duration { return time.Duration(us) * time.Microsecond }

// narrativeVerb maps a span to its narrative verb, or "" for spans the
// narrative elides (backoffs, checkpoints, notes).
func narrativeVerb(sp Span) string {
	switch sp.Kind {
	case SpanAction:
		switch sp.Rung {
		case "retry":
			return "retried"
		case "microreboot":
			return "microrebooted"
		case "restore":
			return "restored"
		case "restart":
			return "clean-restarted"
		case "degraded":
			return "degraded"
		default:
			if sp.Rung != "" {
				return sp.Rung
			}
			return "recovered"
		}
	case SpanWatchdog:
		return "watchdogged"
	case SpanDecision:
		switch sp.Outcome {
		case "breaker-open":
			return "breaker-opened"
		case "crash-loop":
			return "crash-loop-tripped"
		case "degraded-enter":
			return "went-degraded"
		default:
			return ""
		}
	default:
		return ""
	}
}

// outcomeVerb closes the narrative.
func outcomeVerb(outcome string) string {
	switch outcome {
	case OutcomeRecovered:
		return "served"
	case OutcomeDegraded:
		return "served-degraded"
	case OutcomeShed:
		return "shed"
	case OutcomeFastFail:
		return "fast-failed"
	default:
		return "lost"
	}
}

// Narrative renders the episode as the one-line story the timeline report
// leads with: activated → retried ×N → microrebooted → served-degraded.
// Consecutive identical verbs collapse into ×N runs.
func (e *Episode) Narrative() string {
	parts := []string{"activated"}
	counts := []int{1}
	push := func(verb string) {
		if verb == "" {
			return
		}
		if parts[len(parts)-1] == verb {
			counts[len(counts)-1]++
			return
		}
		parts = append(parts, verb)
		counts = append(counts, 1)
	}
	for _, sp := range e.Spans {
		push(narrativeVerb(sp))
	}
	push(outcomeVerb(e.Outcome))
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(p)
		if counts[i] > 1 {
			fmt.Fprintf(&b, " ×%d", counts[i])
		}
	}
	return b.String()
}

// spanDetail renders the right-hand detail column for one span line.
func spanDetail(sp Span) string {
	var parts []string
	if sp.Rung != "" {
		parts = append(parts, "rung "+sp.Rung)
	}
	if sp.Attempt > 0 {
		parts = append(parts, fmt.Sprintf("attempt %d", sp.Attempt))
	}
	if d := usDur(sp.EndUS - sp.StartUS); d > 0 {
		parts = append(parts, d.String())
	}
	if sp.Outcome != "" {
		parts = append(parts, sp.Outcome)
	}
	if sp.Note != "" {
		parts = append(parts, sp.Note)
	}
	return strings.Join(parts, ", ")
}

// WriteTimeline renders the per-episode timeline report: for each episode a
// header, its narrative, and one line per span with t+offset virtual
// timestamps. Deterministic for deterministic inputs.
func WriteTimeline(w io.Writer, episodes []*Episode) error {
	var b strings.Builder
	for i, e := range episodes {
		if i > 0 {
			b.WriteByte('\n')
		}
		id := e.Mechanism
		if e.FaultID != "" {
			id = e.FaultID + " / " + id
		}
		fmt.Fprintf(&b, "episode %03d  [%s]  %s  op=%q\n", e.ID, e.Class, id, e.Op)
		fmt.Fprintf(&b, "  %s\n", e.Narrative())
		for _, sp := range e.Spans {
			fmt.Fprintf(&b, "  t+%-12s %-11s %s\n",
				usDur(sp.StartUS-e.StartUS).String(), sp.Kind, spanDetail(sp))
		}
		fmt.Fprintf(&b, "  outcome: %s after %d retries in %s", e.Outcome, e.Retries, e.Duration())
		if e.FinalRung != "" {
			fmt.Fprintf(&b, " at rung %s", e.FinalRung)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
