package component

import (
	"encoding/json"
	"sort"
	"strconv"
	"sync"
)

// Store is the externalized session-state store of a componentized
// application: a namespaced key-value map that lives *outside* every
// component, so killing a component — or restarting the whole process —
// never destroys a session. It is the crash-only design's load-bearing
// move: components may crash freely precisely because nothing worth keeping
// lives inside them.
//
// Buckets namespace the state by concern ("httpd/sessions",
// "sqldb/prepared", ...). All methods are safe for concurrent use; sibling
// components read and write the store while another component is
// mid-reboot.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string]string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{buckets: make(map[string]map[string]string)}
}

// Put sets key in bucket to value.
func (s *Store) Put(bucket, key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string]string)
		s.buckets[bucket] = b
	}
	b[key] = value
}

// Get returns the value of key in bucket and whether it exists.
func (s *Store) Get(bucket, key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.buckets[bucket][key]
	return v, ok
}

// Delete removes key from bucket; absent keys are ignored.
func (s *Store) Delete(bucket, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.buckets[bucket], key)
}

// Incr increments the integer value of key in bucket by one and returns the
// new value. A missing or non-integer value counts as zero — the session
// sequence numbers this backs start at one.
func (s *Store) Incr(bucket, key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string]string)
		s.buckets[bucket] = b
	}
	n, _ := strconv.ParseInt(b[key], 10, 64)
	n++
	b[key] = strconv.FormatInt(n, 10)
	return n
}

// Len returns the number of keys in bucket.
func (s *Store) Len(bucket string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buckets[bucket])
}

// Keys returns the keys of bucket in sorted order.
func (s *Store) Keys(bucket string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.buckets[bucket]))
	for k := range s.buckets[bucket] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot serializes the whole store deterministically (buckets and keys
// sorted) — the hook that lets an experiment checkpoint the externalized
// state alongside application state.
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type bucketState struct {
		Name string      `json:"name"`
		KV   [][2]string `json:"kv"`
	}
	names := make([]string, 0, len(s.buckets))
	for name := range s.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]bucketState, 0, len(names))
	for _, name := range names {
		bs := bucketState{Name: name}
		keys := make([]string, 0, len(s.buckets[name]))
		for k := range s.buckets[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bs.KV = append(bs.KV, [2]string{k, s.buckets[name][k]})
		}
		out = append(out, bs)
	}
	return json.Marshal(out)
}

// Restore replaces the store's contents from a Snapshot.
func (s *Store) Restore(snapshot []byte) error {
	type bucketState struct {
		Name string      `json:"name"`
		KV   [][2]string `json:"kv"`
	}
	var in []bucketState
	if err := json.Unmarshal(snapshot, &in); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buckets = make(map[string]map[string]string, len(in))
	for _, bs := range in {
		b := make(map[string]string, len(bs.KV))
		for _, kv := range bs.KV {
			b[kv[0]] = kv[1]
		}
		s.buckets[bs.Name] = b
	}
	return nil
}

// Reset empties the store — the one deliberate way to lose sessions (a
// datacenter-level wipe, not any recovery mechanism's side effect).
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buckets = make(map[string]map[string]string)
}
