package corpusgen

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"faultstudy/internal/parallel"
)

// Site serves the generated population as a synthetic GNATS-style PR site:
// a root page linking chunked index pages, each linking individual PR pages.
// Each fault renders as one canonical PR plus zero to three duplicate PRs
// (drawn from the corpus's seed stream), so a 50k-fault population yields
// well over 100k crawlable PR pages.
//
// Pages are rendered lazily — a page body is a pure function of its URL and
// the corpus — so the site's memory footprint is the duplicate-count prefix
// sums alone, regardless of population size.
type Site struct {
	c       *Corpus
	perPage int
	// cum[i] is the number of PR pages owned by faults [0, i); cum[n] is the
	// total. PR number p belongs to the fault whose [cum[i], cum[i+1]) range
	// covers it, ordinal p-cum[i] (0 is canonical, >0 duplicates).
	cum []int
}

// sitePerPage is how many PR links one index page carries.
const sitePerPage = 500

// maxDupPages bounds the per-fault duplicate draw (0..3).
const maxDupPages = 4

// dupCount draws fault i's duplicate-page count from the site segment of
// the corpus seed stream (disjoint from the fault and episode streams).
func (c *Corpus) dupCount(i int) int {
	h := parallel.Derive(c.seed, uint64(c.spec.Faults+c.spec.Episodes)+uint64(i))
	return int(uint64(h) % maxDupPages)
}

// NewSite materializes the site's only state: the duplicate-count prefix
// sums over the population.
func NewSite(c *Corpus) *Site {
	n := c.spec.Faults
	cum := make([]int, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + 1 + c.dupCount(i)
	}
	return &Site{c: c, perPage: sitePerPage, cum: cum}
}

// PRPages is the number of PR pages (canonical plus duplicates).
func (s *Site) PRPages() int { return s.cum[len(s.cum)-1] }

// IndexPages is the number of chunked index pages.
func (s *Site) IndexPages() int { return (s.PRPages() + s.perPage - 1) / s.perPage }

// PageCount is every crawlable page: the root, the indexes, and the PRs.
func (s *Site) PageCount() int { return 1 + s.IndexPages() + s.PRPages() }

// ServeHTTP renders the page for one URL. Unknown paths 404.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/gen":
		s.serveRoot(w)
	case strings.HasPrefix(path, "/gen/index/"):
		k, err := strconv.Atoi(strings.TrimPrefix(path, "/gen/index/"))
		if err != nil || k < 0 || k >= s.IndexPages() {
			http.NotFound(w, r)
			return
		}
		s.serveIndex(w, k)
	case strings.HasPrefix(path, "/gen/pr/"):
		n, err := strconv.Atoi(strings.TrimPrefix(path, "/gen/pr/"))
		if err != nil || n < 0 || n >= s.PRPages() {
			http.NotFound(w, r)
			return
		}
		s.servePR(w, n)
	default:
		http.NotFound(w, r)
	}
}

// serveRoot lists every index chunk.
func (s *Site) serveRoot(w http.ResponseWriter) {
	var b strings.Builder
	b.WriteString("<html><body><h1>Generated fault PR database</h1>\n<ul>\n")
	for k := 0; k < s.IndexPages(); k++ {
		fmt.Fprintf(&b, "<li><a href=\"/gen/index/%d\">PRs %d&ndash;%d</a></li>\n",
			k, k*s.perPage, min(s.PRPages(), (k+1)*s.perPage)-1)
	}
	b.WriteString("</ul></body></html>\n")
	writePage(w, b.String())
}

// serveIndex lists one chunk of PR links, plus the next chunk for crawlers
// that land mid-index.
func (s *Site) serveIndex(w http.ResponseWriter, k int) {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h2>PR index %d</h2>\n<ul>\n", k)
	for n := k * s.perPage; n < min(s.PRPages(), (k+1)*s.perPage); n++ {
		fmt.Fprintf(&b, "<li><a href=\"/gen/pr/%d\">PR %d</a></li>\n", n, n)
	}
	b.WriteString("</ul>\n")
	if k+1 < s.IndexPages() {
		fmt.Fprintf(&b, "<a href=\"/gen/index/%d\">next page</a>\n", k+1)
	}
	b.WriteString("</body></html>\n")
	writePage(w, b.String())
}

// servePR renders one PR page: the canonical GNATS-style report for ordinal
// 0, a duplicate report pointing at the canonical PR otherwise.
func (s *Site) servePR(w http.ResponseWriter, n int) {
	// The owning fault is the last i with cum[i] <= n.
	i := sort.SearchInts(s.cum, n+1) - 1
	ordinal := n - s.cum[i]
	f := s.c.FaultAt(i)
	var b strings.Builder
	b.WriteString("<html><body><pre>\n")
	if ordinal == 0 {
		fmt.Fprintf(&b, ">Number:         %d\n", n)
		fmt.Fprintf(&b, ">Category:       %s\n", f.AppName)
		fmt.Fprintf(&b, ">Synopsis:       %s\n", f.synopsis())
		fmt.Fprintf(&b, ">Severity:       %s\n", f.Severity)
		fmt.Fprintf(&b, ">Arrival-Date:   %s\n", filedDate(f.Index).Format("Mon Jan 2 15:04:05 2006"))
		fmt.Fprintf(&b, ">Description:\n%s\n", f.description())
		fmt.Fprintf(&b, ">How-To-Repeat:\n%s\n", f.howToRepeat())
	} else {
		canonical := s.cum[i]
		fmt.Fprintf(&b, ">Number:         %d\n", n)
		fmt.Fprintf(&b, ">Category:       %s\n", f.AppName)
		fmt.Fprintf(&b, ">Synopsis:       duplicate report: %s\n", f.synopsis())
		fmt.Fprintf(&b, ">Severity:       %s\n", f.Severity)
		fmt.Fprintf(&b, ">Description:\nSame failure as PR %d; closing as duplicate.\n", canonical)
	}
	b.WriteString("</pre>\n")
	if ordinal > 0 {
		fmt.Fprintf(&b, "<a href=\"/gen/pr/%d\">canonical PR</a>\n", s.cum[i])
	}
	b.WriteString("</body></html>\n")
	writePage(w, b.String())
}

// writePage writes one HTML page.
func writePage(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(body))
}
