package simenv

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentEnvironmentUse hammers every environment component from
// multiple goroutines; run with -race this is the package's thread-safety
// proof.
func TestConcurrentEnvironmentUse(t *testing.T) {
	env := New(99, WithFDLimit(1024), WithProcLimit(1024), WithDiskBytes(1<<24))
	const workers = 8
	const iters = 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			owner := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				if fd, err := env.FDs().Open(owner); err == nil && i%2 == 0 {
					_ = env.FDs().Close(fd)
				}
				if pid, err := env.Procs().Spawn(owner); err == nil && i%3 == 0 {
					_ = env.Procs().Kill(pid)
				}
				_ = env.Disk().Append("/tmp/"+owner, owner, 16)
				_, _, _ = env.DNS().Lookup("h")
				_ = env.Net().BindPort(1000+w*1000+i, owner)
				_ = env.Sched().Interleave("p", 4)
				_ = env.Entropy().Draw(1)
				env.Advance(time.Millisecond)
				if i%50 == 0 {
					env.ReclaimOwner(owner)
				}
			}
			env.ReclaimOwner(owner)
		}()
	}
	wg.Wait()

	if env.FDs().InUse() < 0 || env.FDs().InUse() > env.FDs().Limit() {
		t.Errorf("fd accounting corrupted: %d", env.FDs().InUse())
	}
	if env.Disk().Used() > env.Disk().Capacity() {
		t.Errorf("disk accounting corrupted: %d > %d", env.Disk().Used(), env.Disk().Capacity())
	}
}

// TestConcurrentServeSafety drives one environment from concurrent
// goroutines through the scheduler and clock only — the paths the recovery
// manager touches while applications run.
func TestConcurrentRerollAndInterleave(t *testing.T) {
	env := New(5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = env.Sched().Interleave("x", 8)
				if i%100 == 0 {
					env.Reroll()
				}
			}
		}()
	}
	wg.Wait()
}
