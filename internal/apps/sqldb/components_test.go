package sqldb

import (
	"errors"
	"testing"

	"faultstudy/internal/component"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

func newComponentized(t *testing.T, mechs ...string) *Componentized {
	t.Helper()
	env := simenv.New(1, simenv.WithFDLimit(64))
	c := Componentize(New(env, faultinject.NewSet(mechs...)), component.NewStore())
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

// TestSessionReattachAfterListenerReboot verifies session externalization: a
// listener reboot drops every TCP connection, but the session re-attaches
// transparently on its next statement.
func TestSessionReattachAfterListenerReboot(t *testing.T) {
	c := newComponentized(t)
	if err := c.Connect("alice", "10.0.0.7"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := c.Exec("alice", "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Exec("alice", "INSERT INTO t VALUES (1, 'a')"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if c.srv.Connections() != 1 {
		t.Fatalf("connections = %d", c.srv.Connections())
	}

	if err := c.Tree().Reboot(CompListener); err != nil {
		t.Fatalf("reboot listener: %v", err)
	}
	if c.srv.Connections() != 0 {
		t.Fatal("listener reboot kept connections")
	}
	if !c.SessionAlive("alice") {
		t.Fatal("session died with the listener")
	}
	// The next statement re-attaches without an explicit reconnect.
	rs, err := c.Exec("alice", "SELECT id FROM t")
	if err != nil {
		t.Fatalf("select after reboot: %v", err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rs.Rows))
	}
	if c.srv.Connections() != 1 {
		t.Fatalf("re-attach made %d connections", c.srv.Connections())
	}
}

// TestPreparedStatementsSurviveParserReboot verifies that prepared
// statements, parsed at Prepare time and externalized, keep executing while
// the parser is down — and that ad-hoc SQL correctly fails fast.
func TestPreparedStatementsSurviveParserReboot(t *testing.T) {
	c := newComponentized(t)
	if err := c.Connect("alice", "10.0.0.7"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := c.Exec("alice", "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Prepare("alice", "all", "SELECT id FROM t"); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := c.Prepare("alice", "bad", "NOT SQL AT ALL"); err == nil {
		t.Fatal("prepare accepted garbage")
	}

	if err := c.Tree().Kill(CompParser); err != nil {
		t.Fatalf("kill parser: %v", err)
	}
	var de *component.DownError
	if _, err := c.Exec("alice", "SELECT id FROM t"); !errors.As(err, &de) || de.Component != CompParser {
		t.Fatalf("ad-hoc SQL with parser down: %v", err)
	}
	if _, err := c.ExecPrepared("alice", "all"); err != nil {
		t.Fatalf("prepared statement with parser down: %v", err)
	}
	if err := c.Tree().Restart(CompParser); err != nil {
		t.Fatalf("restart parser: %v", err)
	}
	if _, err := c.Exec("alice", "SELECT id FROM t"); err != nil {
		t.Fatalf("ad-hoc SQL after parser restart: %v", err)
	}
}

// TestStorageRebootReleasesTableDescriptors verifies that crash-stopping the
// storage part frees table descriptors (the fd-competition remedy) and that
// its restart reopens them.
func TestStorageRebootReleasesTableDescriptors(t *testing.T) {
	c := newComponentized(t)
	if err := c.Connect("alice", "10.0.0.7"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := c.Exec("alice", "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Tree().Kill(CompStorage); err != nil {
		t.Fatalf("kill storage: %v", err)
	}
	c.srv.mu.Lock()
	anyFD := false
	for _, tb := range c.srv.tables {
		anyFD = anyFD || tb.hasFD
	}
	c.srv.mu.Unlock()
	if anyFD {
		t.Fatal("storage kill kept table descriptors")
	}
	var de *component.DownError
	if _, err := c.Exec("alice", "SELECT id FROM t"); !errors.As(err, &de) || de.Component != CompStorage {
		t.Fatalf("query with storage down: %v", err)
	}
	if err := c.Tree().Restart(CompStorage); err != nil {
		t.Fatalf("restart storage: %v", err)
	}
	if _, err := c.Exec("alice", "SELECT id FROM t"); err != nil {
		t.Fatalf("query after storage restart: %v", err)
	}
}

// TestDBContainCrash verifies crash containment and component attribution on
// the database's seeded bugs.
func TestDBContainCrash(t *testing.T) {
	c := newComponentized(t, MechCountEmpty)
	if err := c.Connect("alice", "10.0.0.7"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := c.Exec("alice", "CREATE TABLE empty (id INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	_, err := c.Exec("alice", "SELECT COUNT(*) FROM empty")
	fe, ok := faultinject.AsFailure(err)
	if !ok || fe.Mechanism != MechCountEmpty {
		t.Fatalf("count on empty: %v", err)
	}
	if c.Running() {
		t.Fatal("process alive after seeded crash")
	}
	comp, ok := c.ComponentFor(MechCountEmpty)
	if !ok || comp != CompExecutor {
		t.Fatalf("ComponentFor = %q/%v", comp, ok)
	}
	c.ContainCrash()
	if err := c.Tree().Reboot(comp); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if _, err := c.Exec("alice", "SELECT id FROM empty"); err != nil {
		t.Fatalf("select after contained reboot: %v", err)
	}
}
