package experiment

import (
	"io"

	"faultstudy/internal/obsv"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
)

// Telemetry bundles the observability sinks one experiment run writes into: a
// metrics registry and an episode recorder. A nil *Telemetry disables
// instrumentation everywhere it is accepted — the zero-cost-off contract.
type Telemetry struct {
	// Registry receives metrics (counters, gauges, histograms).
	Registry *obsv.Registry
	// Recorder receives fault episodes (the trace layer).
	Recorder *obsv.Recorder
}

// NewTelemetry builds an empty telemetry sink pair.
func NewTelemetry() *Telemetry {
	return &Telemetry{Registry: obsv.NewRegistry(), Recorder: obsv.NewRecorder()}
}

// ClassFor resolves a mechanism key to its EI/EDN/EDT short class name via
// the mechanism catalogue, or "?" for keys outside it (the supervisor's
// pseudo-mechanisms).
func ClassFor(mechanism string) string {
	if m, ok := Registry().Lookup(mechanism); ok {
		return m.Class().Short()
	}
	return "?"
}

// observer builds a bridge observer writing into the telemetry sinks under
// the given identity, or nil when telemetry is disabled.
func (t *Telemetry) observer(ctx obsv.Context) *obsv.Observer {
	if t == nil {
		return nil
	}
	return obsv.NewObserver(t.Registry, t.Recorder, ctx)
}

// workloadHook returns the workload-generation hook, or nil when telemetry is
// disabled (a typed-nil Hook would defeat the generators' nil checks).
func (t *Telemetry) workloadHook() *obsv.WorkloadHook {
	if t == nil {
		return nil
	}
	return &obsv.WorkloadHook{Registry: t.Registry}
}

// Episodes returns the recorded fault episodes (nil when disabled).
func (t *Telemetry) Episodes() []*obsv.Episode {
	if t == nil {
		return nil
	}
	return t.Recorder.Episodes()
}

// Summary renders the per-class telemetry table over the recorded episodes.
func (t *Telemetry) Summary() string {
	return obsv.RenderSummary(obsv.Summarize(t.Episodes()))
}

// WriteTrace writes the recorded episodes as JSONL.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	return obsv.WriteJSONL(w, t.Episodes())
}

// WriteTimeline writes the human-readable episode timelines.
func (t *Telemetry) WriteTimeline(w io.Writer) error {
	return obsv.WriteTimeline(w, t.Episodes())
}

// WritePrometheus writes the metrics registry in the Prometheus text format.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.Registry.WritePrometheus(w)
}

// WriteMetricsJSON writes the metrics registry as JSON.
func (t *Telemetry) WriteMetricsJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.Registry.WriteJSON(w)
}

// superviseConfig returns cfg with its trace hook chained through an observer
// for the given identity; with telemetry disabled cfg is returned unchanged.
// The returned observer is nil exactly when telemetry is disabled.
func (t *Telemetry) superviseConfig(cfg supervise.Config, ctx obsv.Context) (supervise.Config, *obsv.Observer) {
	if t == nil {
		return cfg, nil
	}
	obs := t.observer(ctx)
	cfg.Trace = obs.SuperviseTrace(cfg.Trace)
	return cfg, obs
}

// Merge folds per-shard telemetries into t in argument order — the parallel
// engine's reduction step. Counters and histograms merge additively, gauges
// take the last shard's value, and episodes are renumbered to continue t's
// sequence, so merging shards in shard order reproduces exactly what a
// serial run sharing one telemetry would have recorded. Nil receiver and nil
// shards are no-ops.
func (t *Telemetry) Merge(shards ...*Telemetry) error {
	if t == nil {
		return nil
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		if err := t.Registry.Merge(s.Registry); err != nil {
			return err
		}
		t.Recorder.Append(s.Recorder.Episodes()...)
	}
	return nil
}

// AddSupervisedObserved is AddSupervised with telemetry: every fault's
// supervised run is observed under its corpus identity (application, fault
// ID, oracle class), so the recorded episodes carry the labels the per-class
// summary keys on. A nil telemetry makes it identical to AddSupervised. It
// is the single-worker case of AddSupervisedWorkers.
func (m *Matrix) AddSupervisedObserved(seed int64, cfg supervise.Config, t *Telemetry) error {
	return m.AddSupervisedWorkers(seed, cfg, t, 1)
}

// soakContext is the observer identity for one soak application: class labels
// come from the mechanism catalogue because a soak run hosts several
// mechanisms of different classes at once.
func soakContext(app taxonomy.Application) obsv.Context {
	return obsv.Context{App: app.String(), ClassFor: ClassFor}
}
