package recovery

import (
	"errors"

	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
)

// growResources implements the paper's first §6.2 mitigation for
// environment-dependent-nontransient faults: "detect the problem and
// automatically increase the resources available to the application". The
// governor inspects the failure's underlying environment error and widens
// the matching limit — more descriptors, more process slots, a bigger file
// system, large-file support.
//
// It returns true when it grew something; conditions without a growable
// resource (a missing PTR record, a pulled network card, an application-
// internal leak) are untouched, which is why the governor rescues some
// nontransient faults and not others.
func growResources(env *simenv.Env, fe *faultinject.FailureError) bool {
	switch {
	case errors.Is(fe, simenv.ErrFDExhausted):
		env.FDs().SetLimit(env.FDs().Limit() * 2)
		return true
	case errors.Is(fe, simenv.ErrProcTableFull):
		// Grow the process table so new children fit alongside the hung ones.
		// (Process pairs clears this differently — by killing the children —
		// but the governor's contract is to grow the resource, and returning
		// true without growing anything would silently retry into the same
		// full table.)
		t := env.Procs()
		return t.SetLimit(t.Limit()*2) == nil
	case errors.Is(fe, simenv.ErrDiskFull):
		return env.Disk().SetCapacity(env.Disk().Capacity()*2) == nil
	case errors.Is(fe, simenv.ErrFileTooLarge):
		env.Disk().SetMaxFileSize(env.Disk().MaxFileSize() * 2)
		return true
	case errors.Is(fe, simenv.ErrNetResourceExhausted):
		// The opaque kernel resource is held by another process; the
		// governor raises the cap so new units exist.
		env.Net().SetResourceCap(env.Net().ResourceInUse() * 2)
		return true
	default:
		return false
	}
}

// GrowResources exposes the §6.2 resource governor to other layers (the
// supervisor applies it before each recovery action). It returns true when a
// growable environment limit matching the failure's cause was widened.
func GrowResources(env *simenv.Env, fe *faultinject.FailureError) bool {
	return growResources(env, fe)
}
