package recovery

import (
	"strings"
	"testing"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
	"faultstudy/internal/apps/sqldb"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/simenv"
	"faultstudy/internal/taxonomy"
)

// Interface compliance: every simulated application is recoverable.
var (
	_ Application = (*httpd.Server)(nil)
	_ Application = (*sqldb.Server)(nil)
	_ Application = (*desktop.Desktop)(nil)
)

func httpdScenario(t *testing.T, mech string, seed int64) (*httpd.Server, faultinject.Scenario) {
	t.Helper()
	env := simenv.New(seed, simenv.WithFDLimit(64), simenv.WithProcLimit(192))
	srv := httpd.New(env, faultinject.NewSet(mech), httpd.Config{})
	sc, ok := httpd.Scenarios(srv)[mech]
	if !ok {
		t.Fatalf("no scenario for %s", mech)
	}
	return srv, sc
}

func run(t *testing.T, app Application, sc faultinject.Scenario, strat Strategy) Outcome {
	t.Helper()
	m := NewManager(Policy{})
	out, err := m.Run(app, sc, strat)
	if err != nil {
		t.Fatalf("run %s under %s: %v", sc.Mechanism, strat, err)
	}
	return out
}

func TestNoRecoveryIsTerminal(t *testing.T) {
	srv, sc := httpdScenario(t, httpd.MechValistReuse, 1)
	out := run(t, srv, sc, StrategyNone)
	if out.Survived {
		t.Error("no-recovery run should not survive")
	}
	if out.FirstFailure == nil || out.FirstFailure.Mechanism != httpd.MechValistReuse {
		t.Errorf("first failure = %+v", out.FirstFailure)
	}
	if out.Attempts != 0 {
		t.Errorf("attempts = %d, want 0", out.Attempts)
	}
}

func TestProcessPairsCannotSurviveEnvIndependent(t *testing.T) {
	for _, mech := range []string{
		httpd.MechLongURLOverflow,
		httpd.MechValistReuse,
		httpd.MechPallocZero,
		httpd.MechSighupCrash,
		httpd.MechMemoryLeakHup,
		httpd.MechNullDeref,
	} {
		srv, sc := httpdScenario(t, mech, 2)
		out := run(t, srv, sc, StrategyProcessPairs)
		if out.Survived {
			t.Errorf("%s: process pairs should NOT survive a deterministic fault", mech)
		}
		if out.Attempts == 0 {
			t.Errorf("%s: recovery never retried", mech)
		}
	}
}

func TestProcessPairsCannotSurviveNontransient(t *testing.T) {
	for _, mech := range []string{
		httpd.MechLoadResourceLeak,
		httpd.MechFDExhaustion,
		httpd.MechFSFull,
		httpd.MechPCMCIARemoval,
		httpd.MechLogFileLimit,
		httpd.MechDiskCacheFull,
		httpd.MechNetResource,
	} {
		srv, sc := httpdScenario(t, mech, 3)
		out := run(t, srv, sc, StrategyProcessPairs)
		if out.Survived {
			t.Errorf("%s: the environmental condition persists; process pairs should fail", mech)
		}
	}
}

func TestProcessPairsSurvivesTransients(t *testing.T) {
	for _, mech := range []string{
		httpd.MechDNSError,
		httpd.MechDNSSlow,
		httpd.MechSlowNetwork,
		httpd.MechEntropyStarved,
		httpd.MechProcTableFull,
		httpd.MechPortSquat,
		httpd.MechClientAbort,
	} {
		srv, sc := httpdScenario(t, mech, 4)
		out := run(t, srv, sc, StrategyProcessPairs)
		if !out.Survived {
			t.Errorf("%s: transient condition should clear under process pairs (err: %v)", mech, out.Err)
		}
		if out.Failures == 0 {
			t.Errorf("%s: scenario never failed; nothing was recovered", mech)
		}
	}
}

func TestProcessPairsPreservesStateAcrossFailover(t *testing.T) {
	// Survive a transient and check the application kept its pre-failure
	// state (request counter) — the "truly generic recovery preserves all
	// application state" property.
	srv, sc := httpdScenario(t, httpd.MechDNSError, 5)
	out := run(t, srv, sc, StrategyProcessPairs)
	if !out.Survived {
		t.Fatalf("run: %v", out.Err)
	}
	if srv.Requests() == 0 {
		t.Error("request counter lost across failover")
	}
}

func TestCleanRestartFixesLeakFaults(t *testing.T) {
	// Application-specific restart discards the leaked state, so the
	// leak-class faults — which defeat generic recovery — are survivable.
	for _, mech := range []string{
		httpd.MechMemoryLeakHup,
		httpd.MechLoadResourceLeak,
		httpd.MechFDExhaustion,
	} {
		srv, sc := httpdScenario(t, mech, 6)
		out := run(t, srv, sc, StrategyCleanRestart)
		if !out.Survived {
			t.Errorf("%s: clean restart should clear the accumulated state (err: %v)", mech, out.Err)
		}
	}
}

func TestCleanRestartCannotFixExternalConditions(t *testing.T) {
	for _, mech := range []string{
		httpd.MechFSFull,
		httpd.MechPCMCIARemoval,
		httpd.MechLongURLOverflow, // deterministic: restart changes nothing
	} {
		srv, sc := httpdScenario(t, mech, 7)
		out := run(t, srv, sc, StrategyCleanRestart)
		if out.Survived {
			t.Errorf("%s: clean restart should not fix an external condition", mech)
		}
	}
}

func TestCleanRestartLosesDatabaseState(t *testing.T) {
	// For stateful applications, state-discarding recovery breaks the
	// workload: the retried statement fails outside the fault model.
	env := simenv.New(8)
	srv := sqldb.New(env, faultinject.NewSet(sqldb.MechOrderByEmpty))
	sc := sqldb.Scenarios(srv)[sqldb.MechOrderByEmpty]
	out := run(t, srv, sc, StrategyCleanRestart)
	if out.Survived {
		t.Error("dropping the database should not count as surviving")
	}
	if out.Err == nil || !strings.Contains(out.Err.Error(), "outside the fault model") {
		t.Errorf("err = %v, want workload broken outside the fault model", out.Err)
	}
}

func TestProcessPairsOnDatabaseRaces(t *testing.T) {
	for _, mech := range []string{sqldb.MechSignalMaskRace, sqldb.MechLoginAdminRace} {
		env := simenv.New(9)
		srv := sqldb.New(env, faultinject.NewSet(mech))
		sc := sqldb.Scenarios(srv)[mech]
		out := run(t, srv, sc, StrategyProcessPairs)
		if !out.Survived {
			t.Errorf("%s: race should clear on retry (err: %v)", mech, out.Err)
		}
	}
}

func TestProcessPairsOnDatabaseDeterministicFaults(t *testing.T) {
	for _, mech := range []string{
		sqldb.MechIndexUpdateScan,
		sqldb.MechCountEmpty,
		sqldb.MechOrderByEmpty,
		sqldb.MechOptimizeCrash,
		sqldb.MechFlushAfterLock,
	} {
		env := simenv.New(10)
		srv := sqldb.New(env, faultinject.NewSet(mech))
		sc := sqldb.Scenarios(srv)[mech]
		out := run(t, srv, sc, StrategyProcessPairs)
		if out.Survived {
			t.Errorf("%s: deterministic database fault should recur after state-preserving recovery", mech)
		}
	}
}

func TestProcessPairsOnDesktop(t *testing.T) {
	transient := []string{desktop.MechUnknownTransient, desktop.MechViewerRace, desktop.MechAppletRace}
	for _, mech := range transient {
		env := simenv.New(11)
		d := desktop.New(env, faultinject.NewSet(mech))
		sc := desktop.Scenarios(d)[mech]
		out := run(t, d, sc, StrategyProcessPairs)
		if !out.Survived {
			t.Errorf("%s: desktop race should clear on retry (err: %v)", mech, out.Err)
		}
	}
	persistent := []string{desktop.MechHostnameChange, desktop.MechSoundSocketLeak, desktop.MechIllegalOwner}
	for _, mech := range persistent {
		env := simenv.New(12, simenv.WithFDLimit(24))
		d := desktop.New(env, faultinject.NewSet(mech))
		sc := desktop.Scenarios(d)[mech]
		out := run(t, d, sc, StrategyProcessPairs)
		if out.Survived {
			t.Errorf("%s: persistent condition should defeat process pairs", mech)
		}
	}
}

func TestCleanRestartFixesHostnameChange(t *testing.T) {
	env := simenv.New(13)
	d := desktop.New(env, faultinject.NewSet(desktop.MechHostnameChange))
	sc := desktop.Scenarios(d)[desktop.MechHostnameChange]
	out := run(t, d, sc, StrategyCleanRestart)
	if !out.Survived {
		t.Errorf("logging out and back in re-reads the hostname; should survive (err: %v)", out.Err)
	}
}

func TestProgressiveRetrySurvivesRacesDeterministically(t *testing.T) {
	// Progressive retry forces a *different* interleaving on the first
	// retry, so races are survived in exactly one attempt regardless of
	// scheduler luck.
	for seed := int64(0); seed < 10; seed++ {
		srv, sc := httpdScenario(t, httpd.MechClientAbort, 100+seed)
		out := run(t, srv, sc, StrategyProgressiveRetry)
		if !out.Survived {
			t.Fatalf("seed %d: progressive retry should always survive the race (err: %v)", seed, out.Err)
		}
		if out.Attempts != 1 {
			t.Errorf("seed %d: attempts = %d, want exactly 1", seed, out.Attempts)
		}
	}
}

func TestProgressiveRetryStillLosesDeterministicFaults(t *testing.T) {
	srv, sc := httpdScenario(t, httpd.MechLongURLOverflow, 14)
	out := run(t, srv, sc, StrategyProgressiveRetry)
	if out.Survived {
		t.Error("progressive retry cannot fix an environment-independent fault")
	}
}

func TestOutcomeAccounting(t *testing.T) {
	srv, sc := httpdScenario(t, httpd.MechDNSError, 15)
	out := run(t, srv, sc, StrategyProcessPairs)
	if !out.Survived {
		t.Fatalf("run: %v", out.Err)
	}
	if out.Failures != 1 || out.Recoveries != 1 {
		t.Errorf("failures=%d recoveries=%d, want 1/1", out.Failures, out.Recoveries)
	}
	// The DNS outage heals after 90s of virtual time; with 45s takeovers the
	// second retry lands after healing.
	if out.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", out.Attempts)
	}
	if out.FirstFailure.Symptom != taxonomy.SymptomError {
		t.Errorf("symptom = %v", out.FirstFailure.Symptom)
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range Strategies() {
		if s.String() == "" || strings.HasPrefix(s.String(), "Strategy(") {
			t.Errorf("missing name for %d", int(s))
		}
	}
	if Strategy(99).String() != "Strategy(99)" {
		t.Error("unknown strategy string")
	}
	if StrategyNone.Generic() || StrategyCleanRestart.Generic() {
		t.Error("none/clean-restart are not generic")
	}
	if !StrategyProcessPairs.Generic() || !StrategyProgressiveRetry.Generic() {
		t.Error("process pairs and progressive retry are generic")
	}
}

func TestUnknownStrategyFailsCleanly(t *testing.T) {
	srv, sc := httpdScenario(t, httpd.MechValistReuse, 16)
	m := NewManager(Policy{})
	out, err := m.Run(srv, sc, Strategy(99))
	if err != nil {
		t.Fatalf("unexpected harness error: %v", err)
	}
	if out.Survived || out.Err == nil {
		t.Error("unknown strategy should fail the run, not survive")
	}
}
