// Package workload generates realistic operation streams for the three
// simulated applications: HTTP request mixes for the web server, SQL
// statement streams for the database, and interaction streams for the
// desktop. The generators are seeded and deterministic; the benchmarks and
// the rejuvenation ablation use them to drive healthy and fault-laden
// instances at scale.
package workload

import (
	"fmt"
	"math/rand"

	"faultstudy/internal/apps/desktop"
	"faultstudy/internal/apps/httpd"
)

// Hook observes workload generation, one call per generated item: stream is
// the generator ("http", "sql", "desktop") and category the item's kind
// within it ("static", "insert", "set-cell", ...). A nil Hook is legal
// everywhere and costs one branch — the observability layer's workload-mix
// metrics attach here without the generators knowing about metrics.
type Hook interface {
	// Generated reports one generated workload item.
	Generated(stream, category string)
}

// emit notifies a hook when one is attached.
func emit(h Hook, stream, category string) {
	if h != nil {
		h.Generated(stream, category)
	}
}

// HTTPMix weights the request categories of the web workload.
type HTTPMix struct {
	// Static is the weight of plain document requests.
	Static int
	// Listing is the weight of directory listings.
	Listing int
	// CGI is the weight of CGI requests.
	CGI int
	// Proxy is the weight of proxied requests.
	Proxy int
	// NotFound is the weight of requests for missing documents.
	NotFound int
}

// DefaultHTTPMix approximates a 1999 site: mostly static pages with a little
// of everything else.
func DefaultHTTPMix() HTTPMix {
	return HTTPMix{Static: 70, Listing: 10, CGI: 10, Proxy: 5, NotFound: 5}
}

func (m HTTPMix) total() int { return m.Static + m.Listing + m.CGI + m.Proxy + m.NotFound }

// HTTPRequests generates n requests with the given mix.
func HTTPRequests(seed int64, mix HTTPMix, n int) []httpd.Request {
	return HTTPRequestsObserved(seed, mix, n, nil)
}

// HTTPRequestsObserved is HTTPRequests with a generation hook: each request
// is reported to h (when non-nil) under stream "http" with its mix category.
// The request stream is identical to HTTPRequests for the same arguments.
func HTTPRequestsObserved(seed int64, mix HTTPMix, n int, h Hook) []httpd.Request {
	if mix.total() == 0 {
		mix = DefaultHTTPMix()
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]httpd.Request, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(mix.total())
		switch {
		case r < mix.Static:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/index.html"})
			emit(h, "http", "static")
		case r < mix.Static+mix.Listing:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/pub/"})
			emit(h, "http", "listing")
		case r < mix.Static+mix.Listing+mix.CGI:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/cgi-bin/env"})
			emit(h, "http", "cgi")
		case r < mix.Static+mix.Listing+mix.CGI+mix.Proxy:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: "/proxy/page"})
			emit(h, "http", "proxy")
		default:
			reqs = append(reqs, httpd.Request{Method: "GET", Path: fmt.Sprintf("/missing-%d", i)})
			emit(h, "http", "not-found")
		}
	}
	return reqs
}

// SQLStatements generates a CREATE/INSERT/SELECT/UPDATE/DELETE stream over a
// single table. The first statements create and index the table; the rest
// are drawn from the mix. All statements are valid against the schema.
func SQLStatements(seed int64, n int) []string {
	return SQLStatementsObserved(seed, n, nil)
}

// SQLStatementsObserved is SQLStatements with a generation hook: each
// statement is reported to h (when non-nil) under stream "sql" with its
// statement kind. The statement stream is identical to SQLStatements for the
// same arguments.
func SQLStatementsObserved(seed int64, n int, h Hook) []string {
	rng := rand.New(rand.NewSource(seed))
	stmts := []string{
		"CREATE TABLE load (k INT, payload TEXT)",
		"CREATE INDEX load_k ON load (k)",
	}
	emit(h, "sql", "create")
	emit(h, "sql", "create")
	inserted := 0
	for len(stmts) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // 40% inserts
			inserted++
			stmts = append(stmts, fmt.Sprintf("INSERT INTO load VALUES (%d, 'p%d')", inserted, inserted))
			emit(h, "sql", "insert")
		case 4, 5, 6: // 30% selects
			stmts = append(stmts, fmt.Sprintf("SELECT * FROM load WHERE k <= %d ORDER BY k LIMIT 10", rng.Intn(inserted+1)))
			emit(h, "sql", "select")
		case 7: // counts
			stmts = append(stmts, "SELECT COUNT(*) FROM load")
			emit(h, "sql", "count")
		case 8: // updates
			stmts = append(stmts, fmt.Sprintf("UPDATE load SET payload = 'u' WHERE k = %d", rng.Intn(inserted+1)))
			emit(h, "sql", "update")
		default: // deletes
			stmts = append(stmts, fmt.Sprintf("DELETE FROM load WHERE k = %d", rng.Intn(inserted+1)))
			emit(h, "sql", "delete")
		}
	}
	return stmts
}

// DesktopEvents generates a stream of benign desktop interactions.
func DesktopEvents(seed int64, n int) []desktop.Event {
	return DesktopEventsObserved(seed, n, nil)
}

// DesktopEventsObserved is DesktopEvents with a generation hook: each event
// is reported to h (when non-nil) under stream "desktop" with its action
// name. The event stream is identical to DesktopEvents for the same
// arguments.
func DesktopEventsObserved(seed int64, n int, h Hook) []desktop.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]desktop.Event, 0, n)
	for i := 0; i < n; i++ {
		var ev desktop.Event
		switch rng.Intn(6) {
		case 0:
			ev = desktop.Event{Widget: "calendar", Action: "next"}
		case 1:
			ev = desktop.Event{Widget: "gnumeric", Action: "set-cell",
				Arg: fmt.Sprintf("A%d=%d", i%100, rng.Intn(1000))}
		case 2:
			ev = desktop.Event{Widget: "gmc", Action: "open", Arg: "notes.txt"}
		case 3:
			ev = desktop.Event{Widget: "panel", Action: "open-main-menu"}
		case 4:
			ev = desktop.Event{Widget: "panel", Action: "click-desktop"}
		default:
			ev = desktop.Event{Widget: "session", Action: "play-sound"}
		}
		evs = append(evs, ev)
		emit(h, "desktop", ev.Action)
	}
	return evs
}
