package scrape

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize(`<html><body><p class="x">Hello &amp; goodbye</p><a href="/next">link</a></body></html>`)
	var starts, ends, texts int
	for _, tok := range toks {
		switch tok.Kind {
		case TokenStartTag:
			starts++
		case TokenEndTag:
			ends++
		case TokenText:
			texts++
		}
	}
	if starts != 4 || ends != 4 {
		t.Errorf("starts=%d ends=%d", starts, ends)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokenText && tok.Text == "Hello & goodbye" {
			found = true
		}
	}
	if !found {
		t.Error("entity decoding failed")
	}
}

func TestTokenizeAttrs(t *testing.T) {
	toks := Tokenize(`<a href='/x' id=plain checked>t</a>`)
	if len(toks) == 0 || toks[0].Kind != TokenStartTag {
		t.Fatal("no start tag")
	}
	a := toks[0].Attrs
	if a["href"] != "/x" || a["id"] != "plain" {
		t.Errorf("attrs = %v", a)
	}
	if _, ok := a["checked"]; !ok {
		t.Errorf("bare attr missing: %v", a)
	}
}

func TestTokenizeCommentsAndDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><!-- secret --><p>visible</p>`)
	for _, tok := range toks {
		if tok.Kind == TokenText && strings.Contains(tok.Text, "secret") {
			t.Error("comment leaked into text")
		}
	}
}

func TestTokenizeMalformed(t *testing.T) {
	// Unterminated tags and comments must not panic or loop.
	for _, in := range []string{"<", "<a", "<!-- never closed", "text < more", "<>"} {
		_ = Tokenize(in)
	}
}

func TestLinks(t *testing.T) {
	html := `<a href="/a">A</a> <a name="anchor">no href</a> <A HREF="/b">B</A>`
	got := Links(html)
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("Links = %v", got)
	}
}

func TestText(t *testing.T) {
	html := `<html><head><style>p{color:red}</style><script>evil()</script></head>
<body><h1>Title</h1><p>First para</p><p>Second   para</p>
<pre>preformatted</pre></body></html>`
	text := Text(html)
	if strings.Contains(text, "evil") || strings.Contains(text, "color:red") {
		t.Errorf("script/style leaked: %q", text)
	}
	for _, want := range []string{"Title", "First para", "Second   para", "preformatted"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q in %q", want, text)
		}
	}
	if strings.Contains(text, "\n\n\n") {
		t.Error("blank runs not collapsed")
	}
}

func TestEncodeEntitiesRoundTrip(t *testing.T) {
	in := `a < b & "c" > d`
	enc := EncodeEntities(in)
	if strings.ContainsAny(enc, `<>"`) {
		t.Errorf("EncodeEntities left specials: %q", enc)
	}
	if got := decodeEntities(enc); got != in {
		t.Errorf("round trip: %q -> %q", in, got)
	}
}

func newSite(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<a href="/bugs/1">one</a> <a href="/bugs/2">two</a> <a href="/other">other</a> <a href="http://elsewhere.example/x">offsite</a>`)
	})
	mux.HandleFunc("/bugs/1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<a href="/bugs/2#frag">two again</a> bug one`)
	})
	mux.HandleFunc("/bugs/2", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `bug two <a href="/bugs/missing">missing</a>`)
	})
	mux.HandleFunc("/other", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `other page`)
	})
	return httptest.NewServer(mux)
}

func TestCrawlSameHostBFS(t *testing.T) {
	srv := newSite(t)
	defer srv.Close()
	c := NewCrawler()
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	urls := make(map[string]int)
	for _, p := range pages {
		urls[strings.TrimPrefix(p.URL, srv.URL)] = p.Status
	}
	for _, want := range []string{"/", "/bugs/1", "/bugs/2", "/other"} {
		if _, ok := urls[want]; !ok {
			t.Errorf("missing page %s (got %v)", want, urls)
		}
	}
	if st := urls["/bugs/missing"]; st != http.StatusNotFound {
		t.Errorf("/bugs/missing status = %d", st)
	}
	for u := range urls {
		if strings.Contains(u, "elsewhere") {
			t.Error("followed offsite link")
		}
	}
	// Fragment variants must not be fetched twice.
	count := 0
	for _, p := range pages {
		if strings.HasSuffix(p.URL, "/bugs/2") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("/bugs/2 fetched %d times", count)
	}
}

func TestCrawlPathFilter(t *testing.T) {
	srv := newSite(t)
	defer srv.Close()
	c := NewCrawler(WithPathFilter("/bugs/"))
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages[1:] { // the start page itself is exempt
		if !strings.Contains(p.URL, "/bugs/") {
			t.Errorf("path filter leaked %s", p.URL)
		}
	}
}

func TestCrawlMaxPages(t *testing.T) {
	srv := newSite(t)
	defer srv.Close()
	c := NewCrawler(WithMaxPages(2))
	pages, err := c.Crawl(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 {
		t.Errorf("fetched %d pages, want 2", len(pages))
	}
}

func TestCrawlContextCancel(t *testing.T) {
	srv := newSite(t)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCrawler(WithDelay(10 * time.Millisecond))
	if _, err := c.Crawl(ctx, srv.URL+"/"); err == nil {
		t.Error("canceled crawl should return an error")
	}
}

func TestCrawlBadStart(t *testing.T) {
	c := NewCrawler()
	if _, err := c.Crawl(context.Background(), "not-absolute"); err == nil {
		t.Error("relative start url should fail")
	}
	if _, err := c.Crawl(context.Background(), "://bad"); err == nil {
		t.Error("malformed url should fail")
	}
}
