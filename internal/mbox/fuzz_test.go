package mbox

import (
	"strings"
	"testing"
)

// FuzzParseMbox drives the mbox parser and the threading pass with arbitrary
// input. The invariants: Parse never panics and never returns nil messages;
// every accepted archive threads without panicking, the threads partition the
// messages (no message lost or duplicated by threading), and subject
// normalization is idempotent on every subject seen.
func FuzzParseMbox(f *testing.F) {
	f.Add(sampleMbox)
	f.Add("From a@b Fri Oct  1 10:00:00 1999\nSubject: x\n\nbody\n")
	f.Add("From a@b\n\n>From quoted\n")
	f.Add("From a@b\nMessage-Id: <m1>\nIn-Reply-To: <m0>\nReferences: <r1> <r2>\n\nx\n")
	f.Add("junk before any From line\n")
	f.Add("")
	f.Add("From a@b\nSubject: Re: re: RE[2]: fwd: x\nDate: Fri, 01 Oct 1999 10:00:00 +0000\n\n\x00\xff\n")
	f.Add("From a@b\nBad Header Line\n\nbody\n")
	f.Fuzz(func(t *testing.T, input string) {
		msgs, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, m := range msgs {
			if m == nil {
				t.Fatalf("message %d is nil", i)
			}
			once := NormalizeSubject(m.Subject)
			if twice := NormalizeSubject(once); twice != once {
				t.Fatalf("NormalizeSubject not idempotent: %q -> %q -> %q", m.Subject, once, twice)
			}
		}
		threads := ThreadMessages(msgs)
		total := 0
		for _, th := range threads {
			total += len(th.Messages)
		}
		if total != len(msgs) {
			t.Fatalf("threading lost messages: %d in threads, %d parsed", total, len(msgs))
		}
		_ = FilterThreads(threads, DefaultKeywords())
	})
}
