// Package sqldb is a simulated multi-user SQL database server in the mold of
// MySQL 3.22, built on the simulated operating environment and seeded with
// the bugs the study catalogued for MySQL (§5.3): the index-update-scan
// crash, the ORDER-BY-on-empty-result crash, the COUNT-on-empty-table crash,
// the OPTIMIZE TABLE crash, the FLUSH-after-LOCK crash, and the
// environment-dependent conditions (descriptor competition, missing reverse
// DNS, oversized database files, full file systems, and the two races).
//
// The engine is real, if small: a lexer, a recursive-descent parser, an
// executor over in-memory tables with disk-space accounting on the simulated
// file system, and B-tree secondary indexes. The seeded bugs live at the
// exact spots their originals did — the index-update bug, for example, is the
// genuine naive scan-while-updating algorithm, and its fix (scan first, then
// update) is what runs when the bug is disabled.
package sqldb

import (
	"fmt"
	"strings"
)

// tokenKind discriminates lexer tokens.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokString
	tokSymbol // ( ) , = < > <= >= != *
	tokEOF
)

// token is one lexical token.
type token struct {
	kind tokenKind
	text string // identifiers are kept verbatim; keywords match case-insensitively
}

// lex splits a statement into tokens. SQL strings use single quotes with ”
// escaping. C-style /* */ comments are skipped.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sqldb: unterminated comment at byte %d", i)
			}
			i += 2 + end + 2
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqldb: unterminated string at byte %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i + 1
			for j < n && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j]})
			i = j
		case isIdentByte(c):
			j := i
			for j < n && isIdentByte(input[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j]})
			i = j
		case strings.ContainsRune("(),=*+", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c)})
			i++
		case c == '<' || c == '>' || c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2]})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sqldb: stray '!' at byte %d", i)
			} else {
				toks = append(toks, token{kind: tokSymbol, text: string(c)})
				i++
			}
		case c == ';':
			i++ // statement terminator, ignored
		default:
			return nil, fmt.Errorf("sqldb: unexpected byte %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.'
}

// cursor walks a token stream during parsing.
type cursor struct {
	toks []token
	pos  int
}

func (c *cursor) peek() token { return c.toks[c.pos] }

func (c *cursor) next() token {
	t := c.toks[c.pos]
	if t.kind != tokEOF {
		c.pos++
	}
	return t
}

// acceptKeyword consumes the next token when it is the given keyword
// (case-insensitive).
func (c *cursor) acceptKeyword(kw string) bool {
	t := c.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		c.pos++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (c *cursor) expectKeyword(kw string) error {
	if !c.acceptKeyword(kw) {
		return fmt.Errorf("sqldb: expected %s, got %q", kw, c.peek().text)
	}
	return nil
}

// acceptSymbol consumes the next token when it is the given symbol.
func (c *cursor) acceptSymbol(sym string) bool {
	t := c.peek()
	if t.kind == tokSymbol && t.text == sym {
		c.pos++
		return true
	}
	return false
}

// expectSymbol consumes the symbol or fails.
func (c *cursor) expectSymbol(sym string) error {
	if !c.acceptSymbol(sym) {
		return fmt.Errorf("sqldb: expected %q, got %q", sym, c.peek().text)
	}
	return nil
}

// expectIdent consumes and returns an identifier.
func (c *cursor) expectIdent() (string, error) {
	t := c.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqldb: expected identifier, got %q", t.text)
	}
	c.pos++
	return t.text, nil
}
