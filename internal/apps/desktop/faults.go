package desktop

import (
	"faultstudy/internal/faultinject"
	"faultstudy/internal/taxonomy"
)

// Mechanism keys for the seeded GNOME bugs.
const (
	// Named environment-independent bugs (§5.2).
	MechTasklistTab  = "desktop/tasklist-tab"
	MechCalendarPrev = "desktop/calendar-prev"
	MechGnumericTab  = "desktop/gnumeric-tab"
	MechGmcTarGz     = "desktop/gmc-targz"
	MechMenuFreeze   = "desktop/menu-freeze"

	// Template-class environment-independent bugs.
	MechStaleWidget    = "desktop/stale-widget"
	MechBadInit        = "desktop/bad-init"
	MechEventLoopStall = "desktop/event-loop-stall"
	MechConfigTruncate = "desktop/config-truncate"
	MechOffByOne       = "desktop/off-by-one"
	MechTypeMismatch   = "desktop/type-mismatch"
	MechDoubleFree     = "desktop/double-free"

	// Environment-dependent-nontransient bugs.
	MechHostnameChange  = "desktop/hostname-change"
	MechSoundSocketLeak = "desktop/sound-socket-leak"
	MechIllegalOwner    = "desktop/illegal-owner"

	// Environment-dependent-transient bugs.
	MechUnknownTransient = "desktop/unknown-transient"
	MechViewerRace       = "desktop/viewer-race"
	MechAppletRace       = "desktop/applet-race"
)

// RegisterMechanisms adds the desktop's seeded-bug catalogue to a registry.
func RegisterMechanisms(r *faultinject.Registry) {
	G := taxonomy.AppGnome
	for _, m := range []faultinject.Mechanism{
		{Key: MechTasklistTab, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "tasklist tab in pager settings kills the pager"},
		{Key: MechCalendarPrev, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "prev in the calendar year view crashes"},
		{Key: MechGnumericTab, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "Tab inside the define-name dialog crashes gnumeric"},
		{Key: MechGmcTarGz, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "double-clicking a tar.gz icon crashes gmc"},
		{Key: MechMenuFreeze, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "dismissing the main menu by clicking the desktop freezes it"},
		{Key: MechStaleWidget, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "destroyed widget pointer dereferenced"},
		{Key: MechBadInit, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "dialog struct field read before initialization"},
		{Key: MechEventLoopStall, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "event loop re-enters a consumed wait"},
		{Key: MechConfigTruncate, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "config value truncated on write"},
		{Key: MechOffByOne, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "item list iterated one past the end"},
		{Key: MechTypeMismatch, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "long vs unsigned long comparison fails a sanity check"},
		{Key: MechDoubleFree, App: G, Trigger: taxonomy.TriggerWorkloadOnly, Description: "undo path frees a list node twice"},
		{Key: MechHostnameChange, App: G, Trigger: taxonomy.TriggerHostConfig, Description: "hostname changed under a running session"},
		{Key: MechSoundSocketLeak, App: G, Trigger: taxonomy.TriggerFDExhaustion, Description: "sound utilities leak sockets until descriptors run out"},
		{Key: MechIllegalOwner, App: G, Trigger: taxonomy.TriggerHostConfig, Description: "file with an illegal owner field crashes the property dialog"},
		{Key: MechUnknownTransient, App: G, Trigger: taxonomy.TriggerRace, Description: "unexplained failure that works on retry"},
		{Key: MechViewerRace, App: G, Trigger: taxonomy.TriggerRace, Description: "image viewer races the property editor"},
		{Key: MechAppletRace, App: G, Trigger: taxonomy.TriggerRace, Description: "applet action races its removal"},
	} {
		r.MustRegister(m)
	}
}

// Scenarios returns the executable reproduction of each seeded GNOME bug.
func Scenarios(d *Desktop) map[string]faultinject.Scenario {
	env := d.Env()
	ev := func(widget, action, arg string) faultinject.Op {
		name := widget + "." + action
		if arg != "" {
			name += "(" + arg + ")"
		}
		return faultinject.Op{Name: name, Do: func() error {
			return d.Dispatch(Event{Widget: widget, Action: action, Arg: arg})
		}}
	}

	scenarios := map[string]faultinject.Scenario{
		MechTasklistTab: {
			Description: "the user opens pager settings and clicks the tasklist tab",
			Ops:         []faultinject.Op{ev("panel", "click-tasklist-tab", "")},
		},
		MechCalendarPrev: {
			Description: "the user switches to year view and clicks prev",
			Ops: []faultinject.Op{
				ev("calendar", "view-year", ""),
				ev("calendar", "prev", ""),
			},
		},
		MechGnumericTab: {
			Description: "the user presses Tab in the define-name dialog",
			Ops: []faultinject.Op{
				ev("gnumeric", "open-define-name", ""),
				ev("gnumeric", "press-tab", ""),
			},
		},
		MechGmcTarGz: {
			Description: "the user double-clicks a tar.gz icon on the desktop",
			Ops:         []faultinject.Op{ev("gmc", "open", "backup.tar.gz")},
		},
		MechMenuFreeze: {
			Description: "the user opens the main menu and clicks the desktop",
			Ops: []faultinject.Op{
				ev("panel", "open-main-menu", ""),
				ev("panel", "click-desktop", ""),
			},
		},
		MechHostnameChange: {
			Description: "the hostname changes while the session runs",
			Stage:       func() { env.SetHostname("renamed-host") },
			Ops:         []faultinject.Op{ev("session", "noop", "")},
		},
		MechSoundSocketLeak: {
			Description: "event sounds leak sockets until descriptors run out",
			Stage:       func() { env.FDs().SetLimit(20) },
			Ops: func() []faultinject.Op {
				var ops []faultinject.Op
				for i := 0; i < 30; i++ {
					ops = append(ops, ev("session", "play-sound", ""))
				}
				return ops
			}(),
		},
		MechIllegalOwner: {
			Description: "a file's owner field holds an illegal value",
			Stage: func() {
				_ = env.Disk().Append("/home/user/broken.txt", "user", 10) //faultlint:ignore envcheck staging the corrupt file is the point
				_ = env.Disk().SetIllegalOwner("/home/user/broken.txt", true)
			},
			Ops: []faultinject.Op{ev("gmc", "properties", "/home/user/broken.txt")},
		},
		MechUnknownTransient: {
			Description: "an unexplained failure that works on retry",
			Stage:       func() { env.Sched().Force(MechUnknownTransient, 0) },
			Ops:         []faultinject.Op{ev("session", "mystery-op", "")},
		},
		MechViewerRace: {
			Description: "the viewer and property editor open the same file together",
			Stage:       func() { env.Sched().Force(MechViewerRace, 0) },
			Ops:         []faultinject.Op{ev("gmc", "view-and-edit-properties", "photo.png")},
		},
		MechAppletRace: {
			Description: "an applet is removed at the moment it is asked to act",
			Stage:       func() { env.Sched().Force(MechAppletRace, 0) },
			Ops:         []faultinject.Op{ev("panel", "applet-action-during-removal", "clock")},
		},
	}

	for _, defect := range []string{"stale-widget", "bad-init", "event-loop-stall",
		"config-truncate", "off-by-one", "type-mismatch", "double-free"} {
		key := "desktop/" + defect
		scenarios[key] = faultinject.Scenario{
			Description: "an interaction exercises the " + defect + " defect path",
			Ops:         []faultinject.Op{ev("bug", defect, "")},
		}
	}

	for key, sc := range scenarios {
		sc.Mechanism = key
		scenarios[key] = sc
	}
	return scenarios
}
