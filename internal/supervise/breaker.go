package supervise

import (
	"fmt"
	"sort"
	"time"
)

// BreakerState is the lifecycle state of one mechanism's circuit breaker.
type BreakerState int

const (
	// BreakerClosed passes failures into the normal recovery ladder.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails the mechanism fast: no retries are spent on it.
	BreakerOpen
	// BreakerHalfOpen admits one trial recovery episode after the cooldown;
	// its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// breaker is one fault mechanism's circuit breaker. The paper's headline
// result — 72–87% of faults are environment-independent and recur under any
// state-preserving retry — is what the breaker operationalizes: after enough
// recoveries in a row failed to change the outcome, the fault is treated as
// deterministic and retries stop.
type breaker struct {
	state       BreakerState
	consecutive int // failed recovery attempts in a row
	openedAt    time.Duration
}

// breakerSet holds the per-mechanism breakers.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	m         map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

func (s *breakerSet) get(mech string) *breaker {
	b, ok := s.m[mech]
	if !ok {
		b = &breaker{}
		s.m[mech] = b
	}
	return b
}

// allow reports whether a failure of mech may enter the recovery ladder. An
// open breaker whose cooldown has passed transitions to half-open and admits
// one trial episode.
func (s *breakerSet) allow(mech string, now time.Duration) bool {
	b := s.get(mech)
	switch b.state {
	case BreakerOpen:
		if now-b.openedAt >= s.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// failure records one failed recovery attempt for mech and reports whether
// the breaker newly opened. A half-open trial that fails re-opens
// immediately.
func (s *breakerSet) failure(mech string, now time.Duration) bool {
	b := s.get(mech)
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= s.threshold {
		wasOpen := b.state == BreakerOpen
		b.state = BreakerOpen
		b.openedAt = now
		return !wasOpen
	}
	return false
}

// forceOpen opens the breaker regardless of count — the escalation ladder
// was exhausted without changing the outcome, which is as deterministic as
// evidence gets. Reports whether the breaker newly opened.
func (s *breakerSet) forceOpen(mech string, now time.Duration) bool {
	b := s.get(mech)
	wasOpen := b.state == BreakerOpen
	b.state = BreakerOpen
	b.openedAt = now
	b.consecutive = s.threshold
	return !wasOpen
}

// success records a recovery that worked: the mechanism is not deterministic
// after all. Closes a half-open breaker and resets the recurrence count.
func (s *breakerSet) success(mech string) {
	b := s.get(mech)
	b.state = BreakerClosed
	b.consecutive = 0
}

// states returns a snapshot of every tracked breaker, sorted by mechanism.
func (s *breakerSet) states() []BreakerStatus {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]BreakerStatus, 0, len(keys))
	for _, k := range keys {
		b := s.m[k]
		out = append(out, BreakerStatus{Mechanism: k, State: b.state, Consecutive: b.consecutive})
	}
	return out
}

// BreakerStatus is the externally visible state of one mechanism's breaker.
type BreakerStatus struct {
	// Mechanism is the fault mechanism guarded.
	Mechanism string
	// State is the breaker lifecycle state.
	State BreakerState
	// Consecutive is the current failed-recovery streak.
	Consecutive int
}
