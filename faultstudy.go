// Package faultstudy reproduces Chandra & Chen, "Whither Generic Recovery
// from Application Faults? A Fault Study using Open-Source Software"
// (DSN 2000) as a runnable system.
//
// The package is a facade over the implementation packages; it exposes five
// capability groups:
//
//   - The fault-study pipeline (RunStudy, MineApache/MineGnome/MineMySQL,
//     ClassifyReports): mine bug sources in their native formats, narrow to
//     unique qualifying faults, and classify each by environment dependence.
//   - The curated corpus (Corpus, CorpusByApp): the study's 139 faults with
//     oracle classifications, usable as ground truth.
//   - The simulated substrate (NewApacheTrackerSite, NewGnomeTrackerSite,
//     NewMySQLArchiveSite; BuildScenario): generated 1999-era bug sources to
//     mine, and the three simulated applications with the paper's bugs
//     seeded in them.
//   - The recovery experiments (NewRecoveryManager, RunRecoveryMatrix,
//     Table/Figures/Aggregate, the ablations): the end-to-end verification
//     the paper proposed as future work, plus regeneration of every table
//     and figure in the evaluation.
//   - The observability layer (NewTelemetry, ReadEpisodeTrace,
//     SummarizeEpisodes): deterministic metrics and per-fault episode
//     traces over any supervised run — see OBSERVABILITY.md.
//
// Quick start:
//
//	result := faultstudy.Table(faultstudy.AppApache)
//	fmt.Print(result)        // Table 1, measured vs paper
//
//	matrix, _ := faultstudy.RunRecoveryMatrix(faultstudy.RecoveryPolicy{}, 42)
//	fmt.Print(matrix)        // who survives what, by class and strategy
package faultstudy

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"faultstudy/internal/bugsite"
	"faultstudy/internal/classify"
	"faultstudy/internal/core"
	"faultstudy/internal/corpus"
	"faultstudy/internal/experiment"
	"faultstudy/internal/faultinject"
	"faultstudy/internal/obsv"
	"faultstudy/internal/recovery"
	"faultstudy/internal/report"
	"faultstudy/internal/supervise"
	"faultstudy/internal/taxonomy"
)

// Core vocabulary, re-exported from the taxonomy.
type (
	// FaultClass partitions faults by environment dependence.
	FaultClass = taxonomy.FaultClass
	// TriggerKind names the environmental condition triggering a fault.
	TriggerKind = taxonomy.TriggerKind
	// Symptom is the observable failure mode.
	Symptom = taxonomy.Symptom
	// Severity is the tracker-assigned severity.
	Severity = taxonomy.Severity
	// Application identifies one of the three studied applications.
	Application = taxonomy.Application
)

// Fault classes (paper §3).
const (
	// ClassEnvIndependent faults are deterministic given the workload.
	ClassEnvIndependent = taxonomy.ClassEnvIndependent
	// ClassEnvDependentNonTransient faults depend on a persistent condition.
	ClassEnvDependentNonTransient = taxonomy.ClassEnvDependentNonTransient
	// ClassEnvDependentTransient faults depend on a self-healing condition.
	ClassEnvDependentTransient = taxonomy.ClassEnvDependentTransient
)

// The studied applications.
const (
	// AppApache is the Apache web server.
	AppApache = taxonomy.AppApache
	// AppGnome is the GNOME desktop environment.
	AppGnome = taxonomy.AppGnome
	// AppMySQL is the MySQL database server.
	AppMySQL = taxonomy.AppMySQL
)

// Report is a normalized bug report.
type Report = report.Report

// Fault is one classified fault from the study's corpus.
type Fault = corpus.Fault

// Corpus returns the study's 139 faults with oracle classifications.
func Corpus() []*Fault { return corpus.All() }

// CorpusByApp returns one application's corpus faults.
func CorpusByApp(app Application) []*Fault { return corpus.ByApp(app) }

// CorpusJSON renders the full 139-fault corpus as indented JSON, with the
// taxonomy enums encoded by name — the study's dataset as a data artifact.
func CorpusJSON() ([]byte, error) {
	return json.MarshalIndent(corpus.All(), "", "  ")
}

// ClassifierOptions tunes the rule classifier; the zero value is the study
// configuration.
type ClassifierOptions = classify.Options

// Classification is one classifier decision.
type Classification = classify.Result

// NewClassifier builds the study's fault classifier.
func NewClassifier(opts ClassifierOptions) *classify.Classifier {
	return classify.New(opts)
}

// StudyOptions tunes the full pipeline.
type StudyOptions = core.Options

// StudySources names the tracker base URLs for a study run.
type StudySources = core.Sources

// StudyResult is the full three-application study output.
type StudyResult = core.StudyResult

// AppStudyResult is one application's pipeline output.
type AppStudyResult = core.AppResult

// RunStudy mines all three sources over HTTP and runs the full pipeline —
// the paper's methodology end to end.
func RunStudy(ctx context.Context, src StudySources, opts StudyOptions) (*StudyResult, error) {
	return core.Study(ctx, src, opts)
}

// MineApache crawls a GNATS-style tracker and returns its normalized
// reports.
func MineApache(ctx context.Context, baseURL string) ([]*Report, error) {
	return core.MineApache(ctx, baseURL)
}

// MineGnome crawls a debbugs-style tracker (plus CVS log) and returns its
// normalized reports.
func MineGnome(ctx context.Context, baseURL string) ([]*Report, error) {
	return core.MineGnome(ctx, baseURL)
}

// MineMySQL fetches a mailing-list mbox archive, applies the study's keyword
// search, and returns one normalized report per matching thread.
func MineMySQL(ctx context.Context, baseURL string) ([]*Report, error) {
	return core.MineMySQL(ctx, baseURL)
}

// ClassifyReports runs the post-mining stages (inclusion filter, duplicate
// narrowing, classification) over raw reports.
func ClassifyReports(raw []*Report, opts StudyOptions) *AppStudyResult {
	return core.Classify(raw, opts)
}

// SiteConfig controls generation of the simulated 1999-era bug sources.
type SiteConfig = bugsite.Config

// NewApacheTrackerSite serves a generated GNATS problem-report tracker
// (bugs.apache.org circa 1999) embedding the corpus faults among duplicates
// and noise.
func NewApacheTrackerSite(cfg SiteConfig) http.Handler { return bugsite.NewApacheSite(cfg) }

// NewGnomeTrackerSite serves a generated debbugs tracker plus CVS log
// (bugs.gnome.org + cvs.gnome.org circa 1999).
func NewGnomeTrackerSite(cfg SiteConfig) http.Handler { return bugsite.NewGnomeSite(cfg) }

// NewMySQLArchiveSite serves a generated mailing-list mbox archive (the
// geocrawler mysql list circa 1999).
func NewMySQLArchiveSite(cfg SiteConfig) http.Handler { return bugsite.NewMySQLSite(cfg) }

// Recovery experiment surface.
type (
	// RecoveryStrategy selects a recovery system.
	RecoveryStrategy = recovery.Strategy
	// RecoveryPolicy tunes retries and takeover time.
	RecoveryPolicy = recovery.Policy
	// RecoveryOutcome is one scenario's result under one strategy.
	RecoveryOutcome = recovery.Outcome
	// RecoverableApp is the generic-recovery view of a simulated
	// application.
	RecoverableApp = recovery.Application
	// RecoveryTraceEvent is one step of a recovery run, delivered to
	// RecoveryPolicy.Trace.
	RecoveryTraceEvent = recovery.TraceEvent
	// Scenario is an executable fault reproduction.
	Scenario = faultinject.Scenario
)

// Recovery strategies (paper §2, §6).
const (
	// StrategyNone performs no recovery.
	StrategyNone = recovery.StrategyNone
	// StrategyProcessPairs is truly generic checkpoint-and-failover
	// recovery.
	StrategyProcessPairs = recovery.StrategyProcessPairs
	// StrategyProgressiveRetry adds Wang93-style induced environment change.
	StrategyProgressiveRetry = recovery.StrategyProgressiveRetry
	// StrategyCleanRestart is application-specific state-discarding restart.
	StrategyCleanRestart = recovery.StrategyCleanRestart
)

// NewRecoveryManager builds a recovery manager.
func NewRecoveryManager(policy RecoveryPolicy) *recovery.Manager {
	return recovery.NewManager(policy)
}

// BuildScenario constructs the simulated application and executable scenario
// reproducing one corpus fault's mechanism (see Fault.Mechanism).
func BuildScenario(mechanism string, seed int64) (RecoverableApp, Scenario, error) {
	return experiment.BuildScenario(mechanism, seed)
}

// Supervision layer (the operator's story over generic recovery).
type (
	// Supervisor keeps an application serving a workload while faults fire.
	Supervisor = supervise.Supervisor
	// SupervisorConfig tunes a Supervisor.
	SupervisorConfig = supervise.Config
	// SupervisorReport is the accounting of one supervised run.
	SupervisorReport = supervise.Report
	// SupervisedOp is one supervised workload operation.
	SupervisedOp = supervise.Op
	// SoakConfig tunes the sustained-workload soak run.
	SoakConfig = experiment.SoakConfig
	// SoakResult is one application's soak outcome.
	SoakResult = experiment.SoakResult
	// SupervisorVerdict grades one supervised run in the matrix.
	SupervisorVerdict = experiment.SupervisorVerdict
)

// NewSupervisor builds a supervisor over a recoverable application.
func NewSupervisor(app RecoverableApp, cfg SupervisorConfig) *Supervisor {
	return supervise.New(app, cfg)
}

// RunSoak drives all three applications under sustained workload with a
// random subset of seeded bugs active, each under a supervisor.
func RunSoak(cfg SoakConfig) ([]SoakResult, error) { return experiment.RunSoak(cfg) }

// RenderSoak formats soak results, one supervisor report per application.
func RenderSoak(results []SoakResult) string { return experiment.RenderSoak(results) }

// Observability layer (see OBSERVABILITY.md).
type (
	// Telemetry bundles a metrics registry and an episode recorder for one
	// experiment run. Attach one via SoakConfig.Telemetry (or
	// RecoveryMatrix.AddSupervisedObserved) and export with its WriteTrace,
	// WriteTimeline, WritePrometheus, and WriteMetricsJSON methods. A nil
	// Telemetry disables observation at zero cost.
	Telemetry = experiment.Telemetry
	// FaultEpisode is one recorded fault-handling episode: everything that
	// happened to one failing operation between its first observed failure
	// and the final verdict, as spans on the virtual clock.
	FaultEpisode = obsv.Episode
	// EpisodeClassSummary aggregates episodes of one fault class: outcome
	// counts, MTTR percentiles, retries-per-recovery, rung distribution.
	EpisodeClassSummary = obsv.ClassSummary
)

// NewTelemetry builds an empty Telemetry ready to attach to a run.
func NewTelemetry() *Telemetry { return experiment.NewTelemetry() }

// ReadEpisodeTrace parses and validates an episode-trace JSONL stream, as
// written by Telemetry.WriteTrace or recoverylab -trace.
func ReadEpisodeTrace(r io.Reader) ([]*FaultEpisode, error) { return obsv.ReadJSONL(r) }

// SummarizeEpisodes aggregates episodes into per-class summary rows;
// RenderEpisodeSummary formats them as the recoverylab -metrics table.
func SummarizeEpisodes(eps []*FaultEpisode) []*EpisodeClassSummary { return obsv.Summarize(eps) }

// RenderEpisodeSummary renders per-class summary rows as a text table.
func RenderEpisodeSummary(sums []*EpisodeClassSummary) string { return obsv.RenderSummary(sums) }

// RecoveryMatrix is the full recovery-verification experiment.
type RecoveryMatrix = experiment.Matrix

// RunRecoveryMatrix runs every corpus fault under every recovery strategy.
func RunRecoveryMatrix(policy RecoveryPolicy, seed int64) (*RecoveryMatrix, error) {
	return experiment.RunMatrix(policy, seed)
}

// RunRecoveryMatrixWorkers is RunRecoveryMatrix sharded fault-by-fault over
// a bounded worker pool (workers ≤ 0 means one per processor). The matrix is
// byte-identical at every worker count; see internal/parallel for the
// determinism contract.
func RunRecoveryMatrixWorkers(policy RecoveryPolicy, seed int64, workers int) (*RecoveryMatrix, error) {
	return experiment.RunMatrixWorkers(policy, seed, workers)
}

// TableResult is one regenerated classification table.
type TableResult = experiment.TableResult

// Table regenerates one application's classification table (paper Tables
// 1–3) from the corpus via the reproducible classifier.
func Table(app Application) *TableResult {
	return experiment.Table(app, classify.Options{})
}

// FigureSeries is a regenerated fault-distribution figure.
type FigureSeries = experiment.FigureSeries

// Figure1Apache regenerates Figure 1 (Apache faults per release).
func Figure1Apache() *FigureSeries { return experiment.Figure1Apache() }

// Figure2Gnome regenerates Figure 2 (GNOME faults over time).
func Figure2Gnome() *FigureSeries { return experiment.Figure2Gnome() }

// Figure3MySQL regenerates Figure 3 (MySQL faults per release).
func Figure3MySQL() *FigureSeries { return experiment.Figure3MySQL() }

// AggregateResult reproduces the §5.4 discussion numbers.
type AggregateResult = experiment.Aggregate

// Aggregate computes the cross-application totals (139 faults; 10% EDN, 9%
// EDT; 72–87% EI per application).
func Aggregate() *AggregateResult {
	return experiment.ComputeAggregate(classify.Options{})
}

// ExportArtifacts renders every regenerated artifact as named CSV documents
// (file name -> content): the three tables, the three figures, and — when a
// matrix is supplied — the per-fault recovery outcomes and their summary.
func ExportArtifacts(m *RecoveryMatrix) (map[string]string, error) {
	return experiment.ExportAll(m)
}

// Lee93Result reconciles the measurements with Lee & Iyer's Tandem study.
type Lee93Result = experiment.Lee93

// CompareLee93 computes the §7 reconciliation from a recovery matrix.
func CompareLee93(m *RecoveryMatrix) *Lee93Result {
	return experiment.ComputeLee93(m)
}
