package scrape

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxBodyBytes caps how much of one response body a fetch will read. Bodies
// exceeding the cap fail the fetch with ErrBodyTooLarge instead of being
// silently truncated into a parseable-looking prefix.
const MaxBodyBytes = 8 << 20

// ErrBodyTooLarge reports a response body exceeding MaxBodyBytes.
var ErrBodyTooLarge = errors.New("scrape: response body exceeds size cap")

// maxRetryAfterWaits bounds how many Retry-After waits one fetch honors
// before returning the throttled response as-is.
const maxRetryAfterWaits = 2

// Page is one fetched page, or a recorded failure to fetch one.
type Page struct {
	// URL is the final URL of the page.
	URL string
	// Body is the raw response body.
	Body string
	// Status is the HTTP status code; 0 when the fetch failed outright.
	Status int
	// Err is the fetch failure, when one occurred. Pages with a non-nil Err
	// are gaps: recorded, skipped, and never followed.
	Err error
}

// Sleeper paces the crawl: politeness delays and Retry-After waits flow
// through it, so experiments can inject a virtual clock and crawl at
// hardware speed. The resilient layer's Clock satisfies it.
type Sleeper interface {
	// Sleep pauses for d, returning early with the context's error if it
	// expires first.
	Sleep(ctx context.Context, d time.Duration) error
}

// realSleeper is the default Sleeper: real time, context-bounded.
type realSleeper struct{}

// Sleep pauses for d or until ctx expires.
func (realSleeper) Sleep(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d): //faultlint:ignore wallclock politeness/Retry-After pacing against a real HTTP server; ctx bounds it
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CrawlerOption configures a Crawler.
type CrawlerOption func(*Crawler)

// WithMaxPages caps the number of pages fetched.
func WithMaxPages(n int) CrawlerOption { return func(c *Crawler) { c.maxPages = n } }

// WithDelay sets the politeness delay between requests.
func WithDelay(d time.Duration) CrawlerOption { return func(c *Crawler) { c.delay = d } }

// WithPathFilter restricts the crawl to URLs whose path has the given prefix.
func WithPathFilter(prefix string) CrawlerOption {
	return func(c *Crawler) { c.pathPrefix = prefix }
}

// WithClient sets the HTTP client (the default has a 10s timeout).
func WithClient(client *http.Client) CrawlerOption { return func(c *Crawler) { c.client = client } }

// WithSleeper injects the pacing clock (politeness delays and Retry-After
// waits). The default sleeps real, context-bounded time.
func WithSleeper(s Sleeper) CrawlerOption { return func(c *Crawler) { c.sleeper = s } }

// WithRetryAfterCap bounds how long one honored Retry-After wait may be.
// The default is 2s; 0 disables Retry-After honoring entirely (the naive
// baseline the RESIL experiment measures against).
func WithRetryAfterCap(d time.Duration) CrawlerOption {
	return func(c *Crawler) { c.retryAfterCap = d }
}

// Crawler is a polite, same-host, breadth-first crawler. A fetch that fails
// outright costs only its own page: the failure is recorded as a gap
// (Page.Err) and the crawl continues, so one bad page never loses the
// corpus mined from the rest.
type Crawler struct {
	client        *http.Client
	maxPages      int
	delay         time.Duration
	pathPrefix    string
	sleeper       Sleeper
	retryAfterCap time.Duration

	mu      sync.Mutex
	visited map[string]bool
}

// NewCrawler builds a crawler with the given options.
func NewCrawler(opts ...CrawlerOption) *Crawler {
	c := &Crawler{
		client:        &http.Client{Timeout: 10 * time.Second},
		maxPages:      10000,
		visited:       make(map[string]bool),
		sleeper:       realSleeper{},
		retryAfterCap: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Crawl fetches start and every same-host page reachable from it, breadth
// first, honoring the page cap and path filter. Pages are returned in fetch
// order. Non-2xx responses are recorded but not followed. Failed fetches
// are recorded as gap pages (Status 0, Err set) and skipped rather than
// aborting the crawl; only context cancellation ends a crawl early.
func (c *Crawler) Crawl(ctx context.Context, start string) ([]*Page, error) {
	base, err := url.Parse(start)
	if err != nil {
		return nil, fmt.Errorf("scrape: bad start url %q: %w", start, err)
	}
	if base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("scrape: start url %q must be absolute", start)
	}

	queue := []string{base.String()}
	c.markVisited(base.String())
	var pages []*Page
	first := true
	for len(queue) > 0 && len(pages) < c.maxPages {
		if err := ctx.Err(); err != nil {
			return pages, err
		}
		next := queue[0]
		queue = queue[1:]
		if !first && c.delay > 0 {
			if err := c.sleeper.Sleep(ctx, c.delay); err != nil {
				return pages, err
			}
		}
		first = false
		page, err := c.fetch(ctx, next)
		if err != nil {
			if ctx.Err() != nil {
				return pages, ctx.Err()
			}
			// A lost page is a gap, not a lost crawl: record and move on.
			pages = append(pages, &Page{URL: next, Err: fmt.Errorf("scrape: fetch %s: %w", next, err)})
			continue
		}
		pages = append(pages, page)
		if page.Status < 200 || page.Status >= 300 {
			continue
		}
		for _, link := range c.eligibleLinks(base, next, page.Body) {
			if c.markVisited(link) {
				continue
			}
			queue = append(queue, link)
		}
	}
	return pages, nil
}

// markVisited records the URL; it returns true when it was already visited.
func (c *Crawler) markVisited(u string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.visited[u] {
		return true
	}
	c.visited[u] = true
	return false
}

// fetch gets one URL, honoring Retry-After hints on 429/503 responses: the
// advertised wait (capped at the crawler's Retry-After cap, bounded by ctx)
// is slept and the fetch retried, at most maxRetryAfterWaits times. The
// final response — throttled or not — is returned as the page.
func (c *Crawler) fetch(ctx context.Context, u string) (*Page, error) {
	for waits := 0; ; waits++ {
		page, retryAfter, err := c.fetchOnce(ctx, u)
		if err != nil {
			return nil, err
		}
		if retryAfter <= 0 || c.retryAfterCap <= 0 || waits >= maxRetryAfterWaits {
			return page, nil
		}
		if retryAfter > c.retryAfterCap {
			retryAfter = c.retryAfterCap
		}
		if err := c.sleeper.Sleep(ctx, retryAfter); err != nil {
			return nil, err
		}
	}
}

// fetchOnce performs one GET, returning the page and any Retry-After hint
// carried on a throttling status. Bodies over MaxBodyBytes fail with
// ErrBodyTooLarge rather than being silently cut.
func (c *Crawler) fetchOnce(ctx context.Context, u string) (*Page, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("User-Agent", "faultstudy-crawler/1.0")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(body) > MaxBodyBytes {
		return nil, 0, fmt.Errorf("%w: %s is over %d bytes", ErrBodyTooLarge, u, MaxBodyBytes)
	}
	var retryAfter time.Duration
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return &Page{URL: u, Body: string(body), Status: resp.StatusCode}, retryAfter, nil
}

// eligibleLinks resolves and filters the links on a page: same host as base,
// http(s), fragment-stripped, matching the path filter, deduplicated, in
// stable order.
func (c *Crawler) eligibleLinks(base *url.URL, pageURL, body string) []string {
	pu, err := url.Parse(pageURL)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, raw := range Links(body) {
		lu, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			continue
		}
		abs := pu.ResolveReference(lu)
		abs.Fragment = ""
		if abs.Scheme != "http" && abs.Scheme != "https" {
			continue
		}
		if abs.Host != base.Host {
			continue
		}
		if c.pathPrefix != "" && !strings.HasPrefix(abs.Path, c.pathPrefix) {
			continue
		}
		s := abs.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
