package chaoshttp

import (
	"net/http"
	"net/http/httptest"
	"strconv"
)

// HandlerTransport is an http.RoundTripper that serves every request from an
// in-process http.Handler — no listener, no ports, no real network. It is
// how the RESIL experiment crawls a generated bugsite thousands of times per
// second while staying byte-deterministic: the only nondeterminism a real
// socket would add (timing, ephemeral ports, kernel buffers) never enters.
//
// Responses gain an explicit Content-Length when the handler did not set
// one, matching what net/http's real server does for small bodies; the
// truncation fault and its client-side detection both rely on the header
// being present.
type HandlerTransport struct {
	// Handler serves the requests.
	Handler http.Handler
}

// RoundTrip serves req from the wrapped handler.
func (t HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	if resp.Header.Get("Content-Length") == "" {
		n := rec.Body.Len()
		resp.Header.Set("Content-Length", strconv.Itoa(n))
		resp.ContentLength = int64(n)
	}
	return resp, nil
}
