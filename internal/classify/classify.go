// Package classify reproduces the study's fault classification (paper §3–5):
// given a bug report, decide whether the fault is environment-independent,
// environment-dependent-nontransient, or environment-dependent-transient, and
// name the environmental trigger.
//
// The study's classification was a human judgment over the "How To Repeat"
// field, developer comments, and fix descriptions. This package encodes that
// judgment as a reproducible rule classifier: weighted cue lexicons per
// trigger kind, scored as lowercase substring matches over the report text,
// with a deterministic-workload prior. The mapping from the winning trigger
// to a class is the taxonomy's (persistent conditions → nontransient,
// self-healing conditions → transient).
package classify

import (
	"sort"
	"strings"

	"faultstudy/internal/report"
	"faultstudy/internal/taxonomy"
)

// Options tunes the classifier; the zero value is the study configuration.
// The knobs exist for the §5.4 subjectivity ablation.
type Options struct {
	// EIPrior is the baseline score of the environment-independent
	// hypothesis before any deterministic cue is seen; 0 means 1.0.
	EIPrior float64
	// TriggerWeightScale multiplies every trigger cue weight; 0 means 1.0.
	// Values below 1 bias the classifier toward environment-independent.
	TriggerWeightScale float64
	// DisabledTriggers removes trigger kinds from consideration entirely.
	DisabledTriggers map[taxonomy.TriggerKind]bool
	// MinEvidence is the minimum trigger score needed to call a fault
	// environment-dependent even when the trigger outscores the prior;
	// 0 means no floor.
	MinEvidence float64
}

func (o Options) withDefaults() Options {
	if o.EIPrior == 0 {
		o.EIPrior = 1.0
	}
	if o.TriggerWeightScale == 0 {
		o.TriggerWeightScale = 1.0
	}
	return o
}

// Result is one classification decision.
type Result struct {
	// Class is the decided fault class.
	Class taxonomy.FaultClass
	// Trigger is the winning environmental trigger (TriggerWorkloadOnly for
	// environment-independent decisions).
	Trigger taxonomy.TriggerKind
	// Confidence is the winning score divided by the sum of the winning and
	// runner-up hypotheses' scores, in (0.5, 1].
	Confidence float64
	// Evidence lists the matched cue phrases for the winning hypothesis.
	Evidence []string
}

// Classifier classifies normalized bug reports.
type Classifier struct {
	opts Options
}

// New builds a classifier.
func New(opts Options) *Classifier {
	return &Classifier{opts: opts.withDefaults()}
}

// Classify decides the fault class of one report.
func (c *Classifier) Classify(r *report.Report) Result {
	text := strings.ToLower(r.Text())

	// Score the environment-independent hypothesis.
	eiScore := c.opts.EIPrior
	var eiEvidence []string
	for _, p := range deterministicLexicon {
		if matchPhrase(text, p.text) {
			eiScore += p.weight
			eiEvidence = append(eiEvidence, p.text)
		}
	}

	// Score each trigger hypothesis.
	type hypothesis struct {
		kind     taxonomy.TriggerKind
		score    float64
		evidence []string
	}
	var hyps []hypothesis
	for kind, phrases := range triggerLexicon {
		if c.opts.DisabledTriggers[kind] {
			continue
		}
		h := hypothesis{kind: kind}
		for _, p := range phrases {
			if matchPhrase(text, p.text) {
				h.score += p.weight * c.opts.TriggerWeightScale
				h.evidence = append(h.evidence, p.text)
			}
		}
		if h.score > 0 {
			hyps = append(hyps, h)
		}
	}
	sort.Slice(hyps, func(i, j int) bool {
		if hyps[i].score != hyps[j].score {
			return hyps[i].score > hyps[j].score
		}
		return hyps[i].kind < hyps[j].kind // deterministic tie-break
	})

	best := hypothesis{kind: taxonomy.TriggerWorkloadOnly, score: eiScore, evidence: eiEvidence}
	runnerUp := 0.0
	if len(hyps) > 0 {
		top := hyps[0]
		if top.score > eiScore && top.score >= c.opts.MinEvidence {
			best = top
			runnerUp = eiScore
			if len(hyps) > 1 && hyps[1].score > runnerUp {
				runnerUp = hyps[1].score
			}
		} else {
			runnerUp = top.score
		}
	}

	conf := 1.0
	if best.score+runnerUp > 0 {
		conf = best.score / (best.score + runnerUp)
	}
	class := best.kind.DefaultClass()
	if best.kind == taxonomy.TriggerWorkloadOnly {
		class = taxonomy.ClassEnvIndependent
	}
	sort.Strings(best.evidence)
	return Result{
		Class:      class,
		Trigger:    best.kind,
		Confidence: conf,
		Evidence:   best.evidence,
	}
}

// matchPhrase reports whether the cue occurs in the text, honoring a simple
// negation guard: a cue immediately preceded by "not " or "never " does not
// count (e.g. "not reproducible" must not fire the "reproducible" cue — the
// negated form is its own cue where it matters).
func matchPhrase(text, cue string) bool {
	idx := 0
	for {
		i := strings.Index(text[idx:], cue)
		if i < 0 {
			return false
		}
		abs := idx + i
		if !negatedAt(text, abs) {
			return true
		}
		idx = abs + len(cue)
	}
}

func negatedAt(text string, pos int) bool {
	for _, neg := range []string{"not ", "never ", "no "} {
		if pos >= len(neg) && text[pos-len(neg):pos] == neg {
			return true
		}
	}
	return false
}
