// Command bugminer mines a single bug source and prints the classified
// unique faults. Point it at any GNATS-style tracker, debbugs-style tracker,
// or mbox archive laid out like the study's sources — or pass -simulate to
// mine a generated one.
//
// Usage:
//
//	bugminer -source apache -url http://tracker.example   # mine a live site
//	bugminer -source mysql -simulate                      # self-serve and mine
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"faultstudy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bugminer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		source   = flag.String("source", "apache", "source kind: apache | gnome | mysql")
		url      = flag.String("url", "", "base URL of the source")
		simulate = flag.Bool("simulate", false, "serve a simulated source and mine it")
		seed     = flag.Int64("seed", 1999, "simulated-site seed (with -simulate)")
	)
	flag.Parse()

	app, err := parseSource(*source)
	if err != nil {
		return err
	}

	base := *url
	if *simulate {
		var handler http.Handler
		switch app {
		case faultstudy.AppApache:
			handler = faultstudy.NewApacheTrackerSite(faultstudy.SiteConfig{Seed: *seed})
		case faultstudy.AppGnome:
			handler = faultstudy.NewGnomeTrackerSite(faultstudy.SiteConfig{Seed: *seed})
		default:
			handler = faultstudy.NewMySQLArchiveSite(faultstudy.SiteConfig{Seed: *seed})
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: handler}
		defer srv.Close()
		go func() { _ = srv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("serving simulated %s source at %s\n", app, base)
	}
	if base == "" {
		return fmt.Errorf("need -url or -simulate")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var raw []*faultstudy.Report
	switch app {
	case faultstudy.AppApache:
		raw, err = faultstudy.MineApache(ctx, base)
	case faultstudy.AppGnome:
		raw, err = faultstudy.MineGnome(ctx, base)
	default:
		raw, err = faultstudy.MineMySQL(ctx, base)
	}
	if err != nil {
		return err
	}

	res := faultstudy.ClassifyReports(raw, faultstudy.StudyOptions{})
	fmt.Printf("%d raw -> %d qualifying -> %d unique (%d duplicates)\n\n",
		res.Raw, res.Qualifying, res.Unique, res.Duplicates)
	for _, c := range res.Faults {
		fmt.Printf("[%s] %-10s %s\n", c.Result.Class.Short(), c.Result.Trigger, c.Report.Synopsis)
	}
	fmt.Println()
	fmt.Print(res.Table())
	return nil
}

func parseSource(s string) (faultstudy.Application, error) {
	switch s {
	case "apache":
		return faultstudy.AppApache, nil
	case "gnome":
		return faultstudy.AppGnome, nil
	case "mysql":
		return faultstudy.AppMySQL, nil
	default:
		return faultstudy.AppApache, fmt.Errorf("unknown source %q (want apache, gnome, or mysql)", s)
	}
}
