package recoveryscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"faultstudy/internal/faultlint"
	"faultstudy/internal/taxonomy"
)

// livenessFields are process-liveness flags, not corruptable state: every
// seeded crash writes running=false as the crash itself, and ContainCrash /
// component restart clears it by construction. They are excluded from taint
// so a crash's liveness flip does not masquerade as state corruption.
var livenessFields = map[string]bool{
	"running":  true,
	"degraded": true,
}

// Prediction is the static verdict for one seeded fault-raise site.
type Prediction struct {
	// File locates the raise.
	File string `json:"file"`
	// Line is the raise's 1-based line within File.
	Line int `json:"line"`
	// Col is the raise's 1-based column.
	Col int `json:"col"`
	// Pkg is the declaring package directory.
	Pkg string `json:"pkg"`
	// Func is the enclosing function (pkg.(Recv).Name form).
	Func string `json:"func"`
	// Mechanisms are the registry keys the site speaks for.
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Symptom is the declared failure symptom.
	Symptom string `json:"symptom"`
	// Class is the predicted environment-dependence class.
	Class taxonomy.FaultClass `json:"class"`
	// Trigger is the decisive trigger kind (TriggerWorkloadOnly for EI,
	// TriggerUnknownKind for the FailCause prior).
	Trigger taxonomy.TriggerKind `json:"trigger"`
	// Interprocedural marks a class decided through a callee's transitive
	// environment summary rather than a directly visible env call.
	Interprocedural bool `json:"interprocedural,omitempty"`
	// Via names the environment-reaching callee the class came through.
	Via string `json:"via,omitempty"`
	// Component is the owning component (the microreboot/subtree target),
	// "" when unattributable.
	Component string `json:"component,omitempty"`
	// BlastRadius is the sorted set of components the fault's path taint
	// reaches (owner included).
	BlastRadius []string `json:"blastRadius,omitempty"`
	// PathFields is the corruption the fault path performs before the raise
	// (guard-region writes, liveness flags excluded).
	PathFields []string `json:"pathFields,omitempty"`
	// PathGlobals are package-global writes on the fault path.
	PathGlobals []string `json:"pathGlobals,omitempty"`
	// PathBuckets are externalized-store bucket writes on the fault path.
	PathBuckets []string `json:"pathBuckets,omitempty"`
	// Releasable lists the enclosing function's tainted fields some OnKill
	// hook releases — the state a crash-stop can free (exhaustion cures).
	Releasable []string `json:"releasable,omitempty"`
	// Rung is the predicted minimal recovery rung.
	Rung Rung `json:"-"`
	// RungName is the rung's wire form.
	RungName string `json:"rung"`
}

// Analysis is the whole-program result: the graph, the component maps, and
// one prediction per seeded fault-raise site, in file/line order.
type Analysis struct {
	// Graph is the call graph the predictions were computed over.
	Graph *Graph
	// Maps holds the component decomposition of each componentized package,
	// keyed by package directory.
	Maps map[string]*ComponentMap
	// Sites are the per-raise-site predictions.
	Sites []Prediction
}

// Analyze runs the full interprocedural analysis over loaded packages.
func Analyze(pkgs []*faultlint.Package) *Analysis {
	g := BuildGraph(pkgs)
	a := &Analysis{Graph: g, Maps: BuildComponentMaps(g)}
	for _, p := range pkgs {
		pkg := p
		for _, f := range pkg.Files {
			file := f
			faultlint.WalkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				site, ok := pkg.AsFailSite(file, call, stack)
				if !ok {
					return true
				}
				a.Sites = append(a.Sites, a.predict(pkg, file, site, stack))
				return true
			})
		}
	}
	sort.Slice(a.Sites, func(i, j int) bool {
		x, y := a.Sites[i], a.Sites[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		return x.Col < y.Col
	})
	return a
}

// predict computes the {class, component, blast radius, rung} verdict for
// one fail site.
func (a *Analysis) predict(p *faultlint.Package, f *ast.File, site faultlint.FailSite, stack []ast.Node) Prediction {
	pos := p.Fset.Position(site.Call.Pos())
	pred := Prediction{
		File:       pos.Filename,
		Line:       pos.Line,
		Col:        pos.Column,
		Pkg:        p.Dir,
		Mechanisms: site.Mechanisms,
		Symptom:    site.Symptom.String(),
	}
	if len(pred.Mechanisms) == 0 {
		pred.Mechanisms = a.inferDefaultCaseMechanisms(p, f, site, stack)
	}
	if node := a.enclosingNode(p, stack); node != nil {
		pred.Func = node.Key.String()
	}

	a.classify(p, f, site, stack, &pred)

	path, releasable := a.taint(p, f, site.Call.Pos(), stack)
	pred.PathFields = baseNames(path.SortedFields())
	pred.PathGlobals = path.SortedGlobals()
	pred.PathBuckets = path.SortedBuckets()
	pred.Releasable = baseNames(releasable)

	cm := a.Maps[p.Dir]
	pred.Component = a.owningComponent(cm, pred.Mechanisms)
	pred.Rung = a.rungFor(cm, &pred, path, releasable, site.Symptom)
	pred.RungName = pred.Rung.String()
	return pred
}

// inferDefaultCaseMechanisms attributes a raise in the `default:` arm of a
// key switch — the template-bug shape the intraprocedural rule cannot name:
//
//	if key := validKey(x); key != "" { switch key { case MechA: ...;
//	default: return faultinject.Fail(key, ...) } }
//
// The key's domain is whatever the validating helper (a guard-region call)
// enumerates in its own case clauses; the default arm covers that domain
// minus the keys the switch's named arms already claimed.
func (a *Analysis) inferDefaultCaseMechanisms(p *faultlint.Package, f *ast.File, site faultlint.FailSite, stack []ast.Node) []string {
	var sw *ast.SwitchStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		case *ast.CaseClause:
			if len(n.List) > 0 {
				return nil // a named arm: the intraprocedural rule owns it
			}
			for j := i - 1; j >= 0 && sw == nil; j-- {
				s, ok := stack[j].(*ast.SwitchStmt)
				if !ok {
					continue
				}
				sw = s
			}
		}
		if sw != nil {
			break
		}
	}
	if sw == nil {
		return nil
	}
	named := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v, ok := p.ConstString(e); ok && strings.Contains(v, "/") {
				named[v] = true
			}
		}
	}
	domain := make(map[string]bool)
	for _, gc := range faultlint.GuardCalls(site.Call.Pos(), stack) {
		for _, callee := range a.Graph.ResolveCall(p, f, gc) {
			ast.Inspect(callee.Decl.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if v, ok := callee.Pkg.ConstString(e); ok && strings.Contains(v, "/") {
						domain[v] = true
					}
				}
				return true
			})
		}
	}
	var out []string
	for _, v := range sortedKeys(domain) {
		if !named[v] {
			out = append(out, v)
		}
	}
	return out
}

// classify decides the environment-dependence class: the envsite judgment
// first (a directly visible env call in the guard regions), then the
// interprocedural extension (a guard-region call into a function whose
// transitive summary reaches the environment), then the FailCause prior,
// then EI.
func (a *Analysis) classify(p *faultlint.Package, f *ast.File, site faultlint.FailSite, stack []ast.Node, pred *Prediction) {
	if op, ok := faultlint.NearestEnvOp(site.Call.Pos(), stack); ok {
		pred.Trigger = op.Trigger
		pred.Class = op.Trigger.DefaultClass()
		return
	}
	var best *FuncNode
	var bestPos token.Pos = -1
	for _, gc := range faultlint.GuardCalls(site.Call.Pos(), stack) {
		for _, callee := range a.Graph.ResolveCall(p, f, gc) {
			if len(callee.Triggers) > 0 && gc.Pos() > bestPos {
				best, bestPos = callee, gc.Pos()
			}
		}
	}
	if best != nil {
		pred.Class, pred.Trigger = classOfTriggers(best.Triggers)
		pred.Interprocedural = true
		pred.Via = best.Key.String()
		return
	}
	if site.WithCause {
		// FailCause wraps an environment error by contract; with no visible
		// facility the persistent-condition prior applies.
		pred.Class = taxonomy.ClassEnvDependentNonTransient
		pred.Trigger = taxonomy.TriggerUnknownKind
		return
	}
	pred.Class = taxonomy.ClassEnvIndependent
	pred.Trigger = taxonomy.TriggerWorkloadOnly
}

// classOfTriggers joins a transitive trigger set into one class: transient
// wins only on a strict majority (a function touching both disk and DNS is
// pinned by the persistent condition), mirroring the LINT vote collapse.
// The decisive trigger is the smallest-numbered one of the winning class.
func classOfTriggers(triggers map[taxonomy.TriggerKind]bool) (taxonomy.FaultClass, taxonomy.TriggerKind) {
	kinds := make([]taxonomy.TriggerKind, 0, len(triggers))
	for t := range triggers {
		kinds = append(kinds, t)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	edt, edn := 0, 0
	for _, t := range kinds {
		switch t.DefaultClass() {
		case taxonomy.ClassEnvDependentTransient:
			edt++
		case taxonomy.ClassEnvDependentNonTransient:
			edn++
		}
	}
	class := taxonomy.ClassEnvDependentNonTransient
	if edt > edn {
		class = taxonomy.ClassEnvDependentTransient
	}
	for _, t := range kinds {
		if t.DefaultClass() == class {
			return class, t
		}
	}
	// Triggers that default to neither environment class (workload-only
	// summaries never reach here because len(triggers)>0 implies env kinds).
	return taxonomy.ClassEnvIndependent, taxonomy.TriggerWorkloadOnly
}

// enclosingNode finds the graph node of the site's enclosing function
// declaration (function literals attribute to the declaring function).
func (a *Analysis) enclosingNode(p *faultlint.Package, stack []ast.Node) *FuncNode {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return a.Graph.Funcs[FuncKey{Pkg: p.Dir, Recv: recvTypeName(fd), Name: fd.Name.Name}]
		}
	}
	return nil
}

// taint computes the site's two write sets: the path taint (writes inside
// the guard regions, plus the transitive reach of functions called there —
// the corruption performed before detection) and the releasable fields (the
// enclosing function's transitive field writes that some OnKill hook also
// writes — state a crash-stop frees). Liveness flags are excluded from both.
func (a *Analysis) taint(p *faultlint.Package, f *ast.File, site token.Pos, stack []ast.Node) (*WriteSet, []string) {
	path := NewWriteSet()
	globals := a.Graph.globalsByPkg[p.Dir]
	for _, n := range faultlint.GuardNodes(site, stack) {
		collectWrites(p, n, globals, path)
	}
	for _, gc := range faultlint.GuardCalls(site, stack) {
		for _, callee := range a.Graph.ResolveCall(p, f, gc) {
			path.Merge(callee.Reach)
		}
	}
	for key := range path.Fields {
		if livenessFields[fieldBase(key)] {
			delete(path.Fields, key)
		}
	}

	var releasable []string
	if cm := a.Maps[p.Dir]; cm != nil {
		released := cm.KillReleasedFields()
		if node := a.enclosingNode(p, stack); node != nil {
			for _, field := range node.Reach.SortedFields() {
				if released[field] && !livenessFields[fieldBase(field)] {
					releasable = append(releasable, field)
				}
			}
		}
	}
	return path, releasable
}

// owningComponent resolves the component a site's mechanisms attribute to:
// the first mechanism (in site order) with a map entry.
func (a *Analysis) owningComponent(cm *ComponentMap, mechanisms []string) string {
	if cm == nil {
		return ""
	}
	for _, m := range mechanisms {
		if comp, ok := cm.MechanismComponent[m]; ok {
			return comp
		}
	}
	return ""
}

// rungFor decides the minimal recovery rung from the class/symptom/taint
// triple — the paper's table-8 reasoning made mechanical:
//
//   - EDT, still serving: a perturbed retry heals a transient environment.
//   - EI or a crash-like symptom: the component's volatile state (heap,
//     liveness) is what's corrupt; the cheapest reboot containing the path
//     taint cures it.
//   - EDN with kill-releasable resources (a self-inflicted exhaustion some
//     OnKill hook frees): that component's reboot IS the cure.
//   - EDN otherwise: the environment persists across every generic
//     mechanism; restart is the ceiling (and the honest prediction).
func (a *Analysis) rungFor(cm *ComponentMap, pred *Prediction, path *WriteSet, releasable []string, symptom taxonomy.Symptom) Rung {
	crashLike := symptom == taxonomy.SymptomCrash || symptom == taxonomy.SymptomHang
	switch pred.Class {
	case taxonomy.ClassEnvDependentTransient:
		if !crashLike {
			return RungRetry
		}
		return a.containment(cm, pred, path, releasable)
	case taxonomy.ClassEnvIndependent:
		if !crashLike && path.Empty() {
			return RungRetry
		}
		return a.containment(cm, pred, path, releasable)
	default: // EDN
		if len(releasable) > 0 {
			return a.containment(cm, pred, path, releasable)
		}
		return RungRestart
	}
}

// containment picks the cheapest reboot whose failure domain covers the
// site's blast radius: the owning component alone (microreboot), the
// smallest subtree containing every tainted component (subtree-reboot), or
// the whole process with state preserved (restore) when the taint escapes
// component ownership entirely.
func (a *Analysis) containment(cm *ComponentMap, pred *Prediction, path *WriteSet, releasable []string) Rung {
	if cm == nil || pred.Component == "" {
		return RungRestore
	}
	if len(path.Globals) > 0 || len(path.Buckets) > 0 {
		// Package-global or externalized-store corruption: outside every
		// component's failure domain. Globals fall to process recovery;
		// store corruption survives even that, so restart is the ceiling.
		if len(path.Buckets) > 0 {
			return RungRestart
		}
		return RungRestore
	}
	blast := map[string]bool{pred.Component: true}
	escaped := false
	for field := range path.Fields {
		if owner, owned := cm.FieldOwner[field]; owned {
			blast[owner] = true
			continue
		}
		// Unowned writes escape containment only when they hit component-owned
		// state: a field on a type the lifecycle hooks also touch, or a bare
		// key type information could not pin to any type (conservative). Writes
		// to other types — a parsed statement, a scratch buffer — are arrival-
		// local and die with the operation, not state a reboot must clear.
		if t := fieldType(field); t == "" || cm.HookTypes[t] {
			escaped = true
		}
	}
	// Releasable exhaustion state pulls its owner into the radius too: the
	// reboot must reach the component whose kill hook frees the resource.
	for _, field := range releasable {
		if owner, ok := cm.FieldOwner[field]; ok {
			blast[owner] = true
		}
	}
	pred.BlastRadius = sortedKeys(blast)
	if escaped {
		// Path corruption no kill hook clears: component reboots cannot
		// cure it; process restore (pre-op state) is the cheapest cure.
		return RungRestore
	}
	if len(blast) == 1 {
		return RungMicroreboot
	}
	// Cheapest single subtree covering the radius, by member count.
	bestName, bestSize := "", -1
	for _, name := range cm.Order {
		sub := cm.Subtree(name)
		covers := true
		for b := range blast {
			if !sub[b] {
				covers = false
				break
			}
		}
		if covers && (bestSize < 0 || len(sub) < bestSize) {
			bestName, bestSize = name, len(sub)
		}
	}
	if bestName != "" {
		pred.Component = bestName
		return RungSubtreeReboot
	}
	return RungRestore
}

// MechPrediction is the per-mechanism collapse of the site predictions —
// what the SCOPE experiment scores against registry truth and dynamic
// probes.
type MechPrediction struct {
	// Mechanism is the registry key.
	Mechanism string
	// Class is the voted class across the mechanism's sites.
	Class taxonomy.FaultClass
	// Component is the voted owning component ("" when unattributed).
	Component string
	// Rung is the costliest minimal rung across sites (the conservative
	// whole-mechanism plan).
	Rung Rung
	// Sites counts the raise sites speaking for the mechanism.
	Sites int
	// Interprocedural marks mechanisms where any site's class needed the
	// call-graph extension.
	Interprocedural bool
}

// ByMechanism collapses site predictions per mechanism key: environment
// evidence at any site wins over EI (a fault with one env-dependent raise
// is env-dependent), transient needs a strict majority among env sites, the
// component is the plurality vote, and the rung is the per-site maximum.
func (a *Analysis) ByMechanism() map[string]MechPrediction {
	type tally struct {
		sites           int
		ei, edn, edt    int
		comp            map[string]int
		rung            Rung
		interprocedural bool
	}
	tallies := make(map[string]*tally)
	for _, s := range a.Sites {
		for _, mech := range s.Mechanisms {
			t := tallies[mech]
			if t == nil {
				t = &tally{comp: make(map[string]int)}
				tallies[mech] = t
			}
			t.sites++
			switch s.Class {
			case taxonomy.ClassEnvDependentTransient:
				t.edt++
			case taxonomy.ClassEnvDependentNonTransient:
				t.edn++
			default:
				t.ei++
			}
			if s.Component != "" {
				t.comp[s.Component]++
			}
			if s.Rung > t.rung {
				t.rung = s.Rung
			}
			if s.Interprocedural {
				t.interprocedural = true
			}
		}
	}
	out := make(map[string]MechPrediction, len(tallies))
	for mech, t := range tallies {
		mp := MechPrediction{Mechanism: mech, Sites: t.sites, Rung: t.rung,
			Interprocedural: t.interprocedural}
		switch {
		case t.edt == 0 && t.edn == 0:
			mp.Class = taxonomy.ClassEnvIndependent
		case t.edt > t.edn:
			mp.Class = taxonomy.ClassEnvDependentTransient
		default:
			mp.Class = taxonomy.ClassEnvDependentNonTransient
		}
		best, bestN := "", 0
		for _, comp := range sortedKeys(boolKeys(t.comp)) {
			if n := t.comp[comp]; n > bestN {
				best, bestN = comp, n
			}
		}
		mp.Component = best
		out[mech] = mp
	}
	return out
}

// boolKeys adapts a count map for sortedKeys.
func boolKeys(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// Diagnostics renders the analysis as faultlint diagnostics: one advisory
// "scope" finding per raise site, plus a gating "scopegap" finding for any
// site whose mechanisms have no component attribution in a package that
// declares a component decomposition — a fault that silently falls back to
// whole-process recovery.
func (a *Analysis) Diagnostics() []faultlint.Diagnostic {
	var out []faultlint.Diagnostic
	for _, s := range a.Sites {
		msg := fmt.Sprintf("predicted %s fault, minimal rung %s", s.Class.Short(), s.RungName)
		if s.Component != "" {
			msg += " targeting " + s.Component
		}
		if len(s.BlastRadius) > 1 {
			msg += " (blast radius " + strings.Join(s.BlastRadius, ", ") + ")"
		}
		if s.Interprocedural {
			msg += " [env dependence via " + s.Via + "]"
		}
		out = append(out, faultlint.Diagnostic{
			Rule: "scope", Class: s.Class, File: s.File, Line: s.Line, Col: s.Col,
			Message: msg, Mechanisms: s.Mechanisms, Advisory: true,
		})
		cm := a.Maps[s.Pkg]
		if cm != nil && len(s.Mechanisms) > 0 && s.Component == "" {
			out = append(out, faultlint.Diagnostic{
				Rule: "scopegap", Class: s.Class, File: s.File, Line: s.Line, Col: s.Col,
				Message: fmt.Sprintf("mechanisms %s have no component attribution; the fault falls back to whole-process recovery",
					strings.Join(s.Mechanisms, ", ")),
				Mechanisms: s.Mechanisms,
			})
		}
	}
	return out
}
