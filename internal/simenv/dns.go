package simenv

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

var (
	// ErrDNSFailure is returned when the name service answers with an error —
	// the study's "call to Domain Name Service returns an error" transient.
	ErrDNSFailure = errors.New("simenv: dns lookup failed")
	// ErrNoReverseDNS is returned when a reverse lookup has no PTR record —
	// the MySQL "reverse DNS is not configured for the remote host"
	// nontransient.
	ErrNoReverseDNS = errors.New("simenv: no reverse dns record")
)

// DNSMode is the health state of the name service.
type DNSMode int

const (
	// DNSHealthy answers quickly and correctly.
	DNSHealthy DNSMode = iota + 1
	// DNSSlow answers correctly but slowly (the study's "slow Domain Name
	// Service response").
	DNSSlow
	// DNSFailing answers with errors.
	DNSFailing
)

// String returns the mode name.
func (m DNSMode) String() string {
	switch m {
	case DNSHealthy:
		return "healthy"
	case DNSSlow:
		return "slow"
	case DNSFailing:
		return "failing"
	default:
		return fmt.Sprintf("DNSMode(%d)", int(m))
	}
}

// DNS simulates the Domain Name Service. Outages are transient: once a
// failure or slowdown is staged it heals after a time-to-recover elapses on
// the virtual clock, modelling "the DNS server is restarted" or "the network
// is fixed" without any action by the recovering application.
type DNS struct {
	mu        sync.Mutex
	rng       *rand.Rand
	mode      DNSMode
	healIn    time.Duration // time until mode returns to healthy; 0 = stable
	forward   map[string]string
	reverse   map[string]string
	baseDelay time.Duration
	slowDelay time.Duration
}

func newDNS(rng *rand.Rand) *DNS {
	return &DNS{
		rng:       rng,
		mode:      DNSHealthy,
		forward:   make(map[string]string),
		reverse:   make(map[string]string),
		baseDelay: 2 * time.Millisecond,
		slowDelay: 30 * time.Second,
	}
}

// Mode returns the current health state.
func (d *DNS) Mode() DNSMode {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mode
}

// Fail stages a DNS outage that heals after ttr of virtual time.
func (d *DNS) Fail(ttr time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mode = DNSFailing
	d.healIn = ttr
}

// Slow stages a DNS slowdown that heals after ttr of virtual time.
func (d *DNS) Slow(ttr time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mode = DNSSlow
	d.healIn = ttr
}

// Heal restores the service immediately.
func (d *DNS) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mode = DNSHealthy
	d.healIn = 0
}

func (d *DNS) advance(dt time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mode == DNSHealthy || d.healIn == 0 {
		return
	}
	if dt >= d.healIn {
		d.mode = DNSHealthy
		d.healIn = 0
		return
	}
	d.healIn -= dt
}

// AddHost registers a forward A record and its PTR record.
func (d *DNS) AddHost(name, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.forward[name] = addr
	d.reverse[addr] = name
}

// AddHostNoReverse registers a forward record only — staging the MySQL
// missing-reverse-DNS condition.
func (d *DNS) AddHostNoReverse(name, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.forward[name] = addr
}

// Lookup resolves a hostname. It returns the answer latency so callers can
// observe slow responses; when the service is failing it returns
// ErrDNSFailure.
func (d *DNS) Lookup(name string) (addr string, latency time.Duration, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.mode {
	case DNSFailing:
		return "", d.baseDelay, fmt.Errorf("lookup %q: %w", name, ErrDNSFailure)
	case DNSSlow:
		latency = d.slowDelay
	default:
		latency = d.baseDelay
	}
	a, ok := d.forward[name]
	if !ok {
		return "", latency, fmt.Errorf("lookup %q: %w", name, ErrDNSFailure)
	}
	return a, latency, nil
}

// Reverse resolves an address to a hostname. A missing PTR record returns
// ErrNoReverseDNS regardless of service health: it is a configuration
// condition, not an outage, which is why the paper classifies it as
// nontransient.
func (d *DNS) Reverse(addr string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mode == DNSFailing {
		return "", fmt.Errorf("reverse %q: %w", addr, ErrDNSFailure)
	}
	name, ok := d.reverse[addr]
	if !ok {
		return "", fmt.Errorf("reverse %q: %w", addr, ErrNoReverseDNS)
	}
	return name, nil
}
