package traffic

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// distSumTolerance is how far from 100 the probabilities of a distribution
// may sum while still parsing — enough to absorb decimal round-off
// ("33.3%a,33.3%b,33.4%c" is fine, "50%a,30%b" is not).
const distSumTolerance = 1e-6

// Entry is one segment of a probability-encoded distribution.
type Entry struct {
	// Weight is the segment's probability in percent (0 < Weight <= 100).
	Weight float64
	// Value is the segment's raw value text.
	Value string
}

// Dist is a parsed probability-encoded distribution: an ordered list of
// weighted values whose weights sum to 100. Sampling is allocation-free and
// deterministic given the caller's uniform draw.
type Dist struct {
	entries []Entry
	cum     []float64 // cumulative weights; cum[len-1] == sum
}

// ParseDistribution parses the pingpong-style grammar
//
//	<probability>%<value>[,<probability>%<value>...]
//
// e.g. "90%10ms,10%100ms" or "50%timeout,30%connection,20%deadlock".
// Probabilities are decimal percentages; they must each be positive and
// finite and must sum to 100 (within a round-off tolerance). Values are
// opaque non-empty strings — use ParseLatencyDist when they are durations.
func ParseDistribution(s string) (*Dist, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("traffic: empty distribution")
	}
	segs := strings.Split(s, ",")
	d := &Dist{
		entries: make([]Entry, 0, len(segs)),
		cum:     make([]float64, 0, len(segs)),
	}
	sum := 0.0
	for i, seg := range segs {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("traffic: distribution segment %d is empty", i+1)
		}
		prob, value, ok := strings.Cut(seg, "%")
		if !ok {
			return nil, fmt.Errorf("traffic: segment %q has no %% separator", seg)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(prob), 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: segment %q has a bad probability: %v", seg, err)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 || w > 100 {
			return nil, fmt.Errorf("traffic: segment %q probability %v outside (0, 100]", seg, w)
		}
		value = strings.TrimSpace(value)
		if value == "" {
			return nil, fmt.Errorf("traffic: segment %q has an empty value", seg)
		}
		sum += w
		d.entries = append(d.entries, Entry{Weight: w, Value: value})
		d.cum = append(d.cum, sum)
	}
	if math.Abs(sum-100) > distSumTolerance {
		return nil, fmt.Errorf("traffic: probabilities sum to %v, want 100", sum)
	}
	return d, nil
}

// Entries returns the parsed segments in declaration order.
func (d *Dist) Entries() []Entry { return append([]Entry(nil), d.entries...) }

// Sample maps a uniform draw u in [0, 1) onto a value: the first segment
// whose cumulative weight covers u*100. Draws at or above 1 clamp to the
// last segment, so a sloppy caller can never index out of the distribution.
func (d *Dist) Sample(u float64) string {
	x := u * d.cum[len(d.cum)-1]
	for i, c := range d.cum {
		if x < c {
			return d.entries[i].Value
		}
	}
	return d.entries[len(d.entries)-1].Value
}

// LatencyDist is a probability-encoded distribution whose values are
// durations — the service-latency half of the traffic model.
type LatencyDist struct {
	d    *Dist
	durs []time.Duration
}

// ParseLatencyDist parses a duration-valued distribution, e.g.
// "90%10ms,10%100ms". Every value must be a valid non-negative
// time.ParseDuration string.
func ParseLatencyDist(s string) (*LatencyDist, error) {
	d, err := ParseDistribution(s)
	if err != nil {
		return nil, err
	}
	l := &LatencyDist{d: d, durs: make([]time.Duration, len(d.entries))}
	for i, e := range d.entries {
		dur, err := time.ParseDuration(e.Value)
		if err != nil {
			return nil, fmt.Errorf("traffic: segment value %q is not a duration: %v", e.Value, err)
		}
		if dur < 0 {
			return nil, fmt.Errorf("traffic: segment value %q is a negative duration", e.Value)
		}
		l.durs[i] = dur
	}
	return l, nil
}

// Sample maps a uniform draw u in [0, 1) onto a duration, with the same
// segment choice Dist.Sample makes.
func (l *LatencyDist) Sample(u float64) time.Duration {
	x := u * l.d.cum[len(l.d.cum)-1]
	for i, c := range l.d.cum {
		if x < c {
			return l.durs[i]
		}
	}
	return l.durs[len(l.durs)-1]
}

// String renders the distribution back in its source grammar.
func (d *Dist) String() string {
	var b strings.Builder
	for i, e := range d.entries {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s%%%s", strconv.FormatFloat(e.Weight, 'f', -1, 64), e.Value)
	}
	return b.String()
}
