// Package report defines the normalized bug-report schema shared by every
// fault source in the study. The GNATS, debbugs, and mbox parsers each emit
// Report values; downstream stages (filtering, deduplication, classification)
// operate only on this schema.
//
// The schema mirrors the fields the paper relies on (§4): symptoms, the
// results of the fault, the operating environment and workload that induce it
// — in particular the "How To Repeat" field — developer comments, and fix
// information.
package report

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"faultstudy/internal/taxonomy"
)

// Report is a normalized bug report from any of the study's sources.
type Report struct {
	// ID is the source-scoped identifier: a GNATS PR number, a debbugs bug
	// number, or a mail Message-ID.
	ID string `json:"id"`
	// App is the application the report is filed against.
	App taxonomy.Application `json:"app"`
	// Component is the module within the application (e.g. "mod_cgi",
	// "gnumeric", "mysqld"), when known.
	Component string `json:"component,omitempty"`
	// Release is the application release the fault was observed on
	// (e.g. "1.3.4"). Empty when the report does not say.
	Release string `json:"release,omitempty"`
	// Synopsis is the one-line summary.
	Synopsis string `json:"synopsis"`
	// Description is the full problem description.
	Description string `json:"description"`
	// HowToRepeat is the reporter-supplied reproduction recipe; the key field
	// for classification.
	HowToRepeat string `json:"howToRepeat,omitempty"`
	// Environment is the reporter's operating environment description
	// (OS, libraries, hardware).
	Environment string `json:"environment,omitempty"`
	// Comments holds developer follow-ups, including statements about
	// reproducibility and the eventual fix.
	Comments []string `json:"comments,omitempty"`
	// FixDescription records how the underlying bug was fixed, when known
	// (from the audit trail or the linked CVS commit).
	FixDescription string `json:"fixDescription,omitempty"`
	// Severity is the tracker-assigned severity.
	Severity taxonomy.Severity `json:"severity"`
	// Symptom is the observable failure mode.
	Symptom taxonomy.Symptom `json:"symptom"`
	// Filed is when the report was submitted.
	Filed time.Time `json:"filed"`
	// Production reports whether the release is a production (non-beta)
	// version. The study only counts faults on production versions.
	Production bool `json:"production"`
	// DuplicateOf, when non-empty, names the canonical report this one
	// duplicates; set by the dedup stage.
	DuplicateOf string `json:"duplicateOf,omitempty"`
}

// Validate checks the invariants downstream stages rely on.
func (r *Report) Validate() error {
	if r == nil {
		return errors.New("report: nil report")
	}
	var problems []string
	if strings.TrimSpace(r.ID) == "" {
		problems = append(problems, "empty ID")
	}
	if r.App == taxonomy.AppUnknown {
		problems = append(problems, "unknown application")
	}
	if strings.TrimSpace(r.Synopsis) == "" && strings.TrimSpace(r.Description) == "" {
		problems = append(problems, "no synopsis or description")
	}
	if len(problems) > 0 {
		return fmt.Errorf("report %s: %s", r.ID, strings.Join(problems, "; "))
	}
	return nil
}

// Text returns the concatenated free text of the report in a stable order,
// used by the deduplicator and classifier.
func (r *Report) Text() string {
	var b strings.Builder
	b.Grow(len(r.Synopsis) + len(r.Description) + len(r.HowToRepeat) + len(r.Environment) + 64)
	for _, part := range []string{r.Synopsis, r.Description, r.HowToRepeat, r.Environment, r.FixDescription} {
		if part == "" {
			continue
		}
		b.WriteString(part)
		b.WriteByte('\n')
	}
	for _, c := range r.Comments {
		b.WriteString(c)
		b.WriteByte('\n')
	}
	return b.String()
}

// Qualifies reports whether the report meets the study's inclusion bar
// (paper §4): a high-impact symptom, severe-or-critical severity, and a
// production release. Sources without severity fields (the MySQL mailing
// list) pass the severity check when Severity is unknown but the symptom is
// high impact.
func (r *Report) Qualifies() bool {
	if !r.Symptom.HighImpact() {
		return false
	}
	if !r.Production {
		return false
	}
	if r.Severity == taxonomy.SeverityUnknown {
		return true
	}
	return r.Severity.Qualifies()
}

// Key returns a stable sort key (app, then ID).
func (r *Report) Key() string {
	return r.App.String() + "/" + r.ID
}

// Sort orders reports by application then ID, in place.
func Sort(reports []*Report) {
	sort.Slice(reports, func(i, j int) bool {
		return reports[i].Key() < reports[j].Key()
	})
}

// FilterQualifying returns the subset of reports that meet the study's
// inclusion bar, preserving order.
func FilterQualifying(reports []*Report) []*Report {
	out := make([]*Report, 0, len(reports))
	for _, r := range reports {
		if r.Qualifies() {
			out = append(out, r)
		}
	}
	return out
}

// ByApp partitions reports by application.
func ByApp(reports []*Report) map[taxonomy.Application][]*Report {
	out := make(map[taxonomy.Application][]*Report)
	for _, r := range reports {
		out[r.App] = append(out[r.App], r)
	}
	return out
}

// Canonical returns the subset of reports that are not marked as duplicates,
// preserving order.
func Canonical(reports []*Report) []*Report {
	out := make([]*Report, 0, len(reports))
	for _, r := range reports {
		if r.DuplicateOf == "" {
			out = append(out, r)
		}
	}
	return out
}
