// Package appb is a golden-test fixture: a plain (non-componentized)
// package contributing envsite and envcheck findings, so the merged -scope
// report interleaves rules across packages in file/line/col/rule order.
package appb

import (
	"sim/faultinject"
)

type disk struct{}

func (disk) Append(name string, n int) error { return nil }

type fds struct{}

func (fds) Open(name string) (int, error) { return 0, nil }

type sim struct{}

func (sim) Disk() disk { return disk{} }
func (sim) FDs() fds   { return fds{} }

// fill raises behind a persistent-condition facility: EDN, rung restart.
func fill(env sim) error {
	if err := env.Disk().Append("wal", 4096); err != nil {
		return faultinject.Fail("appb/disk-full", "error", "disk full")
	}
	return nil
}

// leak discards an acquire error: a gating envcheck finding.
func leak(env sim) {
	_, _ = env.FDs().Open("sock")
}
