package cache

import (
	"errors"
	"fmt"

	"faultstudy/internal/component"
)

// Serving-tier category names for the cache operation mix, re-expressed as
// cumulative thresholds over a uniform draw so the open-loop schedule can
// carry the operation choice as a single float.
const (
	ServeGetHit  = "get-hit"
	ServeGetMiss = "get-miss"
	ServeSet     = "set"
	ServeDel     = "del"
	ServeStats   = "stats"
)

// ServeWarm brings the daemon to steady state before traffic by priming a
// small working set, so the hit path dominates the open-loop mix the way it
// does on a warmed production cache.
func (c *Componentized) ServeWarm() error {
	for i := 0; i < 8; i++ {
		if err := c.srv.Set(fmt.Sprintf("warm%d", i), "v"); err != nil {
			return err
		}
	}
	return nil
}

// ServeArrival serves one open-loop arrival: u in [0, 1) picks the operation
// from a read-heavy 60/15/15/5/5 cache mix, seq individualizes keys, and
// user names the session whose externalized hot-key counter the operation
// advances. It returns the category served, the name of the down component
// when the operation was refused mid-reboot, and the serve error.
func (c *Componentized) ServeArrival(seq, user int, u float64) (category, comp string, err error) {
	var do func() error
	switch {
	case u < 0.60:
		category = ServeGetHit
		do = func() error {
			_, err := c.srv.Get(fmt.Sprintf("warm%d", seq%8))
			return err
		}
	case u < 0.75:
		category = ServeGetMiss
		do = func() error {
			_, err := c.srv.Get(fmt.Sprintf("cold%d", seq))
			return err
		}
	case u < 0.90:
		category = ServeSet
		do = func() error { return c.srv.Set(fmt.Sprintf("hot%d", seq%16), "v") }
	case u < 0.95:
		category = ServeDel
		do = func() error { return c.srv.Del(fmt.Sprintf("hot%d", seq%16)) }
	default:
		category = ServeStats
		do = func() error {
			_, err := c.srv.Stats()
			return err
		}
	}
	for _, name := range routeOf(category) {
		if !c.tree.Running(name) {
			return category, name, component.Down(name)
		}
	}
	err = do()
	if err == nil {
		c.store.Incr(HotKeyBucket, fmt.Sprintf("u%05d", user))
	}
	var de *component.DownError
	if errors.As(err, &de) {
		comp = de.Component
	}
	return category, comp, err
}

// routeOf lists the components an operation routes through. The persist
// component is deliberately absent: a down persist degrades to unpersisted
// serving instead of failing the operation.
func routeOf(category string) []string {
	route := []string{CompListener, CompCore}
	if category == ServeGetMiss {
		// Miss fills consult the replication peer through the listener; the
		// sweeper owns the expiry bookkeeping the delete path touches.
		route = append(route, CompSweeper)
	}
	if category == ServeDel {
		route = append(route, CompSweeper)
	}
	return route
}
